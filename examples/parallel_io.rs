//! The communication-avoiding parallel reader in action (paper §IV-B,
//! Figure 5): read one VCA with both strategies on simulated MPI ranks
//! and compare the communication each one generated.
//!
//! ```sh
//! cargo run --release --example parallel_io
//! ```

use arrayudf::Array2;
use dasgen::{write_minute_files, Scene};
use dassa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Eight one-minute files, 32 channels at 25 Hz.
    let dir = std::env::temp_dir().join("dassa-parallel-io-example");
    let _ = std::fs::remove_dir_all(&dir);
    let scene = Scene::demo(32, 25.0, 480.0, 11);
    write_minute_files(&scene, &dir, "170728224510", 8)?;
    let catalog = FileCatalog::scan(&dir)?;
    let vca = Vca::from_entries(catalog.entries())?;
    println!(
        "VCA: {} files, {} channels x {} samples",
        vca.n_files(),
        vca.channels(),
        vca.total_samples()
    );

    let ranks = 4;
    let serial = vca.read_all_f32()?;

    // Strategy A: collective-per-file — every file is broadcast whole.
    let (blocks_a, stats_a) = minimpi::run_with_stats(ranks, |comm| {
        read_collective_per_file(comm, &vca).expect("collective read")
    });
    // Strategy B: communication-avoiding — whole-file reads + one
    // all-to-all exchange.
    let (blocks_b, stats_b) = minimpi::run_with_stats(ranks, |comm| {
        read_comm_avoiding(comm, &vca).expect("comm-avoiding read")
    });

    // Both must reconstruct the array exactly.
    assert_eq!(Array2::vstack(&blocks_a), serial);
    assert_eq!(Array2::vstack(&blocks_b), serial);

    println!("\nstrategy                 broadcasts  alltoallv  p2p bytes");
    println!(
        "collective-per-file      {:>10}  {:>9}  {:>9}",
        stats_a.bcasts / ranks as u64,
        stats_a.alltoallvs / ranks as u64,
        stats_a.p2p_bytes
    );
    println!(
        "communication-avoiding   {:>10}  {:>9}  {:>9}",
        stats_b.bcasts / ranks as u64,
        stats_b.alltoallvs / ranks as u64,
        stats_b.p2p_bytes
    );
    println!(
        "\ncommunication volume ratio: {:.1}x in favour of communication-avoiding",
        stats_a.p2p_bytes as f64 / stats_b.p2p_bytes.max(1) as f64
    );
    println!("both strategies reconstructed the array bit-identically. ok");
    Ok(())
}
