//! Traffic-noise interferometry — the paper's second case study
//! (§V-C, Algorithm 3): turn ambient noise into empirical Green's
//! functions by cross-correlating every channel against a master
//! channel after detrend → bandpass → resample → FFT.
//!
//! The example builds a wavefield where a common noise source sweeps
//! the array with a known per-channel delay, runs the pipeline, and
//! shows that (a) correlation scores fall off with distance from the
//! master and (b) the time-domain correlation peak moves out linearly —
//! the physical signature interferometry exists to recover.
//!
//! ```sh
//! cargo run --release --example interferometry
//! ```

use arrayudf::Array2;
use dassa::prelude::*;

fn main() {
    let channels = 24usize;
    let samples = 4096usize;
    let delay_per_channel = 3.0; // samples of moveout per channel

    // Common band-limited "traffic noise" + small channel-local noise.
    let common: Vec<f64> = {
        let mut state = 0.0f64;
        (0..samples + 256)
            .map(|i| {
                // AR(1)-smoothed deterministic chaos keeps energy in band.
                let x = ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5;
                state = 0.9 * state + x;
                state
            })
            .collect()
    };
    let data = Array2::from_fn(channels, samples, |ch, t| {
        let delayed = t as f64 - delay_per_channel * ch as f64;
        let idx = delayed.max(0.0) as usize;
        let local = ((ch * 7919 + t * 104729) % 1000) as f64 / 1000.0 - 0.5;
        common[idx.min(common.len() - 1)] + 0.1 * local
    });

    let params = InterferometryParams {
        filter_order: 4,
        band: (0.02, 0.6),
        resample_p: 1,
        resample_q: 1, // keep full rate so lags stay in samples
        master_channel: 0,
    };

    println!("running interferometry (Algorithm 3) over {channels} channels...");
    let scores =
        interferometry(&data, &params, &Haee::builder().threads(4).build()).expect("pipeline");
    println!("\nchannel  |cos| vs master   xcorr peak lag (samples)");
    let master = prepare_master(data.row(0), &params);
    let mut lags = Vec::new();
    for (ch, &score) in scores.iter().enumerate() {
        let corr = cross_correlation_with_master(data.row(ch), &master, &params);
        let mid = corr.len() / 2;
        let peak = corr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("nonempty")
            .0 as isize
            - mid as isize;
        lags.push(peak);
        if ch % 4 == 0 {
            println!("{ch:7}  {score:<16.3} {peak}");
        }
    }

    // (a) Master correlates perfectly with itself.
    assert!((scores[0] - 1.0).abs() < 1e-9);
    // (b) The moveout is recovered: peak lag grows ~linearly with
    //     channel distance at the injected delay rate.
    for (ch, &lag) in lags.iter().enumerate().skip(1).take(12) {
        let expect = (delay_per_channel * ch as f64).round() as isize;
        assert!(
            (lag - expect).abs() <= 2,
            "channel {ch}: recovered lag {lag}, expected ~{expect}"
        );
    }
    println!("\nmoveout recovered: ~{delay_per_channel} samples/channel — empirical");
    println!("Green's function lags match the injected propagation. ok");
}
