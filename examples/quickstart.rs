//! Quickstart: the full DASSA workflow in one file.
//!
//! 1. Generate a small synthetic DAS acquisition (one-minute files in
//!    the paper's HDF5-style schema).
//! 2. Find files with `das_search`-style queries.
//! 3. Merge them into a Virtually Concatenated Array (VCA).
//! 4. Read a channel subset through a Logical Array View (LAV).
//! 5. Run the local-similarity UDF with the hybrid execution engine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dasgen::{write_minute_files, Scene};
use dassa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 3-minute acquisition: 32 channels at 50 Hz with the demo
    //    events (two vehicles, an earthquake, a persistent source).
    let dir = std::env::temp_dir().join("dassa-quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    let scene = Scene::demo(32, 50.0, 180.0, 7);
    let files = write_minute_files(&scene, &dir, "170728224510", 3)?;
    println!(
        "wrote {} one-minute files to {}",
        files.len(),
        dir.display()
    );

    // 2. Search the catalog (the paper's das_search, §IV-A).
    let catalog = FileCatalog::scan(&dir)?;
    let by_range = catalog.search_range(170728224510, 2)?; // -s ... -c 2
    let by_regex = catalog.search_regex("1707282245[12]0")?; // -e ...
    println!(
        "search: range query hit {} files, regex query hit {} files",
        by_range.len(),
        by_regex.len()
    );

    // 3. Merge into a VCA — metadata only, no data copied.
    let vca = Vca::from_entries(&by_range)?;
    println!(
        "VCA: {} channels x {} samples across {} files (contiguous: {})",
        vca.channels(),
        vca.total_samples(),
        vca.n_files(),
        vca.is_contiguous()
    );

    // 4. Subset channels 8..24 through a LAV and materialize as f64.
    let lav = Lav::full(&vca).select_channels(8..24)?;
    let data = lav.read_f64(&vca)?;
    println!("LAV read: {} x {} samples", data.rows(), data.cols());

    // 5. Local similarity (Algorithm 2) on 4 threads.
    let params = LocalSimiParams {
        half_window: 20,
        channel_offset: 1,
        search_half: 8,
        time_stride: 50,
    };
    let simi = local_similarity(&data, &params, &Haee::builder().threads(4).build());
    let peak = simi.as_slice().iter().cloned().fold(f64::MIN, f64::max);
    let mean = simi.as_slice().iter().sum::<f64>() / simi.len() as f64;
    println!(
        "local similarity map: {} x {}; mean {:.3}, peak {:.3}",
        simi.rows(),
        simi.cols(),
        mean,
        peak
    );
    assert!(peak > mean, "events should stand out from the background");
    println!("ok");
    Ok(())
}
