//! Earthquake detection with local similarity — the paper's first case
//! study (§V-C, Figure 10), end to end with quantitative scoring.
//!
//! A 6-minute record containing an M4.4-like earthquake, two vehicles,
//! and a persistent vibration source is analysed with Algorithm 2; the
//! detected hot cells are checked against the generator's ground truth,
//! and each injected event is individually confirmed.
//!
//! ```sh
//! cargo run --release --example earthquake_detection
//! ```

use dasgen::{Event, Scene};
use dassa::prelude::*;

fn main() {
    let (channels, hz, duration_s) = (48usize, 50.0, 360.0);
    let scene = Scene::demo(channels, hz, duration_s, 21);
    println!("rendering {channels}-channel, {duration_s}-second scene...");
    let samples = scene.samples_for(duration_s);
    let raw32 = scene.render(0.0, samples);
    let data = arrayudf::Array2::from_vec(
        raw32.rows(),
        raw32.cols(),
        raw32.as_slice().iter().map(|&v| v as f64).collect(),
    );

    let params = LocalSimiParams {
        half_window: 25,
        channel_offset: 1,
        search_half: 12,
        time_stride: hz as usize, // one score per second
    };
    println!("running local similarity (Algorithm 2) on 4 threads...");
    let simi = local_similarity(&data, &params, &Haee::builder().threads(4).build());

    // Per-event verification: at moments each event is active, some
    // nearby cell must score above the background.
    let background: f64 = simi.as_slice().iter().sum::<f64>() / simi.len() as f64;
    println!("background similarity: {background:.3}");
    for (i, event) in scene.events.iter().enumerate() {
        let name = match event {
            Event::Vehicle { .. } => "vehicle",
            Event::Earthquake { .. } => "earthquake",
            Event::Persistent { .. } => "persistent source",
        };
        // Scan the score grid for this event's active cells.
        let mut best: f64 = 0.0;
        let mut hits = 0usize;
        let mut active = 0usize;
        for s in 0..simi.cols() {
            let t = s as f64; // seconds (stride = hz)
            for ch in 0..simi.rows() {
                if event.is_active(t, ch as f64) {
                    active += 1;
                    let v = simi.get(ch, s);
                    best = best.max(v);
                    if v > background + 0.15 {
                        hits += 1;
                    }
                }
            }
        }
        let coverage = hits as f64 / active.max(1) as f64;
        println!(
            "event {i} ({name:18}): active cells {active:5}, peak similarity {best:.3}, \
             {:.0}% above background",
            coverage * 100.0
        );
        assert!(
            best > background + 0.2,
            "{name} must produce a clear similarity peak ({best:.3} vs bg {background:.3})"
        );
    }
    println!("all injected events detected — the Figure 10 result holds on synthetic truth");
}
