//! Window-stacked empirical Green's functions — the full ambient-noise
//! interferometry workflow (Dou et al. 2017) whose most expensive stage
//! the DASSA paper implements as Algorithm 3.
//!
//! A common noise wavefield sweeps a 16-channel array with 2 samples of
//! moveout per channel, buried in strong channel-local noise. Stacking
//! window-by-window cross-correlations pulls the traveltime curve out of
//! the noise; the example prints the recovered moveout and shows the SNR
//! rising as more windows accumulate.
//!
//! ```sh
//! cargo run --release --example stacked_egf
//! ```

use arrayudf::Array2;
use dassa::prelude::*;

/// Deterministic white-ish noise.
fn noise(seed: u64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let mut z = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((i as u64).wrapping_mul(0xBF58476D1CE4E5B9));
            z ^= z >> 30;
            z = z.wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 27;
            (z % 2_000_000) as f64 / 1_000_000.0 - 1.0
        })
        .collect()
}

fn build_array(
    channels: usize,
    samples: usize,
    delay_per_ch: usize,
    local_amp: f64,
) -> Array2<f64> {
    let common = noise(1, samples + channels * delay_per_ch);
    let locals: Vec<Vec<f64>> = (0..channels)
        .map(|ch| noise(100 + ch as u64, samples))
        .collect();
    Array2::from_fn(channels, samples, |ch, t| {
        let src = t + (channels - 1 - ch) * delay_per_ch; // wave moves up-channel
        common[src] + local_amp * locals[ch][t]
    })
}

fn main() {
    let channels = 16;
    let delay = 2usize;
    let window = 512;
    let data = build_array(channels, window * 24, delay, 1.5);

    let params = StackingParams {
        window,
        hop: window,
        band: (0.05, 0.8),
        filter_order: 3,
        time_norm: TimeNorm::OneBit,
        whiten: true,
        master_channel: channels - 1, // the wave reaches it first
    };

    println!(
        "stacking {} windows per channel on 4 threads...",
        params.n_windows(data.cols())
    );
    let stacks =
        stacked_interferometry(&data, &params, &Haee::builder().threads(4).build()).expect("stack");

    println!("\nchannel  peak lag (samples)  expected  SNR");
    let mut correct = 0;
    for (ch, s) in stacks.iter().enumerate() {
        // Channels *lead* the master (the wave reaches the master last
        // from their perspective), so the recovered lag is negative.
        let expect = -(((channels - 1 - ch) * delay) as isize);
        let lag = s.peak_lag();
        if (lag - expect).abs() <= 1 {
            correct += 1;
        }
        if ch % 3 == 0 || ch == channels - 1 {
            println!("{ch:7}  {lag:18}  {expect:8}  {:.1}", s.snr());
        }
    }
    println!("\n{correct}/{channels} channels recovered the injected moveout (±1 sample)");
    assert!(correct >= channels - 2, "moveout recovery failed");

    // SNR growth with stack depth: re-run on prefixes of the record.
    println!("\nwindows stacked -> SNR of the farthest channel:");
    for windows in [2usize, 6, 12, 24] {
        let prefix = Array2::from_fn(channels, window * windows, |r, c| data.get(r, c));
        let st = stacked_interferometry(&prefix, &params, &Haee::builder().threads(4).build())
            .expect("stack");
        println!("  {windows:3} windows: SNR {:.2}", st[0].snr());
    }
    println!("\ncoherent signal adds linearly, noise as sqrt(N) — the reason the");
    println!("paper's pipeline exists. ok");
}
