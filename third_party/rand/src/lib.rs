//! Vendored shim for `rand`: seedable pseudo-random `f64`s.
//!
//! Provides the surface `dasgen` uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range}` over `f64`
//! ranges. The generator is SplitMix64: not the real `StdRng` (ChaCha),
//! but statistically fine for synthesizing Gaussian test noise, and
//! deterministic for a given seed.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the generator's full output.
pub trait Standard: Sized {
    fn sample(next_u64: u64) -> Self;
}

impl Standard for f64 {
    fn sample(next_u64: u64) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (next_u64 >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(next_u64: u64) -> u64 {
        next_u64
    }
}

/// Random value generation on top of a raw `u64` stream.
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Sample a value uniformly (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Sample uniformly from a half-open `f64` range.
    fn gen_range(&mut self, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty gen_range");
        let unit: f64 = self.gen();
        let v = range.start + unit * (range.end - range.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= range.end {
            range.end - (range.end - range.start) * f64::EPSILON
        } else {
            v
        }
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v));
        }
    }

    #[test]
    fn output_is_not_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let first = rng.next_u64();
        assert!((0..100).any(|_| rng.next_u64() != first));
    }
}
