//! Vendored shim for `parking_lot`: a [`Mutex`] with the non-poisoning
//! `lock()` signature, backed by `std::sync::Mutex`.
//!
//! Poisoning is deliberately swallowed: `parking_lot` mutexes have no
//! poison state, and the workspace relies on that (a panicking thread in
//! an `omp` team must not poison the shared team state for its peers).

use std::sync::{Mutex as StdMutex, MutexGuard};

/// Non-poisoning mutual exclusion, API-compatible with
/// `parking_lot::Mutex` for the operations this workspace uses.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread. Unlike
    /// `std::sync::Mutex`, a panic in a previous holder does not poison
    /// the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // A poisoned std mutex would panic here; the shim must not.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
