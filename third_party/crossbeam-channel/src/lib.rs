//! Vendored shim for `crossbeam-channel`: an unbounded MPMC channel.
//!
//! Implements the surface `minimpi` uses: [`unbounded`], cloneable
//! [`Sender`]/[`Receiver`], `send`, `recv`, `try_recv`, and
//! `recv_timeout`. Backed by a `Mutex<VecDeque>` + `Condvar`, which is
//! plenty for an in-process MPI stand-in whose messages are whole array
//! blocks, not nanosecond-scale signals.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Deadline passed with no message.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// The sending half; cloneable.
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half; cloneable (MPMC).
pub struct Receiver<T>(Arc<Shared<T>>);

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    match shared.queue.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl<T> Sender<T> {
    /// Enqueue `value`; never blocks. Fails only when every receiver has
    /// been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.0.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        lock(&self.0).push_back(value);
        self.0.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.0.senders.fetch_add(1, Ordering::Relaxed);
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake blocked receivers so they can observe
            // disconnection.
            self.0.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = lock(&self.0);
        match q.pop_front() {
            Some(v) => Ok(v),
            None if self.0.senders.load(Ordering::Acquire) == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking receive; errors once the channel is empty and all
    /// senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = lock(&self.0);
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = match self.0.ready.wait(q) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Blocking receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = lock(&self.0);
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = match self.0.ready.wait_timeout(q, deadline - now) {
                Ok(r) => r,
                Err(p) => {
                    let r = p.into_inner();
                    (r.0, r.1)
                }
            };
            q = guard;
            if result.timed_out() && q.is_empty() && Instant::now() >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.0.receivers.fetch_add(1, Ordering::Relaxed);
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.0.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(7u32).unwrap();
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<u8>();
        let t0 = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn disconnect_is_observable() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }
}
