//! Vendored shim for `bytes`: the [`Buf`]/[`BufMut`] little-endian
//! accessors `dasf` uses for its on-disk encoding.
//!
//! `Buf` is implemented for `&[u8]` (the reader advances the slice in
//! place), `BufMut` for `Vec<u8>`. Getters panic on underflow, matching
//! the real crate; `dasf` guards every get with an explicit length check.

/// Sequential little-endian reads from a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Discard the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Copy out the next `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Sequential little-endian writes to a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(u64::MAX - 1);
        out.put_i64_le(-42);
        out.put_f64_le(std::f64::consts::PI);

        let mut buf: &[u8] = &out;
        assert_eq!(buf.remaining(), 1 + 4 + 8 + 8 + 8);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), u64::MAX - 1);
        assert_eq!(buf.get_i64_le(), -42);
        assert_eq!(buf.get_f64_le(), std::f64::consts::PI);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut buf: &[u8] = &data;
        buf.advance(3);
        assert_eq!(buf.get_u8(), 4);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1, 2];
        let _ = buf.get_u32_le();
    }
}
