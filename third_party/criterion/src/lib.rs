//! Vendored shim for `criterion`: enough API to compile and run the
//! workspace's benches without the real statistics engine.
//!
//! Each benchmark runs a short warm-up + timing loop and prints the mean
//! iteration time (plus throughput when declared). Under `cargo test`
//! (cargo passes `--test` to `harness = false` bench targets) every
//! benchmark body executes exactly once, so the benches double as smoke
//! tests without minutes of timing loops.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measured quantity per iteration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new<P: Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form (group name supplies the prefix).
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// `--test` mode: run each body once, skip timing.
    smoke_only: bool,
}

impl Config {
    fn detect() -> Config {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(20),
            smoke_only: std::env::args().any(|a| a == "--test"),
        }
    }
}

/// Top-level benchmark driver (a stand-in for criterion's `Criterion`).
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            config: Config::detect(),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark (capped loop count in the shim).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.config.sample_size = n.max(1);
        self
    }

    /// Target measurement duration (capped at 200 ms in the shim so
    /// bench binaries stay quick).
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.config.measurement_time = t.min(Duration::from_millis(200));
        self
    }

    /// Warm-up duration (capped at 20 ms in the shim).
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.config.warm_up_time = t.min(Duration::from_millis(20));
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            config,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.config, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    config: Config,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Override measurement time for this group (capped, see shim note).
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t.min(Duration::from_millis(200));
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_benchmark(&full, self.config, self.throughput, f);
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{id}", self.name);
        run_benchmark(&full, self.config, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark bodies; `iter` runs the measured routine.
pub struct Bencher {
    config: Config,
    /// Mean ns/iter from the most recent `iter` call.
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, storing the mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.config.smoke_only {
            std::hint::black_box(routine());
            self.mean_ns = 0.0;
            return;
        }
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        // Measurement: bounded by both sample count and wall-clock.
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if iters >= self.config.sample_size as u64
                || start.elapsed() >= self.config.measurement_time
            {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    config: Config,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        config,
        mean_ns: 0.0,
    };
    f(&mut bencher);
    if config.smoke_only {
        println!("bench {id:<50} ok (smoke)");
        return;
    }
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if bencher.mean_ns > 0.0 => {
            format!(
                "  {:>9.1} MiB/s",
                b as f64 / bencher.mean_ns * 1e9 / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if bencher.mean_ns > 0.0 => {
            format!("  {:>9.2} Melem/s", n as f64 / bencher.mean_ns * 1e9 / 1e6)
        }
        _ => String::new(),
    };
    println!("bench {id:<50} {:>12.0} ns/iter{rate}", bencher.mean_ns);
}

/// Declare a group function running the listed benchmark functions.
///
/// Supports both the simple form `criterion_group!(name, f1, f2)` and
/// the block form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fft", 1024).to_string(), "fft/1024");
        assert_eq!(BenchmarkId::from_parameter("coll").to_string(), "coll");
    }

    #[test]
    fn iter_runs_routine() {
        let mut c = Criterion::default().sample_size(3);
        c.config.smoke_only = false;
        c.config.warm_up_time = Duration::from_micros(1);
        c.config.measurement_time = Duration::from_millis(5);
        let mut calls = 0u32;
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(1));
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls >= 2, "warm-up + at least one sample, got {calls}");
    }

    #[test]
    fn group_macro_compiles() {
        fn noop(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group! {
            name = shim_group;
            config = Criterion::default().sample_size(1);
            targets = noop
        }
        shim_group();
    }
}
