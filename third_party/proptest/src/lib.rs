//! Vendored shim for `proptest`: deterministic, generation-only property
//! testing.
//!
//! Implements the API surface this workspace's property tests use — the
//! [`proptest!`] macro family, the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_recursive` / tuples / unions, `any::<T>()`,
//! numeric-range strategies, `prop::collection::vec`,
//! `prop::sample::select`, and `&str` regex-ish string patterns.
//!
//! Differences from the real crate, on purpose:
//!
//! * **No shrinking.** A failing case reports the generated inputs (via
//!   the `prop_assert*` message and the case seed) but is not minimized.
//! * **Deterministic.** The RNG seed is derived from the test name and
//!   case index, so failures reproduce exactly across runs and machines.
//! * **Generation only.** Strategies are sampled directly; there is no
//!   value tree.

pub mod test_runner {
    /// Per-test configuration; only `cases` matters to the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered this case out; try another.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(reason: S) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject<S: Into<String>>(reason: S) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    /// SplitMix64 stream seeded from the test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG for one test case.
        pub fn for_case(test_name: &str, case: u64) -> TestRng {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit output (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Drives one property: generation loop, rejection retries, panic on
    /// failure. Called from the expansion of [`crate::proptest!`].
    pub fn run_property<F>(test_name: &str, config: &ProptestConfig, mut case_fn: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        const MAX_REJECTS_PER_CASE: u32 = 64;
        for case in 0..config.cases as u64 {
            let mut rejects = 0;
            loop {
                // Re-derive on retry so rejected cases get fresh inputs.
                let mut rng = TestRng::for_case(test_name, case ^ ((rejects as u64) << 32));
                match case_fn(&mut rng) {
                    Ok(()) => break,
                    Err(TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects >= MAX_REJECTS_PER_CASE {
                            // Give up on this case rather than spin; the
                            // property was vacuously true for it.
                            break;
                        }
                    }
                    Err(TestCaseError::Fail(reason)) => {
                        panic!(
                            "property `{test_name}` failed at case {case}: {reason} \
                             (deterministic seed; rerun reproduces)"
                        );
                    }
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Generation-only: `generate` samples directly from the RNG; there
    /// is no value tree and no shrinking.
    pub trait Strategy {
        type Value;

        /// Sample one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a cloneable boxed strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Build recursive structures: `recurse` receives a strategy for
        /// the previous depth level and returns the next one. `depth`
        /// bounds nesting; the size hints are accepted for API parity
        /// but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut level = leaf.clone();
            for _ in 0..depth {
                // Mix the leaf back in at every level so generated trees
                // vary in depth instead of always bottoming out at max.
                level = Union::new(vec![leaf.clone(), recurse(level).boxed()]).boxed();
            }
            level
        }
    }

    /// Object-safe view of [`Strategy`] for boxing.
    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (start as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

    /// `&'static str` patterns like `"[abc]{0,8}"` generate matching
    /// strings. Supported syntax: literal characters, `[...]` classes
    /// with ranges (a trailing `-` is literal), and an optional `{m,n}`
    /// repetition after any atom.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a char class or a literal character.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let mut members = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range in pattern {pattern:?}");
                        members.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        members.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                members
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional {m,n} repetition.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                let (m, n) = match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse::<usize>().expect("repeat min"),
                        n.parse::<usize>().expect("repeat max"),
                    ),
                    None => {
                        let k = body.parse::<usize>().expect("repeat count");
                        (k, k)
                    }
                };
                i = close + 1;
                (m, n)
            } else {
                (1, 1)
            };
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }

    /// Marker for [`crate::arbitrary::any`]'s return type.
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating any value of `T` (integers: full range).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact `usize` or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element` and whose
    /// length is drawn from `size` (a `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Choose uniformly from `options` (must be nonempty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty set");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Namespace mirror of the real crate's `prop::` paths.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            // Strategies are built once and sampled per case.
            $(let $arg = &($strat);)+
            let __strategies = ($($arg,)+);
            $crate::test_runner::run_property(
                stringify!($name),
                &config,
                |rng| {
                    let ($($arg,)+) = __strategies;
                    $(let $arg = $crate::strategy::Strategy::generate($arg, rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError>
                        = (|| { $body ::std::result::Result::Ok(()) })();
                    __result
                },
            );
        }
    )*};
}

/// Assert a condition inside a `proptest!` body; failure reports the
/// formatted message without panicking the whole harness thread early.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Skip cases that don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (1usize..9).generate(&mut rng);
            assert!((1..9).contains(&v));
            let f = (-1e3f64..1e3).generate(&mut rng);
            assert!((-1e3..1e3).contains(&f));
            let i = (-1000i64..1000).generate(&mut rng);
            assert!((-1000..1000).contains(&i));
        }
    }

    #[test]
    fn vec_respects_size_forms() {
        let mut rng = crate::test_runner::TestRng::for_case("vecs", 0);
        for _ in 0..200 {
            let exact = prop::collection::vec(any::<i64>(), 8).generate(&mut rng);
            assert_eq!(exact.len(), 8);
            let ranged = prop::collection::vec(0u64..5, 0..32).generate(&mut rng);
            assert!(ranged.len() < 32);
            assert!(ranged.iter().all(|&v| v < 5));
        }
    }

    #[test]
    fn string_pattern_generates_matching_text() {
        let mut rng = crate::test_runner::TestRng::for_case("pat", 0);
        for _ in 0..500 {
            let s = "[abc]{0,8}".generate(&mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| "abc".contains(c)));

            let k = "k[a-zA-Z0-9 _()-]{0,24}".generate(&mut rng);
            assert!(k.starts_with('k'));
            assert!(k.len() <= 25);
            assert!(k
                .chars()
                .skip(1)
                .all(|c| { c.is_ascii_alphanumeric() || " _()-".contains(c) }));
        }
    }

    #[test]
    fn oneof_and_recursive_produce_all_variants() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf(char),
            Dot,
            Pair(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Pair(a, b) => 1 + depth(a).max(depth(b)),
                _ => 0,
            }
        }
        let leaf = prop_oneof![
            prop::sample::select(vec!['a', 'b']).prop_map(T::Leaf),
            Just(T::Dot),
        ];
        let strat = leaf.prop_recursive(3, 12, 3, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::for_case("rec", 0);
        let mut saw_pair = false;
        let mut saw_leaf = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            match t {
                T::Pair(..) => saw_pair = true,
                _ => saw_leaf = true,
            }
        }
        assert!(saw_pair && saw_leaf);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(x in 0u64..100, v in prop::collection::vec(any::<i32>(), 0..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assume!(x != 1_000_000); // never rejects
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    #[allow(unnameable_test_items)] // the macro expands a #[test] fn inside this fn on purpose
    fn failing_property_panics() {
        proptest! {
            #[test]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
