//! Acceptance test for the tracing + cluster-metrics tentpole: a
//! pipeline-shaped run under a 4-rank chaos world must produce a Chrome
//! trace whose events span every rank and thread with zero drops at the
//! default ring capacity, and a cluster snapshot with a per-metric
//! imbalance ratio.

use arrayudf::Array2;
use dassa::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

const RANKS: usize = 4;

fn build_corpus(dir: &std::path::Path, files: usize, channels: u64, samples: u64) {
    std::fs::create_dir_all(dir).expect("corpus dir");
    let t0 = Timestamp::parse("170728224510").expect("ts");
    for f in 0..files {
        let ts = t0.add_minutes(f as u64);
        let data = Array2::from_fn(channels as usize, samples as usize, |r, c| {
            (f * 31 + r * 7 + c) as f32 * 0.5
        });
        let meta = DasFileMeta {
            sampling_hz: (samples / 60).max(1) as i64,
            spatial_resolution_m: 2.0,
            timestamp: ts,
            channels,
            samples,
        };
        write_das_file(&dir.join(das_file_name(&ts)), &meta, &data).expect("write member");
    }
}

#[test]
fn chaos_world_run_yields_full_trace_and_cluster_snapshot() {
    let dir = std::env::temp_dir().join("dassa-tracing-acceptance");
    let _ = std::fs::remove_dir_all(&dir);
    build_corpus(&dir, 6, 8, 120);
    let catalog = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(catalog.entries()).expect("vca");

    // Default-capacity tracer on the global registry: every already-
    // instrumented site (dasf reads, minimpi collectives, par_read
    // phases, span guards) lands on the timeline without further wiring.
    let tracer = obs::trace::enable_global(obs::trace::DEFAULT_CAPACITY);

    // Transient faults at every member read: each file fails a capped
    // number of times and then succeeds, so retry counters light up on
    // every rank while the gather still completes (no dead ranks).
    let plan = Arc::new(faultline::FaultPlan::parse("seed=11,par_read.file=1.0").expect("plan"));
    let (results, _world) = minimpi::run_chaos(
        RANKS,
        plan,
        minimpi::RetryPolicy::default(),
        |comm| -> dassa::Result<_> {
            let (block, report) = read_vca_resilient(comm, &vca, ReadStrategy::Auto)?;
            let cluster = comm
                .try_cluster_snapshot()
                .expect("gather per-rank snapshots");
            Ok((block, report, cluster))
        },
    );

    // Every rank read its full channel partition; faults were transient.
    let mut cluster = None;
    for (rank, result) in results.into_iter().enumerate() {
        let (block, report, cluster_at_rank) = result.expect("rank read");
        assert!(block.rows() > 0 && block.cols() == 6 * 120, "rank {rank}");
        assert!(report.quarantined.is_empty(), "rank {rank} quarantined");
        assert!(report.io_retries > 0, "rank {rank} saw no injected faults");
        if rank == 0 {
            cluster = cluster_at_rank;
        } else {
            assert!(cluster_at_rank.is_none(), "only root holds the gather");
        }
    }

    // -- ClusterSnapshot: per-rank breakdown with imbalance ratios.
    let cluster = cluster.expect("root cluster snapshot");
    assert_eq!(cluster.size(), RANKS);
    let retry_stats = cluster
        .counter_stats(dassa::dass::par_read::metric_names::RETRIES)
        .expect("per-rank retry counters");
    assert!(retry_stats.sum > 0, "retries must be visible per rank");
    assert!(retry_stats.imbalance() >= 1.0);
    let any_positive = cluster
        .counter_names()
        .iter()
        .filter_map(|n| cluster.counter_stats(n))
        .any(|s| s.sum > 0 && s.imbalance() >= 1.0);
    assert!(any_positive);
    assert!(cluster.render_text().contains("imbalance="));
    // The combined metrics document round-trips through the shared
    // JSON layer.
    let combined = cluster.aggregate().to_json_with_cluster(&cluster);
    assert_eq!(
        obs::ClusterSnapshot::from_json(&combined).expect("reparse"),
        cluster
    );

    // -- Chrome trace: all ranks and threads, zero drops, exact codec.
    let trace = tracer.collect();
    assert_eq!(trace.dropped, 0, "default ring capacity must not drop");
    assert_eq!(obs::global().snapshot().counter("trace.dropped"), 0);
    let pids: BTreeSet<u32> = trace.events.iter().map(|e| e.rank).collect();
    for rank in 0..RANKS as u32 {
        assert!(pids.contains(&rank), "no events from rank {rank}: {pids:?}");
    }
    let threads: BTreeSet<(u32, u32)> = trace.events.iter().map(|e| (e.rank, e.tid)).collect();
    assert!(threads.len() >= RANKS, "events span {threads:?}");

    let json = trace.to_chrome_json();
    for field in ["\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":", "\"name\":"] {
        assert!(json.contains(field), "missing {field}");
    }
    assert!(json.contains("\"dropped\":0"));
    let back = obs::Trace::from_chrome_json(&json).expect("parse trace back");
    assert_eq!(back, trace);

    // The instrumented layers all made it onto the timeline.
    let names: BTreeSet<&str> = trace.events.iter().map(|e| e.name.as_str()).collect();
    assert!(
        names.iter().any(|n| n.starts_with("dasf.")),
        "dasf events missing: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("minimpi.")),
        "minimpi events missing: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("par_read.")),
        "par_read events missing: {names:?}"
    );
}
