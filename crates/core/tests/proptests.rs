//! Property tests for the DASSA storage engine: random geometries,
//! random selections, random rank counts — VCA, LAV, RCA, and both
//! parallel readers must all agree with each other.

use arrayudf::Array2;
use dassa::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Build a dataset with per-file deterministic contents; returns
/// `(dir, full expected array)`.
fn build_dataset(files: usize, channels: u64, samples: u64, seed: u64) -> (PathBuf, Array2<f32>) {
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dassa-core-prop-{id}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("dir");
    let t0 = Timestamp::parse("170728224510").expect("ts");
    let mut full_cols: Vec<Array2<f32>> = Vec::new();
    for f in 0..files {
        let ts = t0.add_minutes(f as u64);
        let data = Array2::from_fn(channels as usize, samples as usize, |r, c| {
            let mut z = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(
                ((f * 1_000_003 + r * 1_009 + c) as u64).wrapping_mul(0xBF58476D1CE4E5B9),
            );
            z ^= z >> 31;
            (z % 100_000) as f32 / 100.0
        });
        let meta = DasFileMeta {
            sampling_hz: (samples / 60).max(1) as i64,
            spatial_resolution_m: 2.0,
            timestamp: ts,
            channels,
            samples,
        };
        write_das_file(&dir.join(das_file_name(&ts)), &meta, &data).expect("write");
        full_cols.push(data);
    }
    // Expected: horizontal concatenation along time.
    let total = (samples as usize) * files;
    let expected = Array2::from_fn(channels as usize, total, |r, c| {
        full_cols[c / samples as usize].get(r, c % samples as usize)
    });
    (dir, expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn vca_reads_equal_expected_everywhere(
        files in 1usize..5,
        channels in 1u64..8,
        samples in 1u64..40,
        seed in any::<u64>(),
    ) {
        let (dir, expected) = build_dataset(files, channels, samples, seed);
        let cat = FileCatalog::scan(&dir).expect("scan");
        let vca = Vca::from_entries(cat.entries()).expect("vca");
        prop_assert_eq!(vca.read_all_f32().expect("read"), expected);
    }

    #[test]
    fn random_region_reads_match_slicing(
        files in 1usize..4,
        channels in 2u64..8,
        samples in 4u64..30,
        c_frac in 0.0f64..1.0,
        t_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let (dir, expected) = build_dataset(files, channels, samples, seed);
        let cat = FileCatalog::scan(&dir).expect("scan");
        let vca = Vca::from_entries(cat.entries()).expect("vca");
        let total = samples * files as u64;
        let c0 = (c_frac * channels as f64) as u64 % channels;
        let t0 = (t_frac * total as f64) as u64 % total;
        let cn = 1 + (channels - c0 - 1).min(3);
        let tn = 1 + (total - t0 - 1).min(25);
        let region = vca.read_region_f32(c0..c0 + cn, t0..t0 + tn).expect("region");
        for r in 0..cn as usize {
            for c in 0..tn as usize {
                prop_assert_eq!(
                    region.get(r, c),
                    expected.get(c0 as usize + r, t0 as usize + c)
                );
            }
        }
        // LAV over the same region agrees.
        let lav = Lav::new(c0..c0 + cn, t0..t0 + tn);
        prop_assert_eq!(lav.read_f32(&vca).expect("lav"), region);
    }

    #[test]
    fn readers_and_rca_all_agree(
        files in 1usize..4,
        channels in 1u64..7,
        samples in 1u64..24,
        ranks in 1usize..5,
        seed in any::<u64>(),
    ) {
        let (dir, expected) = build_dataset(files, channels, samples, seed);
        let cat = FileCatalog::scan(&dir).expect("scan");
        let vca = Vca::from_entries(cat.entries()).expect("vca");

        let coll = minimpi::run(ranks, |c| read_collective_per_file(c, &vca).expect("coll"));
        let ca = minimpi::run(ranks, |c| read_comm_avoiding(c, &vca).expect("ca"));
        prop_assert_eq!(Array2::vstack(&coll), expected.clone());
        prop_assert_eq!(Array2::vstack(&ca), expected.clone());

        let rca_path = dir.join("prop.rca.dasf");
        create_rca(cat.entries(), &rca_path).expect("rca");
        let (_, rca_data) = read_rca(&rca_path).expect("read rca");
        prop_assert_eq!(rca_data, expected);
    }

    /// The observability counters expose the paper's §IV-B communication
    /// asymmetry: the collective reader broadcasts every file to every
    /// rank (O(n·p) traffic, one bcast per file per rank), while the
    /// comm-avoiding reader does a single alltoallv per rank moving only
    /// the misplaced blocks (O(n) traffic).
    #[test]
    fn par_read_obs_counters_expose_comm_asymmetry(
        files in 1usize..4,
        channels in 2u64..8,
        samples in 8u64..40,
        ranks in 2usize..5,
        seed in any::<u64>(),
    ) {
        use dassa::prelude::*;
        use dassa::prelude::par_read::metric_names as pr;
        use minimpi::metric_names as mm;
        use std::sync::Arc;

        let (dir, _) = build_dataset(files, channels, samples, seed);
        let cat = FileCatalog::scan(&dir).expect("scan");
        let vca = Vca::from_entries(cat.entries()).expect("vca");

        let coll_reg = Arc::new(obs::Registry::new());
        minimpi::run_in_registry(ranks, Arc::clone(&coll_reg), |c| {
            read_collective_per_file(c, &vca).expect("coll")
        });
        let coll = coll_reg.snapshot();

        let ca_reg = Arc::new(obs::Registry::new());
        minimpi::run_in_registry(ranks, Arc::clone(&ca_reg), |c| {
            read_comm_avoiding(c, &vca).expect("ca")
        });
        let ca = ca_reg.snapshot();

        // Collective: one bcast per file per rank, no alltoallv.
        prop_assert_eq!(coll.counter(mm::BCASTS), (files * ranks) as u64);
        prop_assert_eq!(coll.counter(mm::ALLTOALLVS), 0);
        // Comm-avoiding: exactly one alltoallv per rank, no broadcasts.
        prop_assert_eq!(ca.counter(mm::ALLTOALLVS), ranks as u64);
        prop_assert_eq!(ca.counter(mm::BCASTS), 0);
        // O(n·p) vs O(n): with ≥2 ranks the broadcasts move at least as
        // many payload bytes as the alltoallv exchange.
        prop_assert!(
            coll.counter(mm::P2P_BYTES) >= ca.counter(mm::P2P_BYTES),
            "collective {} bytes < comm-avoiding {} bytes",
            coll.counter(mm::P2P_BYTES),
            ca.counter(mm::P2P_BYTES)
        );
        // Each strategy records its stage breakdown once per rank.
        prop_assert_eq!(
            coll.histogram(pr::COLLECTIVE_READ_NS).map(|h| h.count),
            Some(ranks as u64)
        );
        prop_assert_eq!(
            ca.histogram(pr::CA_EXCHANGE_NS).map(|h| h.count),
            Some(ranks as u64)
        );
    }

    /// With faults disabled, the resilient readers are *exactly* the
    /// plain readers: same array from both strategies on any
    /// file/channel/rank split, a clean [`ReadReport`] on every rank,
    /// and the same answer whether the world is a classic blocking one
    /// or a chaos world carrying an empty fault plan.
    #[test]
    fn resilient_readers_match_plain_when_faults_are_off(
        files in 1usize..4,
        channels in 1u64..7,
        samples in 1u64..24,
        ranks in 1usize..5,
        seed in any::<u64>(),
    ) {
        use std::sync::Arc;

        let (dir, expected) = build_dataset(files, channels, samples, seed);
        let cat = FileCatalog::scan(&dir).expect("scan");
        let vca = Vca::from_entries(cat.entries()).expect("vca");

        let coll = minimpi::run(ranks, |c| {
            read_collective_per_file_resilient(c, &vca).expect("coll")
        });
        let ca = minimpi::run(ranks, |c| {
            read_comm_avoiding_resilient(c, &vca).expect("ca")
        });
        for (block_report, what) in coll.iter().chain(&ca).map(|r| (r, "resilient")) {
            prop_assert!(block_report.1.is_clean(), "{what}: dirty report {:?}", block_report.1);
        }
        let coll_blocks: Vec<_> = coll.into_iter().map(|(b, _)| b).collect();
        let ca_blocks: Vec<_> = ca.into_iter().map(|(b, _)| b).collect();
        prop_assert_eq!(Array2::vstack(&coll_blocks), expected.clone());
        prop_assert_eq!(Array2::vstack(&ca_blocks), expected.clone());

        // An installed-but-empty plan (no site rates) must change nothing:
        // bounded retries, timeouts, and the fault hooks all stay inert.
        let plan = Arc::new(faultline::FaultPlan::new(seed));
        let (results, _reg) = minimpi::run_chaos(
            ranks,
            plan,
            minimpi::RetryPolicy::default(),
            |c| read_vca_resilient(c, &vca, ReadStrategy::Auto).expect("chaos clean"),
        );
        let mut blocks = Vec::new();
        for (block, report) in results {
            prop_assert!(report.is_clean(), "empty plan produced faults: {report:?}");
            blocks.push(block);
        }
        prop_assert_eq!(Array2::vstack(&blocks), expected);
    }

    #[test]
    fn timestamp_roundtrip_and_arithmetic(minutes in 0u64..2_000_000) {
        let t0 = Timestamp::parse("170101000000").expect("ts");
        let later = t0.add_minutes(minutes);
        // Round-trip through the compact form.
        let reparsed = Timestamp::parse(&later.to_compact()).expect("reparse");
        prop_assert_eq!(reparsed, later);
        // Arithmetic consistency.
        prop_assert_eq!(t0.minutes_until(&later), minutes);
        prop_assert_eq!(
            later.epoch_seconds() - t0.epoch_seconds(),
            minutes * 60
        );
    }
}

/// A snapshot full of real parallel-read metrics survives the JSON
/// exporter round-trip — what `das_pipeline --metrics=out.json` writes
/// is exactly what a consumer parses back.
#[test]
fn metrics_json_round_trips_real_workload() {
    use std::sync::Arc;

    let (dir, _) = build_dataset(3, 5, 30, 0x15A);
    let cat = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(cat.entries()).expect("vca");
    let registry = Arc::new(obs::Registry::new());
    minimpi::run_in_registry(3, Arc::clone(&registry), |c| {
        read_comm_avoiding(c, &vca).expect("ca")
    });

    let snap = registry.snapshot();
    assert!(!snap.counters.is_empty(), "workload produced no counters");
    assert!(
        !snap.histograms.is_empty(),
        "workload produced no histograms"
    );
    let parsed = obs::Snapshot::from_json(&snap.to_json()).expect("parse");
    assert_eq!(parsed, snap);
}
