//! Property tests for the ingest ordering layer: whatever order —
//! shuffled, duplicated, gapped — minute files arrive in, the
//! [`MinuteIndex`] must land in one deterministic state, and its gap
//! accounting must be the exact complement of what was admitted.

use dassa::ingest::{Admit, MinuteIndex};
use dassa::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// A fabricated one-minute entry (admission never touches the disk;
/// only window reads do).
fn entry_for(minute: u64, tag: &str) -> FileEntry {
    let ts = Timestamp::from_epoch_minutes(minute);
    FileEntry {
        path: PathBuf::from(format!("/spool/{tag}/{}", das_file_name(&ts))),
        meta: DasFileMeta {
            sampling_hz: 4,
            spatial_resolution_m: 2.0,
            timestamp: ts,
            channels: 3,
            samples: 240,
        },
    }
}

/// Seeded Fisher–Yates over the arrival order (the shim's proptest has
/// no `prop_shuffle`; a splitmix-driven shuffle keeps cases replayable
/// from their seed).
fn shuffled(n: usize, mut seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        order.swap(i, (z % (i as u64 + 1)) as usize);
    }
    order
}

/// Apply `perm` (indices into `minutes`) as the arrival order.
fn admit_all(minutes: &[u64], perm: &[usize]) -> (MinuteIndex, u64) {
    let mut index = MinuteIndex::new();
    let mut duplicates = 0u64;
    for &i in perm {
        match index.admit(entry_for(minutes[i], "perm")).expect("admit") {
            Admit::Admitted => {}
            Admit::Duplicate => duplicates += 1,
        }
    }
    (index, duplicates)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn admitted_order_is_arrival_independent(
        minutes in proptest::collection::vec(0u64..400, 1..24),
        seed in any::<u64>(),
    ) {
        let perm = shuffled(minutes.len(), seed);
        let (index, duplicates) = admit_all(&minutes, &perm);
        let identity: Vec<usize> = (0..minutes.len()).collect();
        let (in_order, _) = admit_all(&minutes, &identity);

        let unique: BTreeSet<u64> = minutes.iter().copied().collect();
        let expect: Vec<u64> = unique.iter().copied().collect();
        prop_assert_eq!(index.minutes().collect::<Vec<_>>(), expect.clone());
        prop_assert_eq!(in_order.minutes().collect::<Vec<_>>(), expect);
        prop_assert_eq!(duplicates, (minutes.len() - unique.len()) as u64);
        prop_assert_eq!(index.base_minute(), unique.first().copied());
        prop_assert_eq!(index.max_end_minute(), unique.last().map(|m| m + 1));
    }

    #[test]
    fn first_writer_wins_under_any_order(
        minutes in proptest::collection::vec(0u64..200, 1..16),
        seed in any::<u64>(),
    ) {
        // Deliver every minute in permuted order under alternating
        // tags; whichever path lands first on a minute must still back
        // it after the dust settles.
        let perm = shuffled(minutes.len(), seed);
        let mut index = MinuteIndex::new();
        let mut first_seen: std::collections::BTreeMap<u64, PathBuf> = Default::default();
        for (round, &i) in perm.iter().enumerate() {
            let tag = if round % 2 == 0 { "a" } else { "b" };
            let e = entry_for(minutes[i], tag);
            first_seen.entry(minutes[i]).or_insert_with(|| e.path.clone());
            index.admit(e).expect("admit");
        }
        for (minute, path) in &first_seen {
            prop_assert_eq!(&index.entry_at(*minute).expect("present").path, path);
        }
    }

    #[test]
    fn gap_spans_are_the_exact_complement(
        minutes in proptest::collection::vec(0u64..400, 1..24),
        seed in any::<u64>(),
    ) {
        let perm = shuffled(minutes.len(), seed);
        let (index, _) = admit_all(&minutes, &perm);
        let unique: BTreeSet<u64> = minutes.iter().copied().collect();
        let lo = *unique.first().expect("non-empty");
        let hi = *unique.last().expect("non-empty") + 1;
        // Probe a window wider than the data on both sides.
        let range = lo.saturating_sub(3)..hi + 3;
        let spans = index.gap_spans(range.clone());

        // Rebuild coverage from the spans and check it is precisely
        // the non-admitted minutes, with spans sorted, non-empty, and
        // non-adjacent (maximal).
        let mut covered = BTreeSet::new();
        let mut prev_end = None;
        for s in &spans {
            prop_assert!(s.start < s.end, "empty span {:?}", s);
            if let Some(p) = prev_end {
                prop_assert!(s.start > p, "spans touch or overlap");
            }
            prev_end = Some(s.end);
            covered.extend(s.clone());
        }
        let expect: BTreeSet<u64> = range.filter(|m| !unique.contains(m)).collect();
        prop_assert_eq!(covered, expect);
    }

    #[test]
    fn epoch_minutes_round_trip(minute in 0u64..52_000_000) {
        // 0..52M covers the full 2000–2099 span the format encodes.
        let ts = Timestamp::from_epoch_minutes(minute);
        prop_assert_eq!(ts.epoch_minutes(), minute);
        // And the compact rendering stays parseable and equal.
        let reparsed = Timestamp::parse(&ts.to_compact()).expect("compact parses");
        prop_assert_eq!(reparsed, ts);
    }

    #[test]
    fn timestamp_order_matches_minute_order(
        a in 0u64..52_000_000,
        b in 0u64..52_000_000,
    ) {
        let (ta, tb) = (Timestamp::from_epoch_minutes(a), Timestamp::from_epoch_minutes(b));
        prop_assert_eq!(a.cmp(&b), ta.cmp(&tb));
    }
}
