//! Property tests for the `dassd` chunk cache, in the style of
//! `plan_equivalence.rs`: random get sequences against a small corpus
//! must keep resident bytes within capacity, account every get as
//! exactly one hit or miss, return bytes identical to disk even after
//! evict-and-refetch, and never serve a chunk that fails checksum
//! verification.

use arrayudf::Array2;
use dassa::dassd::cache::{metric_names, ChunkCache};
use dassa::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Write `files` member files with deterministic contents; returns
/// `(dir, per-file paths, per-file golden data)`.
fn build_dataset(
    files: usize,
    channels: u64,
    samples: u64,
    seed: u64,
) -> (PathBuf, Vec<PathBuf>, Vec<Array2<f32>>) {
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dassa-dassd-cache-{id}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("dir");
    let t0 = Timestamp::parse("170728224510").expect("ts");
    let mut paths = Vec::new();
    let mut golden = Vec::new();
    for f in 0..files {
        let ts = t0.add_minutes(f as u64);
        let data = Array2::from_fn(channels as usize, samples as usize, |r, c| {
            let mut z = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(
                ((f * 1_000_003 + r * 1_009 + c) as u64).wrapping_mul(0xBF58476D1CE4E5B9),
            );
            z ^= z >> 31;
            (z % 100_000) as f32 / 100.0
        });
        let meta = DasFileMeta {
            sampling_hz: (samples / 60).max(1) as i64,
            spatial_resolution_m: 2.0,
            timestamp: ts,
            channels,
            samples,
        };
        let path = dir.join(das_file_name(&ts));
        write_das_file(&path, &meta, &data).expect("write");
        paths.push(path);
        golden.push(data);
    }
    (dir, paths, golden)
}

fn fresh_registry() -> Arc<obs::Registry> {
    Arc::new(obs::Registry::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random get sequences: after every get, resident bytes are
    /// within capacity (checked both live and via the high-water
    /// histogram), `hit + miss` equals total gets, and every returned
    /// chunk — first fetch, cache hit, or refetch after eviction — is
    /// byte-identical to the golden data written to disk.
    #[test]
    fn random_gets_stay_bounded_and_byte_identical(
        files in 2usize..6,
        channels in 1u64..5,
        samples in 8u64..64,
        capacity_files in 1u64..4,
        accesses in proptest::collection::vec(0usize..6, 1..40),
        seed in any::<u64>(),
    ) {
        let (dir, paths, golden) = build_dataset(files, channels, samples, seed);
        let file_bytes = channels * samples * 4;
        // Capacity holds `capacity_files` whole entries (possibly
        // fewer than the corpus), plus slack below one entry so a
        // partial fit never admits an extra chunk.
        let capacity = file_bytes * capacity_files + file_bytes / 3;
        let reg = fresh_registry();
        let cache = ChunkCache::new(capacity, DATASET_PATH, &reg);

        let mut gets = 0u64;
        for a in accesses {
            let i = a % files;
            let chunk = cache.get_or_read(&paths[i]).expect("get");
            gets += 1;
            prop_assert_eq!(chunk.rows() as u64, channels);
            prop_assert_eq!(chunk.cols() as u64, samples);
            prop_assert_eq!(
                chunk.data(), golden[i].as_slice(),
                "file {} drifted from disk", i
            );
            prop_assert!(cache.resident_bytes() <= capacity);
        }

        let snap = reg.snapshot();
        prop_assert_eq!(
            snap.counter(metric_names::HIT) + snap.counter(metric_names::MISS),
            gets,
            "every get is exactly one hit or one miss"
        );
        prop_assert_eq!(snap.gauge(metric_names::BYTES), cache.resident_bytes());
        if let Some(h) = snap.histogram(metric_names::RESIDENT_BYTES) {
            prop_assert!(h.max <= capacity, "high-water {} > capacity {}", h.max, capacity);
        }
        prop_assert!(snap.counter(metric_names::MISS) >= 1, "the first get must miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Hyperslab slices of a cached chunk match a direct
    /// `read_hyperslab_into` of the same file, for random windows.
    #[test]
    fn cached_hyperslabs_match_disk_reads(
        channels in 2u64..6,
        samples in 8u64..64,
        seed in any::<u64>(),
        r0 in 0u64..4,
        c0 in 0u64..32,
    ) {
        let (dir, paths, _) = build_dataset(1, channels, samples, seed);
        let r0 = r0 % channels;
        let nr = (channels - r0).max(1);
        let c0 = c0 % samples;
        let nc = (samples - c0).max(1);
        let sel = [(r0, nr), (c0, nc)];

        let reg = fresh_registry();
        let cache = ChunkCache::new(1 << 20, DATASET_PATH, &reg);
        let chunk = cache.get_or_read(&paths[0]).expect("get");
        let sliced = chunk.hyperslab(Some(sel));

        let f = dasf::File::open(&paths[0]).expect("open");
        let mut direct = vec![0.0f32; (nr * nc) as usize];
        let n = f
            .read_hyperslab_into(DATASET_PATH, &sel, &mut direct)
            .expect("hyperslab");
        prop_assert_eq!(n, (nr * nc) as usize);
        prop_assert_eq!(sliced, direct);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A chunk that fails checksum verification is never served and never
/// cached: every get errors with `ChecksumMismatch`, `cache.miss`
/// keeps counting (proof each attempt went to disk), nothing becomes
/// resident, and healthy files keep being served around it.
#[test]
fn checksum_failure_is_never_served_from_cache() {
    let (dir, paths, golden) = build_dataset(2, 4, 32, 99);

    // Flip one byte of the payload region (the v3 integrity suite
    // proves any payload flip surfaces as ChecksumMismatch).
    let victim = &paths[0];
    let data_offset = {
        let f = dasf::File::open(victim).expect("open");
        f.dataset(DATASET_PATH).expect("meta").data_offset
    };
    let mut bytes = std::fs::read(victim).expect("read file");
    bytes[data_offset as usize + 5] ^= 0x40;
    std::fs::write(victim, &bytes).expect("rewrite");

    let reg = fresh_registry();
    let cache = ChunkCache::new(1 << 20, DATASET_PATH, &reg);

    for round in 0..3 {
        match cache.get_or_read(victim) {
            Err(DassaError::Dasf(dasf::DasfError::ChecksumMismatch { .. })) => {}
            other => panic!("round {round}: expected ChecksumMismatch, got {other:?}"),
        }
        assert!(
            !cache.contains(victim),
            "round {round}: corrupt chunk must not become resident"
        );
    }
    let snap = reg.snapshot();
    assert_eq!(
        snap.counter(metric_names::MISS),
        3,
        "every corrupt get must go to disk, never to cache"
    );
    assert_eq!(snap.counter(metric_names::HIT), 0);
    assert_eq!(cache.resident_bytes(), 0);

    // The healthy neighbour is unaffected — served, cached, hit.
    let ok = cache.get_or_read(&paths[1]).expect("healthy file");
    assert_eq!(ok.data(), golden[1].as_slice());
    let again = cache.get_or_read(&paths[1]).expect("healthy file again");
    assert_eq!(again.data(), golden[1].as_slice());
    assert_eq!(reg.snapshot().counter(metric_names::HIT), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An entry larger than the whole capacity is served but never
/// admitted, and does not evict what is resident.
#[test]
fn oversized_chunks_bypass_the_cache() {
    let (dir, paths, golden) = build_dataset(2, 4, 64, 5);
    let file_bytes = 4 * 64 * 4u64;

    // Capacity fits nothing.
    let reg = fresh_registry();
    let cache = ChunkCache::new(file_bytes / 2, DATASET_PATH, &reg);
    let c = cache.get_or_read(&paths[0]).expect("oversized get");
    assert_eq!(c.data(), golden[0].as_slice());
    assert!(cache.is_empty(), "oversized chunk must not be admitted");
    assert_eq!(cache.resident_bytes(), 0);
    let c2 = cache.get_or_read(&paths[1]).expect("second oversized get");
    assert_eq!(c2.data(), golden[1].as_slice());
    assert_eq!(reg.snapshot().counter(metric_names::MISS), 2);
    assert_eq!(reg.snapshot().counter(metric_names::EVICT), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A v4 shuffle-lz file is served *decoded* and byte-identical to its
/// raw twin; residency is charged at the decoded size while the
/// `cache.stored_bytes` counter records the smaller on-disk footprint.
#[test]
fn compressed_files_are_served_decoded_with_stored_accounting() {
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dassa-dassd-cache-codec-{id}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("dir");
    let (channels, samples) = (8u64, 4096u64);
    // Stepped ramps: long byte runs after the shuffle, so shuffle-lz
    // genuinely shrinks the payload.
    let data = Array2::from_fn(channels as usize, samples as usize, |r, c| {
        (r * 4 + c / 32) as f32 * 0.25
    });
    let meta = DasFileMeta {
        sampling_hz: (samples / 60).max(1) as i64,
        spatial_resolution_m: 2.0,
        timestamp: Timestamp::parse("170728224510").expect("ts"),
        channels,
        samples,
    };
    let path = dir.join(das_file_name(&meta.timestamp));
    write_das_file_with_codec(&path, &meta, &data, None, dasf::Codec::ShuffleLz).expect("write");

    let raw_bytes = channels * samples * 4;
    let reg = fresh_registry();
    let cache = ChunkCache::new(1 << 22, DATASET_PATH, &reg);
    let c = cache.get_or_read(&path).expect("get");
    assert_eq!(c.data(), data.as_slice());
    assert_eq!(c.bytes(), raw_bytes);
    assert_eq!(cache.resident_bytes(), raw_bytes);
    let stored = reg.snapshot().counter(metric_names::STORED_BYTES);
    assert_eq!(stored, c.stored_bytes());
    assert!(
        stored < raw_bytes / 2,
        "expected stored < raw/2, got {stored} vs {raw_bytes}"
    );
    // A hit must not recount disk bytes.
    let _ = cache.get_or_read(&path).expect("hit");
    assert_eq!(reg.snapshot().counter(metric_names::STORED_BYTES), stored);
    let _ = std::fs::remove_dir_all(&dir);
}
