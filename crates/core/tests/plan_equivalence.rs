//! Equivalence properties for the chunk-granular I/O planner: every
//! source (VCA, LAV, RCA), every exchange strategy, and every executor
//! mode must produce byte-identical arrays from the same logical
//! region — with and without a seeded fault plan. These tests pin the
//! plan/execute split: if a future change makes any path drift from the
//! others by a single bit, a shrunk counterexample lands here.

use arrayudf::Array2;
use dassa::prelude::*;
use faultline::{site, FaultPlan};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Build a dataset with per-file deterministic contents; returns
/// `(dir, full expected array)`.
fn build_dataset(files: usize, channels: u64, samples: u64, seed: u64) -> (PathBuf, Array2<f32>) {
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dassa-plan-eq-{id}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("dir");
    let t0 = Timestamp::parse("170728224510").expect("ts");
    let mut per_file: Vec<Array2<f32>> = Vec::new();
    for f in 0..files {
        let ts = t0.add_minutes(f as u64);
        let data = Array2::from_fn(channels as usize, samples as usize, |r, c| {
            let mut z = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(
                ((f * 1_000_003 + r * 1_009 + c) as u64).wrapping_mul(0xBF58476D1CE4E5B9),
            );
            z ^= z >> 31;
            (z % 100_000) as f32 / 100.0
        });
        let meta = DasFileMeta {
            sampling_hz: (samples / 60).max(1) as i64,
            spatial_resolution_m: 2.0,
            timestamp: ts,
            channels,
            samples,
        };
        write_das_file(&dir.join(das_file_name(&ts)), &meta, &data).expect("write");
        per_file.push(data);
    }
    let total = (samples as usize) * files;
    let expected = Array2::from_fn(channels as usize, total, |r, c| {
        per_file[c / samples as usize].get(r, c % samples as usize)
    });
    (dir, expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// No faults: the serial executor (VCA region plan), the LAV plan,
    /// both distributed exchange strategies run explicitly as plans,
    /// and an RCA round-trip all return the same bytes as the
    /// independently assembled golden array.
    #[test]
    fn every_source_and_strategy_is_byte_identical(
        files in 1usize..4,
        channels in 1u64..7,
        samples in 2u64..24,
        ranks in 1usize..5,
        seed in any::<u64>(),
    ) {
        let (dir, expected) = build_dataset(files, channels, samples, seed);
        let cat = FileCatalog::scan(&dir).expect("scan");
        let vca = Vca::from_entries(cat.entries()).expect("vca");

        // Serial executor over the full-region plan.
        prop_assert_eq!(vca.read_all_f32().expect("serial"), expected.clone());

        // LAV: the full view materializes through hyperslab ops.
        let lav = Lav::full(&vca);
        prop_assert_eq!(lav.read_f32(&vca).expect("lav"), expected.clone());

        // Both §IV-B strategies, driven through explicit plans.
        for strategy in [ReadStrategy::CollectivePerFile, ReadStrategy::CommAvoiding] {
            let plan = IoPlan::for_vca(&vca, strategy, ranks);
            let blocks = minimpi::run(ranks, |c| {
                IoExecutor::new(c).run(&plan).expect("run").0
            });
            prop_assert_eq!(
                Array2::vstack(&blocks),
                expected.clone(),
                "strategy {:?} ranks {}", strategy, ranks
            );
        }

        // RCA: physically merge, then re-read via the single-op plan.
        let rca_path = dir.join("eq.rca.dasf");
        create_rca(cat.entries(), &rca_path).expect("rca");
        let (_, rca_data) = read_rca(&rca_path).expect("read rca");
        prop_assert_eq!(rca_data, expected);
    }

    /// Seeded fault plan: both strategies agree bit-for-bit with each
    /// other AND with the predictable outcome — transiently faulty files
    /// retry back to the clean bytes, permanently bad files quarantine
    /// to all-zero spans, and nothing else moves.
    #[test]
    fn strategies_agree_bit_for_bit_under_faults(
        files in 2usize..5,
        channels in 1u64..6,
        samples in 2u64..20,
        ranks in 2usize..4,
        seed in any::<u64>(),
    ) {
        let (dir, clean) = build_dataset(files, channels, samples, seed);
        let cat = FileCatalog::scan(&dir).expect("scan");
        let vca = Vca::from_entries(cat.entries()).expect("vca");
        let plan = Arc::new(
            FaultPlan::new(seed)
                .with(site::DASF_READ_ERR, 0.3)
                .with(site::PAR_READ_FILE, 0.4),
        );

        let mut outcomes = Vec::new();
        for strategy in [ReadStrategy::CollectivePerFile, ReadStrategy::CommAvoiding] {
            let (results, _) = minimpi::run_chaos(
                ranks,
                Arc::clone(&plan),
                minimpi::RetryPolicy::default(),
                |c| read_vca_resilient(c, &vca, strategy).expect("resilient"),
            );
            let (blocks, reports): (Vec<_>, Vec<_>) = results.into_iter().unzip();
            for r in &reports[1..] {
                prop_assert_eq!(r, &reports[0], "ranks must report identically");
            }
            outcomes.push((Array2::vstack(&blocks), reports[0].clone()));
        }
        prop_assert_eq!(&outcomes[0].0, &outcomes[1].0, "strategies must agree on bytes");
        prop_assert_eq!(&outcomes[0].1, &outcomes[1].1, "strategies must agree on reports");

        let (full, report) = &outcomes[0];
        for fi in 0..vca.n_files() {
            let t0 = vca.time_offset_of(fi) as usize;
            let width = vca.samples_of(fi) as usize;
            let quarantined = report.quarantined.contains(&fi);
            for r in 0..vca.channels() as usize {
                for c in t0..t0 + width {
                    if quarantined {
                        prop_assert_eq!(full.get(r, c), 0.0, "file {} must be zeroed", fi);
                    } else {
                        prop_assert_eq!(full.get(r, c), clean.get(r, c), "file {} must survive", fi);
                    }
                }
            }
        }
    }

    /// Any valid sub-region agrees between the serial region plan and a
    /// LAV describing the same rectangle — plans built two ways, same
    /// hyperslabs, same bytes.
    #[test]
    fn region_and_lav_plans_coincide(
        files in 1usize..4,
        channels in 2u64..7,
        samples in 4u64..20,
        c_frac in 0.0f64..1.0,
        t_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let (dir, expected) = build_dataset(files, channels, samples, seed);
        let cat = FileCatalog::scan(&dir).expect("scan");
        let vca = Vca::from_entries(cat.entries()).expect("vca");
        let total = samples * files as u64;
        let c0 = (c_frac * channels as f64) as u64 % channels;
        let t0 = (t_frac * total as f64) as u64 % total;
        let cn = 1 + (channels - c0 - 1).min(3);
        let tn = 1 + (total - t0 - 1).min(15);

        let region = vca.read_region_f32(c0..c0 + cn, t0..t0 + tn).expect("region");
        let lav = Lav::new(c0..c0 + cn, t0..t0 + tn);
        prop_assert_eq!(&lav.read_f32(&vca).expect("lav"), &region);
        for r in 0..cn as usize {
            for c in 0..tn as usize {
                prop_assert_eq!(
                    region.get(r, c),
                    expected.get(c0 as usize + r, t0 as usize + c)
                );
            }
        }
    }
}

/// `Vca::map_time_range` edge cases: the decomposition that every
/// region plan is built from.
#[test]
#[allow(clippy::reversed_empty_ranges)] // inverted ranges are an edge case under test
fn map_time_range_edge_cases() {
    // 3 files × 30 samples each → global extent 0..90.
    let (dir, _) = build_dataset(3, 2, 30, 0xED6E);
    let cat = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(cat.entries()).expect("vca");

    // Empty ranges map to nothing, wherever they sit.
    assert!(vca.map_time_range(0..0).is_empty());
    assert!(vca.map_time_range(45..45).is_empty());
    assert!(vca.map_time_range(90..90).is_empty());
    // Inverted ranges are treated as empty, not panics.
    assert!(vca.map_time_range(50..20).is_empty());

    // A range spanning a file boundary splits into per-file pieces.
    assert_eq!(vca.map_time_range(25..35), vec![(0, 25..30), (1, 0..5)]);
    assert_eq!(
        vca.map_time_range(29..61),
        vec![(0, 29..30), (1, 0..30), (2, 0..1)]
    );

    // Past EOF: the overlap clamps to the real extent; fully past EOF
    // maps to nothing.
    assert_eq!(vca.map_time_range(80..200), vec![(2, 20..30)]);
    assert!(vca.map_time_range(90..120).is_empty());
    assert!(vca.map_time_range(1000..2000).is_empty());

    // The exact full extent covers every file exactly once.
    assert_eq!(
        vca.map_time_range(0..90),
        vec![(0, 0..30), (1, 0..30), (2, 0..30)]
    );

    // Region *plans* reject past-EOF selections even though the raw
    // decomposition clamps — validation lives in the planner.
    assert!(IoPlan::for_region(&vca, 0..2, 80..200).is_err());
    assert!(IoPlan::for_region(&vca, 0..2, 10..10).is_err());
}

/// The planner's buffer pool sees reuse on repeated serial reads: the
/// second identical read must hit the size classes the first one
/// populated.
#[test]
fn repeated_reads_hit_the_buffer_pool() {
    let (dir, _) = build_dataset(4, 3, 30, 0xB0F);
    let cat = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(cat.entries()).expect("vca");

    let a = vca.read_all_f32().expect("first");
    let before = obs::global()
        .snapshot()
        .counter(dasf::pool::names::POOL_HIT);
    let b = vca.read_all_f32().expect("second");
    let after = obs::global()
        .snapshot()
        .counter(dasf::pool::names::POOL_HIT);
    assert_eq!(a, b);
    assert!(
        after > before,
        "second read must reuse pooled buffers: hits {before} -> {after}"
    );
}
