//! End-to-end `dasl` pipeline tests: a compiled program, run against a
//! real on-disk corpus through `IoPlan::for_load` and the `IoExecutor`,
//! must be *byte-identical* to the hand-wired analysis it describes —
//! and the bytecode must show the promised fusion.

use dassa::prelude::*;

/// The ISSUE's flagship example, lowered to the defaults the hand-wired
/// interferometry pipeline uses at 500 Hz: 0.5 Hz = 0.002 × Nyquist,
/// 24 Hz = 0.096 × Nyquist, resample 1:2.
const EXAMPLE: &str =
    "load(\"corpus\") | detrend | bandpass(0.5, 24) | resample(2) | xcorr(master=ch[0])";

/// Write a 500 Hz synthetic corpus and return its directory.
fn corpus(name: &str, channels: usize, minutes: usize) -> std::path::PathBuf {
    let scene = dasgen::Scene::demo(channels, 500.0, minutes as f64 * 60.0, 7);
    let dir = std::env::temp_dir().join(format!("dassa-dasl-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dasgen::write_minute_files(&scene, &dir, "170728224510", minutes).expect("write corpus");
    dir
}

fn read_f64(vca: &Vca) -> arrayudf::Array2<f64> {
    vca.read_all_f64().expect("read")
}

#[test]
fn example_program_fuses_three_stages_into_one_apply() {
    let program = dasl::compile(EXAMPLE).expect("compile");
    assert_eq!(
        program.fused_stages, 2,
        "3 element-wise stages → 2 passes saved"
    );

    let asm = program.disassemble();
    assert!(
        asm.contains("; 3 kernels, one pass"),
        "disassembly must show the fused apply:\n{asm}"
    );
    assert_eq!(
        asm.matches("apply").count(),
        1,
        "exactly one apply instruction:\n{asm}"
    );
    assert!(asm.contains("2 stages fused"), "{asm}");
}

#[test]
fn program_through_ioplan_matches_hand_wired_interferometry() {
    let dir = corpus("interf", 6, 2);
    let cat = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(cat.entries()).expect("vca");

    // Hand-wired: full read + default interferometry.
    let hand = dasa::run(
        &Analysis::Interferometry(InterferometryParams::default()),
        &read_f64(&vca),
        &Haee::builder().threads(2).build(),
    )
    .expect("hand-wired");

    // Program: load lowers through IoPlan::for_load, the serial
    // executor reads the same chunks, the VM runs the bytecode.
    let program = dasl::compile(EXAMPLE).expect("compile");
    let plan = IoPlan::for_load(&vca, program.load_spec(), 1).expect("plan");
    let (block, report) = IoExecutor::serial().run(&plan).expect("read");
    assert!(report.is_clean());
    let data: Vec<f64> = block.as_slice().iter().map(|&v| v as f64).collect();
    let data = arrayudf::Array2::from_vec(block.rows(), block.cols(), data);

    let before = obs::global().snapshot().counter("dasl.fused_stages");
    let prog_out = dasa::run(
        &program.bind(vca.sampling_hz() as f64),
        &data,
        &Haee::builder().threads(2).build(),
    )
    .expect("program");
    let after = obs::global().snapshot().counter("dasl.fused_stages");
    assert_eq!(after - before, 2, "execution bumps the fusion counter");

    // Byte-identical: same reads, same kernels, same order → same bits.
    match (&hand, &prog_out) {
        (AnalysisOutput::Scores(a), AnalysisOutput::Scores(b)) => {
            assert_eq!(a.len(), b.len());
            for (ch, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "channel {ch}: hand-wired {x} != program {y}"
                );
            }
        }
        other => panic!("expected scores from both paths, got {other:?}"),
    }
}

#[test]
fn windowed_load_reads_the_selected_region() {
    let dir = corpus("window", 4, 2);
    let cat = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(cat.entries()).expect("vca");
    let hz = vca.sampling_hz() as u64;

    // 0..60 s of a 120 s corpus, channels 1..3.
    let program = dasl::compile("load(\"corpus\", t=0..60, ch=1..3) | detrend").expect("compile");
    let plan = IoPlan::for_load(&vca, program.load_spec(), 1).expect("plan");
    let (block, _) = IoExecutor::serial().run(&plan).expect("read");
    assert_eq!(block.rows(), 2);
    assert_eq!(block.cols(), (60 * hz) as usize);
    let direct = vca.read_region_f32(1..3, 0..60 * hz).expect("region");
    assert_eq!(block, direct);

    // The window is clamped to the corpus extent.
    let long = dasl::compile("load(\"corpus\", t=60..3600)").expect("compile");
    let plan = IoPlan::for_load(&vca, long.load_spec(), 1).expect("plan");
    let (block, _) = IoExecutor::serial().run(&plan).expect("read");
    assert_eq!(
        block.cols(),
        (60 * hz) as usize,
        "clamped to the 120 s extent"
    );
}

#[test]
fn for_load_rejects_bad_combinations() {
    let dir = corpus("reject", 4, 1);
    let cat = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(cat.entries()).expect("vca");

    // Windowed loads plan a serial region read — no rank split.
    let windowed = dasl::compile("load(\"corpus\", 0..30)").expect("compile");
    let err = IoPlan::for_load(&vca, windowed.load_spec(), 4).unwrap_err();
    assert!(err.to_string().contains("drop --ranks"), "{err}");

    // A window starting past the extent is an error, not an empty read.
    let past = dasl::compile("load(\"corpus\", t=600..660)").expect("compile");
    let err = IoPlan::for_load(&vca, past.load_spec(), 1).unwrap_err();
    assert!(err.to_string().contains("starts past the corpus"), "{err}");
}

#[test]
fn distributed_load_strategies_read_identically() {
    let dir = corpus("dist", 6, 2);
    let cat = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(cat.entries()).expect("vca");
    let expected = vca.read_all_f32().expect("read");

    for strategy in ["auto", "collective", "comm_avoiding", "modeled"] {
        let src = format!("load(\"corpus\", strategy=\"{strategy}\")");
        let program = dasl::compile(&src).expect("compile");
        let plan = IoPlan::for_load(&vca, program.load_spec(), 3).expect("plan");
        let blocks = minimpi::run(3, |comm| IoExecutor::new(comm).run(&plan).expect("exec").0);
        assert_eq!(
            arrayudf::Array2::vstack(&blocks),
            expected,
            "strategy {strategy} diverged"
        );
    }
}

/// The analytic [`dasl::Kernel::out_len`] the compiler and VM use for
/// preallocation must agree with what `dsp::resample` actually emits,
/// for every small p:q ratio and awkward length.
#[test]
fn kernel_out_len_matches_dsp_resample() {
    for p in 1..=6usize {
        for q in 1..=6usize {
            let kernel = dasl::Kernel::Resample { p, q };
            for n in [1usize, 2, 7, 99, 100, 999, 1000, 30000] {
                let row: Vec<f64> = (0..n).map(|i| i as f64).collect();
                let out = dsp::resample(&row, p, q);
                assert_eq!(
                    kernel.out_len(n),
                    out.len(),
                    "resample({p}:{q}) of {n} samples"
                );
            }
        }
    }
}
