//! Client-hammering tests for `dassd`: many concurrent connections
//! issuing overlapping windowed reads must each get bytes identical to
//! a serial [`IoExecutor`] read of the same region, while the shared
//! chunk cache takes hits and never grows past its capacity; overload
//! must produce typed `Busy` rejections, not queue growth; and a
//! request-level failure must not take the connection down.

use arrayudf::Array2;
use dassa::dassd::{Client, ClientError, Server, ServerConfig};
use dassa::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Build a corpus with per-file deterministic contents; returns
/// `(dir, full expected array)`. Same construction as
/// `plan_equivalence.rs` so goldens are assembled independently of
/// every read path under test.
fn build_dataset(files: usize, channels: u64, samples: u64, seed: u64) -> (PathBuf, Array2<f32>) {
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dassa-dassd-stress-{id}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("dir");
    let t0 = Timestamp::parse("170728224510").expect("ts");
    let mut per_file: Vec<Array2<f32>> = Vec::new();
    for f in 0..files {
        let ts = t0.add_minutes(f as u64);
        let data = Array2::from_fn(channels as usize, samples as usize, |r, c| {
            let mut z = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(
                ((f * 1_000_003 + r * 1_009 + c) as u64).wrapping_mul(0xBF58476D1CE4E5B9),
            );
            z ^= z >> 31;
            (z % 100_000) as f32 / 100.0
        });
        let meta = DasFileMeta {
            sampling_hz: (samples / 60).max(1) as i64,
            spatial_resolution_m: 2.0,
            timestamp: ts,
            channels,
            samples,
        };
        write_das_file(&dir.join(das_file_name(&ts)), &meta, &data).expect("write");
        per_file.push(data);
    }
    let total = (samples as usize) * files;
    let expected = Array2::from_fn(channels as usize, total, |r, c| {
        per_file[c / samples as usize].get(r, c % samples as usize)
    });
    (dir, expected)
}

const FILES: usize = 6;
const CHANNELS: u64 = 8;
const SAMPLES: u64 = 1200;

/// ≥8 client threads, each issuing several overlapping windowed
/// queries over one shared server. Every response is compared against
/// a serial `IoExecutor` read of the same region (and the
/// independently assembled golden array); afterwards the metrics must
/// show cache hits and a resident high-water mark within capacity.
#[test]
fn eight_clients_overlapping_windows_byte_identical() {
    let (dir, expected) = build_dataset(FILES, CHANNELS, SAMPLES, 0xC0FFEE);
    // Capacity fits ~3 of 6 member files, so the run both hits (the
    // windows overlap) and evicts (the working set does not fit).
    let file_bytes = CHANNELS * SAMPLES * 4;
    let capacity = file_bytes * 3 + file_bytes / 2;
    let server = Server::start(
        &dir,
        ServerConfig {
            workers: 8,
            queue_depth: 64,
            cache_bytes: capacity,
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let addr = server.addr();
    let total = SAMPLES * FILES as u64;

    let threads: Vec<_> = (0..8)
        .map(|tid| {
            let expected = expected.clone();
            let dir = dir.clone();
            std::thread::spawn(move || {
                let cat = FileCatalog::scan(&dir).expect("scan");
                let vca = Vca::from_entries(cat.entries()).expect("vca");
                let mut client = Client::connect(addr).expect("connect");
                for q in 0..6u64 {
                    // Overlapping by construction: windows from
                    // different threads and rounds share member files.
                    let t0 = ((tid as u64 * 997 + q * 641) % (total - SAMPLES)).min(total - 2);
                    let t1 = (t0 + SAMPLES + q * 13).min(total);
                    let ch0 = (tid as u64) % (CHANNELS - 1);
                    let ch1 = (ch0 + 2 + q % 3).min(CHANNELS);
                    let got = client.read_region(ch0..ch1, t0..t1).expect("windowed read");
                    let plan = IoPlan::for_region(&vca, ch0..ch1, t0..t1).expect("plan");
                    let (serial, _) = IoExecutor::serial().run(&plan).expect("serial");
                    assert_eq!(got, serial, "thread {tid} query {q} drifted from serial");
                    let golden =
                        Array2::from_fn((ch1 - ch0) as usize, (t1 - t0) as usize, |r, c| {
                            expected.get(ch0 as usize + r, t0 as usize + c)
                        });
                    assert_eq!(got, golden, "thread {tid} query {q} drifted from golden");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let mut client = Client::connect(addr).expect("metrics conn");
    let snap = obs::Snapshot::from_json(&client.metrics_json().expect("metrics")).expect("parse");
    drop(client);
    let snap2 = server.stop();

    assert!(
        snap.counter("cache.hit") > 0,
        "overlapping windows must hit the cache: {snap:?}"
    );
    // The capacity bound holds at every insert: the resident-bytes
    // histogram's max is the high-water mark.
    let resident = snap
        .histogram("cache.resident_bytes")
        .expect("resident histogram");
    assert!(resident.count > 0, "cache must have admitted entries");
    assert!(
        resident.max <= capacity,
        "resident high-water {} exceeds capacity {capacity}",
        resident.max
    );
    assert!(snap.gauge("cache.bytes") <= capacity);
    assert_eq!(
        snap.counter("cache.hit") + snap.counter("cache.miss"),
        snap2.counter("cache.hit") + snap2.counter("cache.miss"),
        "no traffic between metrics fetch and stop"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control: with one worker and a zero-depth queue, a third
/// concurrent connection is rejected with a typed `Busy` — and once
/// the occupying client leaves, new connections are served again.
#[test]
fn overload_rejects_busy_then_recovers() {
    let (dir, _) = build_dataset(2, 4, 120, 7);
    let server = Server::start(
        &dir,
        ServerConfig {
            workers: 1,
            queue_depth: 0,
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let addr = server.addr();

    // A occupies the single worker (its connection stays open after
    // the ping; the worker blocks reading A's next frame).
    let mut a = Client::connect(addr).expect("connect A");
    a.ping().expect("ping A");
    // B fills the one queue slot.
    let b = Client::connect(addr).expect("connect B");
    // Give the acceptor a moment to enqueue B before C arrives.
    std::thread::sleep(std::time::Duration::from_millis(100));
    // C is over capacity: typed rejection, not a hang.
    let mut c = Client::connect(addr).expect("connect C");
    match c.ping() {
        Err(ClientError::Busy) => {}
        other => panic!("expected Busy, got {other:?}"),
    }

    // A leaves; the worker picks up B and serves it.
    drop(a);
    let mut b = {
        let mut b = b;
        b.ping().expect("B served after A departs");
        b
    };
    b.ping().expect("B still served");

    let snap = server.stop();
    assert!(
        snap.counter("dassd.busy") >= 1,
        "rejection must be counted: {snap:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Request-level failures leave the connection serving: a compile
/// error returns the rendered caret diagnostic, a bad selection
/// returns a typed error, and the same connection then completes a
/// valid eval whose result matches local execution.
#[test]
fn errors_are_typed_and_connection_survives() {
    let (dir, _) = build_dataset(3, 6, 600, 21);
    let server = Server::start(&dir, ServerConfig::default()).expect("server");
    let mut client = Client::connect(server.addr()).expect("connect");

    match client.eval("load(\"corpus\") | detrnd") {
        Err(ClientError::Compile(diag)) => {
            assert!(diag.contains('^'), "caret diagnostic expected: {diag}");
            assert!(diag.contains("detrend"), "did-you-mean expected: {diag}");
        }
        other => panic!("expected Compile, got {other:?}"),
    }

    match client.read_region(0..100, 0..10) {
        Err(ClientError::Server { .. }) => {}
        other => panic!("expected typed server error, got {other:?}"),
    }

    // Same connection still works, and the server-side program matches
    // a local run of the same source.
    let src = "load(\"corpus\") | detrend | xcorr(master=ch[0])";
    let (dims, flat) = client.eval(src).expect("valid eval");
    let cat = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(cat.entries()).expect("vca");
    let wide = vca.read_all_f64().expect("read");
    let program = dasl::compile(src).expect("compile");
    let haee = Haee::builder().threads(1).build();
    let local = dasa::run(&program.bind(vca.sampling_hz() as f64), &wide, &haee).expect("run");
    let (ldims, lflat) = local.to_dataset();
    assert_eq!(dims, ldims);
    assert_eq!(
        flat, lflat,
        "served eval must match local execution bit-for-bit"
    );

    let snap = server.stop();
    assert!(snap.counter("dassd.errors") >= 2);
    assert_eq!(snap.counter("dassd.eval.requests"), 2);
    let _ = std::fs::remove_dir_all(&dir);
}
