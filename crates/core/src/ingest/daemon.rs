//! The ingest daemon: watermark, windowing, evaluation, checkpointing.
//!
//! Two threads, one bounded queue:
//!
//! * the **main thread** owns the spool scanner and the
//!   [`MinuteIndex`]. Each round it polls the spool, classifies
//!   arrivals (admit / late / duplicate / quarantine), and — once the
//!   scanner is quiescent (nothing mid-retry) — advances the watermark
//!   and *seals* every complete window: reads its samples (zero-filled
//!   gaps included) and pushes one task into the queue. The queue is
//!   bounded by `max_inflight`, so when detection falls behind arrival
//!   the push blocks — bounded memory by construction, not policy;
//! * the **evaluator thread** pops sealed windows in order, runs the
//!   configured [`IngestJob`], writes the window report atomically,
//!   and then — and only then — commits the [`Checkpoint`].
//!
//! Windows are anchored at a base minute pinned when the first window
//! seals (or restored from the checkpoint on resume): window `k`
//! covers `[base + k·hop, base + k·hop + window)`. The **sealed
//! frontier** `base + next_window·hop` is the line history stops
//! moving behind: a file whose minute falls entirely below it can no
//! longer contribute to any future window and is moved to
//! `ingest.late/` instead of silently dropped. In the always-on loop
//! the watermark trails the newest arrival by `lateness_minutes`, so
//! slightly out-of-order delivery lands inside open windows rather
//! than behind the frontier.

use super::journal::{write_atomic, Checkpoint};
use super::spool::{SpoolEvent, SpoolScanner, DUPLICATE_DIR, LATE_DIR, QUARANTINE_DIR};
use super::stream::{Admit, MinuteIndex, WindowData};
use crate::dasa::{execute, run as run_job, Analysis, AnalysisOutput, Haee, InterferometryParams};
use crate::dass::Timestamp;
use crate::{DassaError, Result};
use arrayudf::Array2;
use obs::json::JsonWriter;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// What runs over each sealed window.
#[derive(Debug, Clone)]
pub enum IngestJob {
    /// A built-in pipeline (detrend → filtfilt → resample → correlate
    /// and friends) with its parameters.
    Analysis(Analysis),
    /// A compiled `dasl` program, bound to the stream's sampling rate
    /// at evaluation time.
    Program(dasl::Program),
}

impl IngestJob {
    /// Stable short name, recorded in every window report.
    pub fn name(&self) -> &'static str {
        match self {
            IngestJob::Analysis(a) => a.name(),
            IngestJob::Program(_) => "dasl",
        }
    }

    fn eval(&self, data: &Array2<f64>, sampling_hz: f64, haee: &Haee) -> Result<AnalysisOutput> {
        match self {
            IngestJob::Analysis(a) => run_job(a, data, haee),
            IngestJob::Program(p) => execute(p, sampling_hz, data, haee),
        }
    }
}

impl Default for IngestJob {
    /// The paper's traffic-noise interferometry pipeline — the default
    /// always-on detector.
    fn default() -> IngestJob {
        IngestJob::Analysis(Analysis::Interferometry(InterferometryParams::default()))
    }
}

/// Everything an ingest run needs to know.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Directory minute files arrive in (must exist).
    pub spool: PathBuf,
    /// Directory for window reports and the checkpoint (created).
    pub out: PathBuf,
    /// Window length in minutes (≥ 1).
    pub window_minutes: u64,
    /// Hop between window starts; `0` means tumbling (`= window`).
    pub hop_minutes: u64,
    /// How many data minutes the watermark trails the newest arrival —
    /// the grace period for out-of-order delivery.
    pub lateness_minutes: u64,
    /// Validation attempts per file before quarantine (≥ 1).
    pub max_attempts: u32,
    /// First retry backoff; doubles per attempt, jittered.
    pub base_backoff: Duration,
    /// Idle sleep between spool scans in the always-on loop.
    pub poll: Duration,
    /// Sealed windows buffered between scanner and evaluator; the
    /// memory bound and the backpressure threshold.
    pub max_inflight: usize,
    /// Evaluator engine threads.
    pub threads: usize,
    /// The detection job.
    pub job: IngestJob,
}

impl IngestConfig {
    /// Defaults: 2-minute tumbling windows, 1 minute of lateness,
    /// 3 validation attempts from 50 ms, 4 windows in flight.
    pub fn new<P: Into<PathBuf>, Q: Into<PathBuf>>(spool: P, out: Q) -> IngestConfig {
        IngestConfig {
            spool: spool.into(),
            out: out.into(),
            window_minutes: 2,
            hop_minutes: 0,
            lateness_minutes: 1,
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            poll: Duration::from_millis(200),
            max_inflight: 4,
            threads: 2,
            job: IngestJob::default(),
        }
    }

    fn hop(&self) -> u64 {
        if self.hop_minutes == 0 {
            self.window_minutes
        } else {
            self.hop_minutes
        }
    }

    /// Where this configuration journals its checkpoint.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.out.join("checkpoint.json")
    }
}

/// Per-run outcome counters (process-lifetime totals live in the
/// `obs` registry under `ingest.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestSummary {
    /// Files admitted into the minute index.
    pub admitted: u64,
    /// Files moved to `ingest.late/`.
    pub late: u64,
    /// Duplicate deliveries observed.
    pub duplicate: u64,
    /// Files moved to `ingest.quarantine/`.
    pub quarantined: u64,
    /// Window reports evaluated and written.
    pub windows_emitted: u64,
    /// Windows skipped because their report already existed (resume).
    pub windows_skipped: u64,
    /// Samples zero-filled across emitted windows.
    pub gap_samples: u64,
}

#[derive(Default)]
struct SummaryCells {
    admitted: AtomicU64,
    late: AtomicU64,
    duplicate: AtomicU64,
    quarantined: AtomicU64,
    windows_emitted: AtomicU64,
    windows_skipped: AtomicU64,
    gap_samples: AtomicU64,
}

impl SummaryCells {
    fn snapshot(&self) -> IngestSummary {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        IngestSummary {
            admitted: get(&self.admitted),
            late: get(&self.late),
            duplicate: get(&self.duplicate),
            quarantined: get(&self.quarantined),
            windows_emitted: get(&self.windows_emitted),
            windows_skipped: get(&self.windows_skipped),
            gap_samples: get(&self.gap_samples),
        }
    }
}

/// Conventional report file name for window `k` starting at `start`.
pub fn report_name(window: u64, start_minute: u64) -> String {
    format!(
        "window_{window:06}_{}.json",
        Timestamp::from_epoch_minutes(start_minute).to_compact()
    )
}

enum TaskBody {
    /// Report already on disk (resume): advance the checkpoint only.
    Skip,
    /// Evaluate this window's samples.
    Eval(WindowData),
}

struct WindowTask {
    index: u64,
    start_minute: u64,
    base_minute: u64,
    watermark: u64,
    sampling_hz: i64,
    body: TaskBody,
}

/// Bounded MPSC-ish queue: the main thread pushes (blocking at
/// capacity — that block *is* the backpressure), the evaluator pops.
struct WindowQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

struct QueueState {
    q: VecDeque<WindowTask>,
    closed: bool,
}

impl WindowQueue {
    fn new(cap: usize) -> WindowQueue {
        WindowQueue {
            state: Mutex::new(QueueState {
                q: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocks while full. Returns `false` if the queue closed (the
    /// evaluator died); the task is dropped.
    fn push(&self, task: WindowTask) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while st.q.len() >= self.cap && !st.closed {
            st = self.not_full.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        if st.closed {
            return false;
        }
        st.q.push_back(task);
        super::metrics().queue_depth.add(1);
        self.not_empty.notify_one();
        true
    }

    /// Blocks while empty; `None` once closed and drained.
    fn pop(&self) -> Option<WindowTask> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(task) = st.q.pop_front() {
                super::metrics().queue_depth.sub(1);
                self.not_full.notify_one();
                return Some(task);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Drain the spool once and return: scan until every discovered file
/// is terminal, seal every window completed by the final watermark
/// (`max arrival`, no lateness holdback), evaluate, checkpoint. The
/// staged/CI mode — calling it again later resumes from the journal.
pub fn run_once(cfg: &IngestConfig) -> Result<IngestSummary> {
    run_loop(cfg, None)
}

/// The always-on loop: poll the spool at `cfg.poll`, admit arrivals,
/// seal windows as the watermark (newest arrival − `lateness_minutes`)
/// passes them, until `stop` becomes true. Designed to be killed hard:
/// every externally visible effect (reports, checkpoint, quarantine
/// moves) is atomic, so `kill -9` at any instant loses nothing.
pub fn run(cfg: &IngestConfig, stop: &AtomicBool) -> Result<IngestSummary> {
    run_loop(cfg, Some(stop))
}

fn run_loop(cfg: &IngestConfig, stop: Option<&AtomicBool>) -> Result<IngestSummary> {
    if cfg.window_minutes == 0 {
        return Err(DassaError::BadSelection(
            "ingest window must be at least one minute".into(),
        ));
    }
    if !cfg.spool.is_dir() {
        return Err(DassaError::BadSelection(format!(
            "spool directory {} does not exist",
            cfg.spool.display()
        )));
    }
    std::fs::create_dir_all(&cfg.out)?;
    let checkpoint_path = cfg.checkpoint_path();
    let resumed = Checkpoint::load(&checkpoint_path)?;
    if let Some(cp) = &resumed {
        if cp.window_minutes != cfg.window_minutes || cp.hop_minutes != cfg.hop() {
            return Err(DassaError::Inconsistent(format!(
                "checkpoint geometry {}m/{}m hop disagrees with configured {}m/{}m hop",
                cp.window_minutes,
                cp.hop_minutes,
                cfg.window_minutes,
                cfg.hop()
            )));
        }
    }

    let queue = WindowQueue::new(cfg.max_inflight);
    let cells = SummaryCells::default();
    let mut state = MainState {
        cfg,
        scanner: SpoolScanner::new(cfg.spool.clone(), cfg.max_attempts, cfg.base_backoff),
        index: MinuteIndex::new(),
        base: resumed.map(|cp| cp.base_minute),
        next_window: resumed.map_or(0, |cp| cp.next_window),
        watermark: resumed.map_or(0, |cp| cp.watermark_minute),
    };

    std::thread::scope(|s| {
        let evaluator = s.spawn(|| {
            let result = evaluator_loop(cfg, &queue, &checkpoint_path, &cells);
            // Close on the way out even on error, so a blocked
            // producer wakes up instead of waiting forever.
            queue.close();
            result
        });
        let main_result = state.main_loop(stop, &queue, &cells);
        queue.close();
        let eval_result = evaluator
            .join()
            .unwrap_or_else(|_| Err(DassaError::Inconsistent("evaluator panicked".into())));
        main_result.and(eval_result)
    })?;
    Ok(cells.snapshot())
}

struct MainState<'a> {
    cfg: &'a IngestConfig,
    scanner: SpoolScanner,
    index: MinuteIndex,
    /// Window anchor, pinned at the first seal (or restored).
    base: Option<u64>,
    next_window: u64,
    watermark: u64,
}

impl MainState<'_> {
    fn main_loop(
        &mut self,
        stop: Option<&AtomicBool>,
        queue: &WindowQueue,
        cells: &SummaryCells,
    ) -> Result<()> {
        loop {
            if let Some(stop) = stop {
                if stop.load(Ordering::Relaxed) {
                    return Ok(());
                }
            }
            let events = self.scanner.poll()?;
            for event in events {
                self.handle(event, cells)?;
            }
            if self.scanner.is_quiescent() {
                match stop {
                    None => {
                        // Drain mode: everything that will ever arrive
                        // has; seal up to the stream's end and finish.
                        if let Some(max_end) = self.index.max_end_minute() {
                            self.seal_up_to(max_end, queue)?;
                        }
                        return Ok(());
                    }
                    Some(_) => {
                        if let Some(max_end) = self.index.max_end_minute() {
                            let target = max_end
                                .saturating_sub(self.cfg.lateness_minutes)
                                .max(self.watermark);
                            self.seal_up_to(target, queue)?;
                        }
                    }
                }
            }
            let wait = self
                .scanner
                .next_ready_in(Instant::now())
                .map_or(self.cfg.poll, |d| d.min(self.cfg.poll));
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        }
    }

    /// The line history stops moving behind: the start of the next
    /// window to seal. `None` until the first seal pins the base.
    fn frontier(&self) -> Option<u64> {
        self.base.map(|b| b + self.next_window * self.cfg.hop())
    }

    fn handle(&mut self, event: SpoolEvent, cells: &SummaryCells) -> Result<()> {
        let m = super::metrics();
        match event {
            SpoolEvent::Quarantined { path, reason } => {
                // The scanner already moved it and bumped the counter;
                // this is an operator-facing event, so say why.
                obs::log_warn!("ingest", "quarantined {}: {reason}", path.display());
                m.note_error(&format!("quarantined {}: {reason}", path.display()));
                cells.quarantined.fetch_add(1, Ordering::Relaxed);
            }
            SpoolEvent::Validated(entry) => {
                let minute = entry.meta.timestamp.epoch_minutes();
                // Re-delivery of the path already backing this minute:
                // count it, leave the file where it is.
                if let Some(existing) = self.index.entry_at(minute) {
                    if existing.path == entry.path {
                        m.duplicate.inc();
                        cells.duplicate.fetch_add(1, Ordering::Relaxed);
                        return Ok(());
                    }
                }
                let name = entry
                    .path
                    .file_name()
                    .ok_or_else(|| DassaError::BadSelection("spool file has no name".into()))?
                    .to_os_string();
                // Entirely behind the sealed frontier: every window it
                // could contribute to was already emitted.
                if let Some(frontier) = self.frontier() {
                    if minute < frontier {
                        self.scanner.exile(&name, LATE_DIR)?;
                        m.late.inc();
                        cells.late.fetch_add(1, Ordering::Relaxed);
                        return Ok(());
                    }
                }
                match self.index.admit(entry) {
                    Ok(Admit::Admitted) => {
                        m.admitted.inc();
                        cells.admitted.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(Admit::Duplicate) => {
                        // A *different* path claims an occupied minute:
                        // first writer wins, the challenger moves aside.
                        self.scanner.exile(&name, DUPLICATE_DIR)?;
                        m.duplicate.inc();
                        cells.duplicate.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        // Wrong shape / multi-minute file: permanent
                        // damage from the stream's point of view.
                        self.scanner.exile(&name, QUARANTINE_DIR)?;
                        m.quarantined.inc();
                        cells.quarantined.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        Ok(())
    }

    /// Seal every window completed by `watermark`: read its samples
    /// and hand it to the evaluator (blocking at `max_inflight`).
    fn seal_up_to(&mut self, watermark: u64, queue: &WindowQueue) -> Result<()> {
        let hop = self.cfg.hop();
        let window = self.cfg.window_minutes;
        if self.base.is_none() {
            // Pin the anchor only when a window actually completes, so
            // an early file arriving during the grace period can still
            // lower the base.
            let candidate = match self.index.base_minute() {
                Some(b) => b,
                None => return Ok(()),
            };
            if candidate + window <= watermark {
                self.base = Some(candidate);
            }
        }
        let Some(base) = self.base else {
            return Ok(());
        };
        self.watermark = self.watermark.max(watermark);
        let sampling_hz = self.index.shape().map_or(0, |s| s.sampling_hz);
        while base + self.next_window * hop + window <= watermark {
            let start = base + self.next_window * hop;
            let report = self.cfg.out.join(report_name(self.next_window, start));
            let body = if report.exists() {
                TaskBody::Skip
            } else {
                TaskBody::Eval(self.index.read_window(start, window))
            };
            let accepted = queue.push(WindowTask {
                index: self.next_window,
                start_minute: start,
                base_minute: base,
                watermark: self.watermark,
                sampling_hz,
                body,
            });
            if !accepted {
                // Evaluator gone; its error surfaces at join time.
                return Ok(());
            }
            self.next_window += 1;
        }
        let frontier = base + self.next_window * hop;
        let lag = self
            .index
            .max_end_minute()
            .map_or(0, |end| end.saturating_sub(frontier));
        super::metrics().set_watermark_lag(lag);
        Ok(())
    }
}

fn evaluator_loop(
    cfg: &IngestConfig,
    queue: &WindowQueue,
    checkpoint_path: &Path,
    cells: &SummaryCells,
) -> Result<()> {
    let m = super::metrics();
    let haee = Haee::builder().threads(cfg.threads.max(1)).build();
    while let Some(task) = queue.pop() {
        let started = Instant::now();
        match &task.body {
            TaskBody::Skip => {
                m.windows_skipped.inc();
                cells.windows_skipped.fetch_add(1, Ordering::Relaxed);
            }
            TaskBody::Eval(wd) => {
                let json = render_report(cfg, &task, wd, &haee);
                let path = cfg.out.join(report_name(task.index, task.start_minute));
                write_atomic(&path, json.as_bytes())?;
                m.windows_emitted.inc();
                m.gap_samples.add(wd.gap_samples);
                m.window_ns.record_duration(started.elapsed());
                cells.windows_emitted.fetch_add(1, Ordering::Relaxed);
                cells
                    .gap_samples
                    .fetch_add(wd.gap_samples, Ordering::Relaxed);
            }
        }
        // Report first, checkpoint second: a crash in between resumes
        // at this window, finds the report, and skips — never re-emits.
        Checkpoint {
            base_minute: task.base_minute,
            next_window: task.index + 1,
            watermark_minute: task.watermark,
            window_minutes: cfg.window_minutes,
            hop_minutes: cfg.hop(),
        }
        .save(checkpoint_path)?;
    }
    Ok(())
}

/// FNV-1a over the output dataset (dims then sample bit patterns) —
/// the digest style shared with the chaos suite and `das_query`.
fn digest_output(dims: &[u64], values: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: [u8; 8]| {
        for b in bytes {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    };
    for d in dims {
        eat(d.to_le_bytes());
    }
    for v in values {
        eat(v.to_bits().to_le_bytes());
    }
    h
}

/// Render one window report. Deterministic by construction: no wall
/// clock, no paths, integers only — the same window with the same
/// admitted files produces the same bytes in any run, which is what
/// lets the kill-and-resume gate compare report unions byte-for-byte.
fn render_report(cfg: &IngestConfig, task: &WindowTask, wd: &WindowData, haee: &Haee) -> String {
    let data_f64 = Array2::from_vec(
        wd.data.rows(),
        wd.data.cols(),
        wd.data.as_slice().iter().map(|&v| v as f64).collect(),
    );
    let outcome = cfg.job.eval(&data_f64, task.sampling_hz as f64, haee);

    let mut w = JsonWriter::with_capacity(512);
    w.begin_object();
    w.key("window").uint(task.index);
    w.key("start_minute").uint(task.start_minute);
    w.key("timestamp")
        .string(&Timestamp::from_epoch_minutes(task.start_minute).to_compact());
    w.key("job").string(cfg.job.name());
    w.key("channels").uint(wd.data.rows() as u64);
    w.key("samples").uint(wd.data.cols() as u64);
    w.key("sampling_hz").uint(task.sampling_hz.max(0) as u64);
    w.key("window_minutes").uint(cfg.window_minutes);
    w.key("present_minutes").uint(wd.present_minutes);
    w.key("gap_minutes").uint(wd.gap_minutes);
    w.key("gap_samples").uint(wd.gap_samples);
    w.key("gap_spans").begin_array();
    for span in &wd.gap_spans {
        w.begin_array();
        w.uint(span.start);
        w.uint(span.end);
        w.end_array();
    }
    w.end_array();
    match outcome {
        Ok(out) => {
            let (dims, values) = out.to_dataset();
            w.key("status").string("ok");
            w.key("dims").begin_array();
            for d in &dims {
                w.uint(*d);
            }
            w.end_array();
            w.key("digest")
                .string(&format!("{:016x}", digest_output(&dims, &values)));
        }
        Err(e) => {
            // A job failure is a reportable outcome, not a daemon
            // death: the loop must outlive one bad window.
            w.key("status").string("error");
            w.key("error").string(&e.to_string());
        }
    }
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dass::search::tests::make_files;

    fn fresh_out(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dassa-ingest-out-{tag}"));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn fast_cfg(spool: PathBuf, out: PathBuf) -> IngestConfig {
        let mut cfg = IngestConfig::new(spool, out);
        cfg.base_backoff = Duration::from_millis(1);
        cfg.poll = Duration::from_millis(5);
        cfg.threads = 1;
        cfg
    }

    fn reports(out: &Path) -> Vec<PathBuf> {
        // The daemon creates `out` itself; racing watchers see none.
        let Ok(entries) = std::fs::read_dir(out) else {
            return Vec::new();
        };
        let mut v: Vec<PathBuf> = entries
            .map(|e| e.unwrap().path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("window_") && n.ends_with(".json"))
            })
            .collect();
        v.sort();
        v
    }

    fn concat_reports(out: &Path) -> Vec<u8> {
        let mut bytes = Vec::new();
        for p in reports(out) {
            bytes.extend_from_slice(p.file_name().unwrap().to_str().unwrap().as_bytes());
            bytes.push(b'\n');
            bytes.extend_from_slice(&std::fs::read(&p).unwrap());
            bytes.push(b'\n');
        }
        bytes
    }

    #[test]
    fn drain_emits_expected_windows_and_checkpoints() {
        let spool = make_files("daemon-drain", "170728224510", 6, 4, 240);
        let out = fresh_out("daemon-drain");
        let cfg = fast_cfg(spool, out.clone());
        let summary = run_once(&cfg).unwrap();
        assert_eq!(summary.admitted, 6);
        assert_eq!(summary.windows_emitted, 3, "6 minutes / 2-minute windows");
        assert_eq!(summary.gap_samples, 0);
        assert_eq!(reports(&out).len(), 3);
        let cp = Checkpoint::load(&cfg.checkpoint_path()).unwrap().unwrap();
        assert_eq!(cp.next_window, 3);
        assert_eq!(cp.window_minutes, 2);
        // Report content is valid JSON with the expected outcome.
        let text = std::fs::read_to_string(&reports(&out)[0]).unwrap();
        let obs::json::JsonValue::Object(map) = obs::json::parse(&text).unwrap() else {
            panic!("report is not an object");
        };
        assert_eq!(
            map.get("status"),
            Some(&obs::json::JsonValue::String("ok".into()))
        );
        assert_eq!(
            map.get("job"),
            Some(&obs::json::JsonValue::String("interferometry".into()))
        );
    }

    #[test]
    fn rerun_skips_everything_already_emitted() {
        let spool = make_files("daemon-rerun", "170728224510", 4, 4, 240);
        let out = fresh_out("daemon-rerun");
        let cfg = fast_cfg(spool, out.clone());
        let first = run_once(&cfg).unwrap();
        assert_eq!(first.windows_emitted, 2);
        let before = concat_reports(&out);
        let second = run_once(&cfg).unwrap();
        assert_eq!(second.windows_emitted, 0, "no duplicate windows");
        assert_eq!(second.windows_skipped, 0, "frontier already past them");
        assert_eq!(concat_reports(&out), before, "reports untouched");
    }

    #[test]
    fn staged_resume_matches_uninterrupted_run() {
        // Uninterrupted reference run over all 6 minutes.
        let all = make_files("daemon-union-all", "170728224510", 6, 4, 240);
        let out_ref = fresh_out("daemon-union-ref");
        run_once(&fast_cfg(all.clone(), out_ref.clone())).unwrap();

        // Staged run: first 3 files, drain, then the rest, drain again.
        let staged = fresh_out("daemon-union-staged-spool");
        std::fs::create_dir_all(&staged).unwrap();
        let mut names: Vec<_> = std::fs::read_dir(&all)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_str().is_some_and(|s| s.ends_with(".dasf")))
            .collect();
        names.sort();
        let out_staged = fresh_out("daemon-union-staged");
        let cfg = fast_cfg(staged.clone(), out_staged.clone());
        for n in &names[..3] {
            std::fs::copy(all.join(n), staged.join(n)).unwrap();
        }
        let a = run_once(&cfg).unwrap();
        assert_eq!(a.windows_emitted, 1, "first stage completes one window");
        for n in &names[3..] {
            std::fs::copy(all.join(n), staged.join(n)).unwrap();
        }
        let b = run_once(&cfg).unwrap();
        assert_eq!(
            b.windows_emitted + b.windows_skipped + a.windows_emitted,
            3 + b.windows_skipped
        );

        // The union of both stages is byte-identical to the reference.
        assert_eq!(concat_reports(&out_staged), concat_reports(&out_ref));
    }

    #[test]
    fn missing_minute_degrades_to_gap_accounting() {
        let spool = make_files("daemon-gap", "170728224510", 4, 4, 240);
        // Remove the second file: window 0 covers minutes 0–1, so its
        // report must account one missing minute.
        let mut names: Vec<_> = std::fs::read_dir(&spool)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "dasf"))
            .collect();
        names.sort();
        std::fs::remove_file(&names[1]).unwrap();
        let out = fresh_out("daemon-gap");
        let summary = run_once(&fast_cfg(spool, out.clone())).unwrap();
        assert_eq!(summary.windows_emitted, 2);
        assert_eq!(summary.gap_samples, 4 * 240);
        let text = std::fs::read_to_string(&reports(&out)[0]).unwrap();
        assert!(text.contains("\"gap_minutes\":1"), "{text}");
        assert!(text.contains("\"status\":\"ok\""), "{text}");
    }

    #[test]
    fn late_file_is_evicted_not_rewritten() {
        let all = make_files("daemon-late-src", "170728224510", 4, 4, 240);
        let mut names: Vec<_> = std::fs::read_dir(&all)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_str().is_some_and(|s| s.ends_with(".dasf")))
            .collect();
        names.sort();
        let spool = fresh_out("daemon-late-spool");
        std::fs::create_dir_all(&spool).unwrap();
        // Stage minutes 1..4 first (minute 0 withheld).
        for n in &names[1..] {
            std::fs::copy(all.join(n), spool.join(n)).unwrap();
        }
        let out = fresh_out("daemon-late");
        let cfg = fast_cfg(spool.clone(), out.clone());
        let a = run_once(&cfg).unwrap();
        assert_eq!(a.admitted, 3);
        assert!(a.windows_emitted >= 1);
        // Now minute 0 limps in — behind the sealed frontier. The
        // resumed scan retires it to `ingest.late/` alongside the two
        // already-consumed minutes (1 and 2): everything behind the
        // frontier is history, whether it was processed or never will
        // be, and retiring it keeps restart scans from regrowing.
        std::fs::copy(all.join(&names[0]), spool.join(&names[0])).unwrap();
        let b = run_once(&cfg).unwrap();
        assert_eq!(b.late, 3);
        for n in &names[..3] {
            assert!(spool.join(LATE_DIR).join(n).exists(), "{n:?} retired");
        }
        assert!(spool.join(&names[3]).exists(), "open minute stays live");
        assert_eq!(b.windows_emitted, 0, "history did not move");
    }

    #[test]
    fn always_on_loop_seals_behind_lateness_and_stops() {
        let spool = make_files("daemon-loop", "170728224510", 5, 4, 240);
        let out = fresh_out("daemon-loop");
        let mut cfg = fast_cfg(spool, out.clone());
        cfg.lateness_minutes = 1;
        let stop = AtomicBool::new(false);
        let summary = std::thread::scope(|s| {
            let h = s.spawn(|| run(&cfg, &stop));
            // Give the loop time to drain and seal.
            let deadline = Instant::now() + Duration::from_secs(10);
            while Instant::now() < deadline && reports(&out).len() < 2 {
                std::thread::sleep(Duration::from_millis(10));
            }
            stop.store(true, Ordering::Relaxed);
            h.join().unwrap()
        })
        .unwrap();
        // 5 minutes, watermark 5−1=4 → windows [0,2) and [2,4).
        assert_eq!(summary.windows_emitted, 2);
        assert_eq!(summary.admitted, 5);
    }

    #[test]
    fn checkpoint_geometry_mismatch_is_loud() {
        let spool = make_files("daemon-geom", "170728224510", 2, 4, 240);
        let out = fresh_out("daemon-geom");
        let cfg = fast_cfg(spool, out.clone());
        run_once(&cfg).unwrap();
        let mut wider = cfg.clone();
        wider.window_minutes = 3;
        assert!(matches!(run_once(&wider), Err(DassaError::Inconsistent(_))));
    }

    #[test]
    fn dasl_job_reports_with_program_name() {
        let spool = make_files("daemon-dasl", "170728224510", 2, 4, 240);
        let out = fresh_out("daemon-dasl");
        let mut cfg = fast_cfg(spool, out.clone());
        cfg.job = IngestJob::Program(
            dasl::compile("load(\"spool\") | detrend | demean | xcorr(master=ch[0])").unwrap(),
        );
        let summary = run_once(&cfg).unwrap();
        assert_eq!(summary.windows_emitted, 1);
        let text = std::fs::read_to_string(&reports(&out)[0]).unwrap();
        assert!(text.contains("\"job\":\"dasl\""), "{text}");
        assert!(text.contains("\"status\":\"ok\""), "{text}");
    }
}
