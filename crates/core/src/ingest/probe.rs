//! The ingest health probe: a tiny local socket speaking the `dassd`
//! wire protocol, answering `Ping` / `Health` / `Metrics` /
//! `MetricsSeries` so the same tools (`das_query --health`, `das_top`)
//! work against both daemons. Data-plane requests (`ReadAll`, `Eval`,
//! …) are refused with a typed error — the probe is diagnostics only,
//! served by one background thread with per-connection read timeouts
//! so a stuck client cannot wedge it.

use super::metrics;
use crate::dassd::protocol::{read_frame, write_frame, ErrorKind, HealthInfo, Request, Response};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A running probe listener; stops (and joins its thread) on drop.
pub struct Probe {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Static facts the probe reports in `Health` but cannot observe
/// itself (they belong to the ingest configuration).
#[derive(Debug, Clone, Copy)]
struct ProbeFacts {
    workers: u64,
    queue_cap: u64,
}

impl Probe {
    /// Bind `bind` (e.g. `127.0.0.1:0`) and start answering probes.
    /// `workers` / `queue_cap` are the ingest run's evaluator thread
    /// count and `max_inflight` bound, echoed in `Health`.
    pub fn start(
        bind: &str,
        sampler: Arc<obs::Sampler>,
        workers: u64,
        queue_cap: u64,
    ) -> io::Result<Probe> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let facts = ProbeFacts { workers, queue_cap };
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("ingest-probe".into())
                .spawn(move || probe_loop(listener, sampler, stop, facts))?
        };
        obs::log_info!("ingest.probe", "probe listening on {addr}");
        Ok(Probe {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (port resolved when `bind` asked for `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the listener thread and wait for it to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Probe {
    fn drop(&mut self) {
        self.stop();
    }
}

fn probe_loop(
    listener: TcpListener,
    sampler: Arc<obs::Sampler>,
    stop: Arc<AtomicBool>,
    facts: ProbeFacts,
) {
    let started = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((conn, _)) => {
                if let Err(e) = serve_conn(conn, &sampler, started, facts) {
                    obs::log_debug!("ingest.probe", "probe connection dropped: {e}");
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                obs::log_warn!("ingest.probe", "probe accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn serve_conn(
    conn: TcpStream,
    sampler: &obs::Sampler,
    started: Instant,
    facts: ProbeFacts,
) -> io::Result<()> {
    conn.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = io::BufReader::new(conn.try_clone()?);
    let mut writer = io::BufWriter::new(conn);
    let m = metrics();
    loop {
        let Some(payload) = read_frame(&mut reader)? else {
            return Ok(());
        };
        let req = match Request::decode(&payload) {
            Ok(req) => req,
            Err(e) => {
                m.note_error(&format!("malformed: {e}"));
                obs::log_warn!("ingest.probe", "malformed probe request: {e}");
                let rsp = Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: e.to_string(),
                };
                write_frame(&mut writer, &rsp.encode())?;
                return Ok(());
            }
        };
        m.probe_requests.inc();
        let rsp = answer(&req, sampler, started, facts);
        write_frame(&mut writer, &rsp.encode())?;
        use io::Write;
        writer.flush()?;
    }
}

fn answer(req: &Request, sampler: &obs::Sampler, started: Instant, facts: ProbeFacts) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Health => Response::Health {
            info: health(started, facts),
        },
        Request::Metrics => Response::MetricsJson {
            json: obs::global().snapshot().to_json_tagged(
                &[
                    ("component", "das_ingest"),
                    ("version", env!("CARGO_PKG_VERSION")),
                ],
                &[("uptime_ms", uptime_ms(started))],
            ),
        },
        Request::MetricsSeries => {
            sampler.sample_now();
            Response::SeriesJson {
                json: sampler.to_json(),
            }
        }
        other => Response::Error {
            kind: ErrorKind::BadRequest,
            message: format!("{other:?} is not served by the ingest probe"),
        },
    }
}

fn uptime_ms(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX)
}

fn health(started: Instant, facts: ProbeFacts) -> HealthInfo {
    let m = metrics();
    HealthInfo {
        component: "das_ingest".into(),
        version: env!("CARGO_PKG_VERSION").into(),
        uptime_ms: uptime_ms(started),
        workers: facts.workers,
        workers_busy: 0,
        queue_len: m.queue_depth.get(),
        queue_cap: facts.queue_cap,
        cache_resident_bytes: 0,
        cache_capacity_bytes: 0,
        requests_total: m.probe_requests.get(),
        last_error: m.last_error(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dassd::Client;

    #[test]
    fn probe_answers_ping_health_metrics_and_series() {
        let sampler = Arc::new(obs::Sampler::start(
            Arc::clone(obs::global()),
            Duration::from_secs(3600),
            8,
        ));
        let mut probe = Probe::start("127.0.0.1:0", Arc::clone(&sampler), 2, 4).unwrap();
        let mut client = Client::connect(probe.addr()).unwrap();
        client.ping().unwrap();

        let info = client.health().unwrap();
        assert_eq!(info.component, "das_ingest");
        assert_eq!(info.version, env!("CARGO_PKG_VERSION"));
        assert_eq!(info.workers, 2);
        assert_eq!(info.queue_cap, 4);
        assert_eq!(info.cache_capacity_bytes, 0);
        assert!(info.requests_total >= 1, "health itself is counted");

        let metrics_json = client.metrics_json().unwrap();
        let obs::json::JsonValue::Object(map) = obs::json::parse(&metrics_json).unwrap() else {
            panic!("metrics is not an object");
        };
        assert_eq!(
            map.get("component"),
            Some(&obs::json::JsonValue::String("das_ingest".into()))
        );
        assert!(map.contains_key("uptime_ms"));

        let series = client.metrics_series_json().unwrap();
        assert!(obs::json::parse(&series).is_ok(), "{series}");

        // Data-plane requests are refused, and the refusal is recorded.
        assert!(client.read_all().is_err());
        assert!(client.ping().is_ok(), "connection survives the refusal");
        drop(client);
        probe.stop();
    }
}
