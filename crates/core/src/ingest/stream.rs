//! The incremental VCA: a minute-keyed index of admitted files.
//!
//! A batch [`Vca`](crate::dass::Vca) is built once from a complete,
//! contiguous catalog. Streams have neither property — files arrive out
//! of order, some minutes never arrive — so ingest keeps a
//! [`MinuteIndex`] instead: admitted files keyed by their epoch minute,
//! merged one metadata record at a time (the paper's Table I "cheap
//! metadata merge", no array data moves). Gaps are first-class: window
//! reads zero-fill missing minutes and account for them, mirroring the
//! batch reader's `ReadReport`.

use crate::dass::{FileEntry, Timestamp, DATASET_PATH};
use crate::{DassaError, Result};
use arrayudf::{Array2, TileView};
use std::collections::BTreeMap;
use std::ops::Range;

/// The fixed geometry of a minute stream, pinned by the first admitted
/// file; every later admission must agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamShape {
    /// Channels per file.
    pub channels: u64,
    /// Sampling rate in Hz.
    pub sampling_hz: i64,
    /// Time samples per minute file (`sampling_hz * 60`).
    pub samples_per_minute: u64,
}

/// What [`MinuteIndex::admit`] did with a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// The minute was vacant; the file now backs it.
    Admitted,
    /// The minute is already backed by an earlier admission
    /// (first-writer-wins; inspect [`MinuteIndex::entry_at`] to tell a
    /// re-delivery of the same path from a conflicting second path).
    Duplicate,
}

/// One window's worth of samples plus its gap accounting.
#[derive(Debug, Clone)]
pub struct WindowData {
    /// `channels × (minutes · samples_per_minute)`, missing minutes
    /// zero-filled.
    pub data: Array2<f32>,
    /// Minutes backed by a readable file.
    pub present_minutes: u64,
    /// Minutes zero-filled (absent, or present but unreadable).
    pub gap_minutes: u64,
    /// Samples zero-filled (`gap_minutes × channels × samples_per_minute`).
    pub gap_samples: u64,
    /// Zero-filled runs as absolute epoch-minute ranges, ascending.
    pub gap_spans: Vec<Range<u64>>,
}

/// Admitted minute files, keyed by [`Timestamp::epoch_minutes`].
#[derive(Debug, Default)]
pub struct MinuteIndex {
    shape: Option<StreamShape>,
    minutes: BTreeMap<u64, FileEntry>,
}

impl MinuteIndex {
    /// Empty index; the first admission pins the stream shape.
    pub fn new() -> MinuteIndex {
        MinuteIndex::default()
    }

    /// Geometry pinned by the first admission, if any.
    pub fn shape(&self) -> Option<StreamShape> {
        self.shape
    }

    /// Admitted files.
    pub fn len(&self) -> usize {
        self.minutes.len()
    }

    /// True before the first admission.
    pub fn is_empty(&self) -> bool {
        self.minutes.is_empty()
    }

    /// Earliest admitted minute.
    pub fn base_minute(&self) -> Option<u64> {
        self.minutes.keys().next().copied()
    }

    /// One past the latest admitted minute (every admitted file covers
    /// exactly one minute).
    pub fn max_end_minute(&self) -> Option<u64> {
        self.minutes.keys().next_back().map(|m| m + 1)
    }

    /// The entry backing `minute`, if admitted.
    pub fn entry_at(&self, minute: u64) -> Option<&FileEntry> {
        self.minutes.get(&minute)
    }

    /// Admitted minutes in ascending order — the stream as the
    /// watermark sees it, whatever order the files arrived in.
    pub fn minutes(&self) -> impl Iterator<Item = u64> + '_ {
        self.minutes.keys().copied()
    }

    /// Merge one validated file into the index. Order-independent and
    /// idempotent: any permutation (with duplicates) of the same entry
    /// set yields the same index, which is what makes the watermark
    /// arithmetic deterministic under out-of-order delivery.
    pub fn admit(&mut self, entry: FileEntry) -> Result<Admit> {
        let meta = &entry.meta;
        if meta.duration_minutes() != 1 {
            return Err(DassaError::Inconsistent(format!(
                "{}: ingest expects one-minute files, this one covers {} minute(s) \
                 ({} samples at {} Hz)",
                entry.path.display(),
                meta.duration_minutes(),
                meta.samples,
                meta.sampling_hz
            )));
        }
        let shape = StreamShape {
            channels: meta.channels,
            sampling_hz: meta.sampling_hz,
            samples_per_minute: meta.samples,
        };
        match self.shape {
            None => self.shape = Some(shape),
            Some(fixed) if fixed != shape => {
                return Err(DassaError::Inconsistent(format!(
                    "{}: shape {}ch x {}spm @ {}Hz disagrees with the stream's \
                     {}ch x {}spm @ {}Hz",
                    entry.path.display(),
                    shape.channels,
                    shape.samples_per_minute,
                    shape.sampling_hz,
                    fixed.channels,
                    fixed.samples_per_minute,
                    fixed.sampling_hz
                )));
            }
            Some(_) => {}
        }
        let minute = meta.timestamp.epoch_minutes();
        match self.minutes.entry(minute) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(entry);
                Ok(Admit::Admitted)
            }
            std::collections::btree_map::Entry::Occupied(_) => Ok(Admit::Duplicate),
        }
    }

    /// The unadmitted runs inside `range`, ascending — the spans a
    /// window read will zero-fill.
    pub fn gap_spans(&self, range: Range<u64>) -> Vec<Range<u64>> {
        let mut spans = Vec::new();
        let mut cursor = range.start;
        for &m in self.minutes.range(range.clone()).map(|(m, _)| m) {
            if m > cursor {
                spans.push(cursor..m);
            }
            cursor = m + 1;
        }
        if cursor < range.end {
            spans.push(cursor..range.end);
        }
        spans
    }

    /// Read `minutes` minutes starting at `start_minute` as one
    /// `channel × time` array. Missing minutes are zero-filled; a
    /// minute whose file fails to read *after* admission (moved,
    /// re-torn, bit-rotted) degrades to a gap too — an always-on loop
    /// must emit a partial window rather than die.
    ///
    /// Panics if called before the first admission (the daemon never
    /// seals a window on an empty index).
    pub fn read_window(&self, start_minute: u64, minutes: u64) -> WindowData {
        let shape = self.shape.expect("read_window on an empty index");
        let ch = shape.channels as usize;
        let spm = shape.samples_per_minute as usize;
        let mut data = Array2::<f32>::zeroed(ch, minutes as usize * spm);
        let mut present = vec![false; minutes as usize];
        for off in 0..minutes {
            let Some(entry) = self.minutes.get(&(start_minute + off)) else {
                continue;
            };
            let ok = dasf::File::open(&entry.path)
                .and_then(|f| f.read_f32(DATASET_PATH))
                .map(|raw| {
                    if raw.len() == ch * spm {
                        data.paste(0, off as usize * spm, TileView::new(ch, spm, &raw));
                        true
                    } else {
                        false
                    }
                })
                .unwrap_or(false);
            present[off as usize] = ok;
        }
        let present_minutes = present.iter().filter(|p| **p).count() as u64;
        let gap_minutes = minutes - present_minutes;
        let mut gap_spans = Vec::new();
        let mut cursor: Option<u64> = None;
        for (off, ok) in present.iter().enumerate() {
            let m = start_minute + off as u64;
            match (ok, cursor) {
                (false, None) => cursor = Some(m),
                (true, Some(s)) => {
                    gap_spans.push(s..m);
                    cursor = None;
                }
                _ => {}
            }
        }
        if let Some(s) = cursor {
            gap_spans.push(s..start_minute + minutes);
        }
        WindowData {
            data,
            present_minutes,
            gap_minutes,
            gap_samples: gap_minutes * shape.channels * shape.samples_per_minute,
            gap_spans,
        }
    }

    /// The timestamp at the start of `minute` (report naming).
    pub fn timestamp_of(minute: u64) -> Timestamp {
        Timestamp::from_epoch_minutes(minute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dass::search::tests::make_files;
    use crate::dass::FileCatalog;

    fn entries(tag: &str, start: &str, n: usize) -> Vec<FileEntry> {
        let dir = make_files(tag, start, n, 3, 60);
        FileCatalog::scan(&dir).unwrap().entries().to_vec()
    }

    #[test]
    fn admit_is_order_independent_and_dedups() {
        let mut es = entries("ingest-order", "170728224510", 5);
        let minutes: Vec<u64> = es
            .iter()
            .map(|e| e.meta.timestamp.epoch_minutes())
            .collect();

        let mut forward = MinuteIndex::new();
        for e in &es {
            assert_eq!(forward.admit(e.clone()).unwrap(), Admit::Admitted);
        }
        es.reverse();
        let mut backward = MinuteIndex::new();
        for e in &es {
            backward.admit(e.clone()).unwrap();
        }
        assert_eq!(forward.base_minute(), backward.base_minute());
        assert_eq!(forward.max_end_minute(), backward.max_end_minute());
        assert_eq!(forward.base_minute(), Some(minutes[0]));
        assert_eq!(forward.max_end_minute(), Some(minutes[4] + 1));

        // Re-delivery of an already-admitted minute is a duplicate.
        assert_eq!(backward.admit(es[0].clone()).unwrap(), Admit::Duplicate);
        assert_eq!(backward.len(), 5);
    }

    #[test]
    fn shape_disagreement_is_rejected() {
        let a = entries("ingest-shape-a", "170728224510", 1);
        let b = entries("ingest-shape-b", "170728225510", 1);
        let mut wide = b[0].clone();
        wide.meta.channels = 7; // lies about geometry
        let mut idx = MinuteIndex::new();
        idx.admit(a[0].clone()).unwrap();
        assert!(matches!(idx.admit(wide), Err(DassaError::Inconsistent(_))));
    }

    #[test]
    fn multi_minute_files_are_rejected() {
        let a = entries("ingest-multi", "170728224510", 1);
        let mut long = a[0].clone();
        long.meta.samples *= 2; // two minutes at the same rate
        assert!(matches!(
            MinuteIndex::new().admit(long),
            Err(DassaError::Inconsistent(_))
        ));
    }

    #[test]
    fn gap_spans_complement_admitted_minutes() {
        let es = entries("ingest-gaps", "170728224510", 5);
        let base = es[0].meta.timestamp.epoch_minutes();
        let mut idx = MinuteIndex::new();
        for (i, e) in es.iter().enumerate() {
            if i != 1 && i != 2 {
                idx.admit(e.clone()).unwrap();
            }
        }
        assert_eq!(idx.gap_spans(base..base + 5), vec![base + 1..base + 3]);
        assert_eq!(
            idx.gap_spans(base..base + 7),
            vec![base + 1..base + 3, base + 5..base + 7]
        );
        assert!(idx.gap_spans(base..base + 1).is_empty());
    }

    #[test]
    fn read_window_zero_fills_and_accounts_gaps() {
        let es = entries("ingest-window", "170728224510", 4);
        let base = es[0].meta.timestamp.epoch_minutes();
        let mut idx = MinuteIndex::new();
        for (i, e) in es.iter().enumerate() {
            if i != 2 {
                idx.admit(e.clone()).unwrap();
            }
        }
        let w = idx.read_window(base, 4);
        assert_eq!(w.data.rows(), 3);
        assert_eq!(w.data.cols(), 4 * 60);
        assert_eq!(w.present_minutes, 3);
        assert_eq!(w.gap_minutes, 1);
        assert_eq!(w.gap_samples, 3 * 60);
        assert_eq!(w.gap_spans, vec![base + 2..base + 3]);
        // The missing minute is exactly zero; a present one is not.
        let zeroed = &w.data.as_slice()[2 * 60..3 * 60];
        assert!(zeroed.iter().all(|v| *v == 0.0));
        // make_files value = file*1e6 + ch*1000 + t; minute 1 is file 1.
        assert_eq!(w.data.as_slice()[60], 1_000_000.0);
    }

    #[test]
    fn read_window_degrades_missing_file_to_gap() {
        let es = entries("ingest-degrade", "170728224510", 2);
        let base = es[0].meta.timestamp.epoch_minutes();
        let mut idx = MinuteIndex::new();
        for e in &es {
            idx.admit(e.clone()).unwrap();
        }
        // Yank the second file out from under the index.
        std::fs::remove_file(&es[1].path).unwrap();
        let w = idx.read_window(base, 2);
        assert_eq!(w.present_minutes, 1);
        assert_eq!(w.gap_spans, vec![base + 1..base + 2]);
    }
}
