//! Streaming ingest: an always-on detection loop over arriving files.
//!
//! Batch DASSA answers "what happened in this corpus"; operational DAS
//! monitoring is a *stream* of one-minute files landing in a spool
//! directory, and the hard part is robustness, not throughput. This
//! module is the long-running half of the storage engine (ROADMAP
//! item 2, the `das_ingest` binary):
//!
//! ```text
//!            arrive            clean            in order
//!   spool ──────────▶ validate ──────▶ admit ────────────▶ watermark
//!     ▲  torn/corrupt:  │                │ late/duplicate      │
//!     │  retry w/       ▼                ▼                     ▼
//!     │  backoff    quarantine/    ingest.late/          window seal
//!     │  then ────▶ (damaged)      ingest.duplicate/          │
//!     └── rescan                                    evaluate ──▶ report
//!                                                       │
//!                                                  checkpoint
//!                                                (tmp+fsync+rename)
//! ```
//!
//! * **validate** — every file is scrubbed on admission
//!   ([`dasf::File::open_verified`]): torn and I/O failures retry with
//!   jittered exponential backoff, then quarantine; bit-rot and bad
//!   metadata quarantine immediately ([`spool`]).
//! * **admit** — a clean file joins the [`MinuteIndex`], the
//!   incremental VCA: a cheap metadata merge keyed by epoch minute, no
//!   array data moves ([`stream`]).
//! * **watermark** — once the spool is quiescent, the watermark
//!   advances to `max arrival − lateness`; files arriving behind the
//!   sealed frontier move to `ingest.late/` instead of mutating
//!   history ([`daemon`]).
//! * **window → report** — each complete window is read (missing
//!   minutes zero-filled and accounted, mirroring `ReadReport`),
//!   evaluated by an [`IngestJob`] (a built-in [`Analysis`] pipeline or
//!   a compiled `dasl` program), and emitted as a deterministic JSON
//!   report via tmp + fsync + atomic rename.
//! * **checkpoint** — after every emitted window the [`Checkpoint`]
//!   journal commits the next window index the same atomic way;
//!   `kill -9` + restart replays from the last committed watermark and
//!   re-emits nothing (a report already on disk is skipped, so the
//!   union of reports from an interrupted run is byte-identical to an
//!   uninterrupted one).
//!
//! Backpressure is structural: sealed windows flow through a bounded
//! queue to the evaluator thread, so when detection falls behind
//! arrival the scanner blocks instead of buffering unboundedly.
//!
//! [`Analysis`]: crate::dasa::Analysis

mod daemon;
mod journal;
mod probe;
mod spool;
mod stream;

pub use daemon::{run, run_once, IngestConfig, IngestJob, IngestSummary};
pub use journal::Checkpoint;
pub use probe::Probe;
pub use stream::{Admit, MinuteIndex, StreamShape, WindowData};

use obs::{Counter, Gauge, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Metric names recorded by ingest in the global `obs` registry.
pub mod metric_names {
    /// Files validated clean and admitted into the minute index.
    pub const ADMITTED: &str = "ingest.admitted";
    /// Files arriving behind the sealed frontier, moved to `ingest.late/`.
    pub const LATE: &str = "ingest.late";
    /// Duplicate deliveries (same path twice, or a second path for an
    /// already-admitted minute).
    pub const DUPLICATE: &str = "ingest.duplicate";
    /// Files that exhausted validation retries (or failed fatally) and
    /// were moved to `ingest.quarantine/`.
    pub const QUARANTINED: &str = "ingest.quarantined";
    /// Validation retries scheduled (excludes the first attempt).
    pub const RETRIES: &str = "ingest.retries";
    /// Window reports evaluated and emitted.
    pub const WINDOWS_EMITTED: &str = "ingest.windows_emitted";
    /// Windows skipped on resume because their report already exists.
    pub const WINDOWS_SKIPPED: &str = "ingest.windows_skipped";
    /// Samples zero-filled across all emitted windows.
    pub const GAP_SAMPLES: &str = "ingest.gap_samples";
    /// Data minutes admitted but not yet sealed into a window
    /// (`max arrival − sealed frontier`).
    pub const WATERMARK_LAG: &str = "ingest.watermark_lag";
    /// Per-window latency: seal-to-report wall time in nanoseconds.
    pub const WINDOW_NS: &str = "ingest.window.ns";
    /// Sealed windows buffered between the scanner and the evaluator
    /// right now (the occupancy of the bounded queue).
    pub const QUEUE_DEPTH: &str = "ingest.queue_depth";
    /// Requests answered by the local health/metrics probe socket.
    pub const PROBE_REQUESTS: &str = "ingest.probe.requests";
}

pub(crate) struct Metrics {
    pub(crate) admitted: Counter,
    pub(crate) late: Counter,
    pub(crate) duplicate: Counter,
    pub(crate) quarantined: Counter,
    pub(crate) retries: Counter,
    pub(crate) windows_emitted: Counter,
    pub(crate) windows_skipped: Counter,
    pub(crate) gap_samples: Counter,
    watermark_lag: Gauge,
    /// Last value pushed to the gauge, so the owner thread can "set" a
    /// level through the add/sub API.
    watermark_lag_last: AtomicU64,
    pub(crate) window_ns: Histogram,
    pub(crate) queue_depth: Gauge,
    pub(crate) probe_requests: Counter,
    /// Most recent operator-facing failure (quarantine reason, probe
    /// decode error), surfaced in the probe's `Health` answer.
    last_error: Mutex<String>,
}

impl Metrics {
    /// Move the watermark-lag gauge to `lag` (single-writer: only the
    /// ingest main thread calls this).
    pub(crate) fn set_watermark_lag(&self, lag: u64) {
        let last = self.watermark_lag_last.swap(lag, Ordering::Relaxed);
        match lag.cmp(&last) {
            std::cmp::Ordering::Greater => self.watermark_lag.add(lag - last),
            std::cmp::Ordering::Less => self.watermark_lag.sub(last - lag),
            std::cmp::Ordering::Equal => {}
        }
    }

    /// Record the most recent failure for `Health.last_error`.
    pub(crate) fn note_error(&self, message: &str) {
        let mut last = match self.last_error.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *last = message.to_string();
    }

    pub(crate) fn last_error(&self) -> String {
        match self.last_error.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }
}

pub(crate) fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global();
        Metrics {
            admitted: reg.counter(metric_names::ADMITTED),
            late: reg.counter(metric_names::LATE),
            duplicate: reg.counter(metric_names::DUPLICATE),
            quarantined: reg.counter(metric_names::QUARANTINED),
            retries: reg.counter(metric_names::RETRIES),
            windows_emitted: reg.counter(metric_names::WINDOWS_EMITTED),
            windows_skipped: reg.counter(metric_names::WINDOWS_SKIPPED),
            gap_samples: reg.counter(metric_names::GAP_SAMPLES),
            watermark_lag: reg.gauge(metric_names::WATERMARK_LAG),
            watermark_lag_last: AtomicU64::new(0),
            window_ns: reg.histogram(metric_names::WINDOW_NS),
            queue_depth: reg.gauge(metric_names::QUEUE_DEPTH),
            probe_requests: reg.counter(metric_names::PROBE_REQUESTS),
            last_error: Mutex::new(String::new()),
        }
    })
}
