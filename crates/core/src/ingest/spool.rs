//! The spool scanner: discovery, verify-on-admit, retry, quarantine.
//!
//! The spool directory is the ingest daemon's inbox *and* its durable
//! admitted state: files the scanner distrusts are physically moved
//! out (`ingest.quarantine/`), so a restart that rescans the spool
//! reconstructs exactly the admitted set — no separate manifest to
//! keep consistent with the filesystem.
//!
//! Per file the scanner runs a small state machine:
//!
//! ```text
//! discovered ─▶ (deferred?) ─▶ pending ─▶ validate ─▶ done
//!                                 ▲           │
//!                                 └─ backoff ─┤ retryable (torn, I/O)
//!                                             ▼ budget exhausted / fatal
//!                                         quarantined
//! ```
//!
//! Validation is [`dasf::File::open_verified`] (the v3/v4 checksum
//! scrub; on v4 files the CRCs cover the *stored* — possibly
//! compressed — units, so admission hashes exactly what is on disk
//! without decoding anything) plus the metadata parse. Torn and I/O
//! failures retry with jittered
//! exponential backoff — a torn file is usually a writer mid-rename
//! and heals on its own — while bit-rot and bad metadata quarantine
//! immediately: no number of retries fixes wrong bytes.
//!
//! Three faultline sites rehearse the arrival failure modes:
//! [`site::INGEST_SPOOL_TORN`] (the first attempt(s) observe a torn
//! file), [`site::INGEST_ARRIVAL_DELAY`] (discovery deferred for a few
//! scan rounds), and [`site::INGEST_ARRIVAL_DUPLICATE`] (a clean file
//! is delivered twice).

use crate::dass::{DasFileMeta, FileEntry};
use crate::DassaError;
use dasf::DasfError;
use faultline::{fires, key_of, site, value_below};
use std::collections::BTreeMap;
use std::ffi::{OsStr, OsString};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Directory (inside the spool) for files that failed validation.
pub(crate) const QUARANTINE_DIR: &str = "ingest.quarantine";
/// Directory for files arriving behind the sealed frontier.
pub(crate) const LATE_DIR: &str = "ingest.late";
/// Directory for second deliveries of an already-admitted minute.
pub(crate) const DUPLICATE_DIR: &str = "ingest.duplicate";

/// Per-file scanner state.
#[derive(Debug)]
enum FileState {
    /// Injected arrival delay: skip this many more scan rounds.
    Deferred { rounds_left: u64 },
    /// Awaiting (re-)validation once `ready_at` passes.
    Pending { attempts: u32, ready_at: Instant },
    /// Validated and handed to the daemon; never reconsidered.
    Done,
    /// Moved out of the spool (quarantine/late/duplicate).
    Gone,
}

/// What one scan round observed.
#[derive(Debug)]
pub(crate) enum SpoolEvent {
    /// A file validated clean (duplicate deliveries emit this twice).
    Validated(FileEntry),
    /// A file was moved to `ingest.quarantine/`.
    Quarantined { path: PathBuf, reason: String },
}

/// Why one validation attempt failed.
struct ValidationFailure {
    retryable: bool,
    reason: String,
}

pub(crate) struct SpoolScanner {
    spool: PathBuf,
    max_attempts: u32,
    base_backoff: Duration,
    /// Keyed by file name; `BTreeMap` so every round processes files in
    /// name order — the chaos digests depend on this determinism.
    states: BTreeMap<OsString, FileState>,
}

impl SpoolScanner {
    pub(crate) fn new(spool: PathBuf, max_attempts: u32, base_backoff: Duration) -> SpoolScanner {
        SpoolScanner {
            spool,
            max_attempts: max_attempts.max(1),
            base_backoff,
            states: BTreeMap::new(),
        }
    }

    /// True when every discovered file is terminal (validated or moved
    /// out) — the precondition for advancing the watermark, so a file
    /// mid-retry can never be sealed over.
    pub(crate) fn is_quiescent(&self) -> bool {
        self.states
            .values()
            .all(|s| matches!(s, FileState::Done | FileState::Gone))
    }

    /// How long until the earliest pending retry is due; `None` when
    /// nothing is in flight. Deferred files are due immediately (their
    /// unit is scan rounds, not wall time).
    pub(crate) fn next_ready_in(&self, now: Instant) -> Option<Duration> {
        self.states
            .values()
            .filter_map(|s| match s {
                FileState::Deferred { .. } => Some(Duration::ZERO),
                FileState::Pending { ready_at, .. } => {
                    Some(ready_at.saturating_duration_since(now))
                }
                _ => None,
            })
            .min()
    }

    /// Move `name` out of the spool into `spool/<subdir>/` and stop
    /// tracking it (the daemon's late/duplicate evictions).
    pub(crate) fn exile(&mut self, name: &OsStr, subdir: &str) -> io::Result<PathBuf> {
        let dir = self.spool.join(subdir);
        std::fs::create_dir_all(&dir)?;
        let dst = dir.join(name);
        // Idempotent: a double-delivered file may already be retired by
        // the time its second event is handled — already-gone is the
        // state we wanted, not a failure.
        match std::fs::rename(self.spool.join(name), &dst) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound && !self.spool.join(name).exists() => {}
            Err(e) => return Err(e),
        }
        self.states.insert(name.to_os_string(), FileState::Gone);
        Ok(dst)
    }

    /// One scan round: discover new arrivals, tick deferrals, validate
    /// everything due, schedule retries, quarantine the hopeless.
    pub(crate) fn poll(&mut self) -> io::Result<Vec<SpoolEvent>> {
        self.discover()?;
        let now = Instant::now();
        // Names due this round, in name order.
        let due: Vec<OsString> = self
            .states
            .iter_mut()
            .filter_map(|(name, state)| match state {
                FileState::Deferred { rounds_left } => {
                    if *rounds_left == 0 {
                        *state = FileState::Pending {
                            attempts: 0,
                            ready_at: now,
                        };
                        Some(name.clone())
                    } else {
                        *rounds_left -= 1;
                        None
                    }
                }
                FileState::Pending { ready_at, .. } if *ready_at <= now => Some(name.clone()),
                _ => None,
            })
            .collect();

        let m = super::metrics();
        let mut events = Vec::new();
        for name in due {
            let attempts = match self.states.get(&name) {
                Some(FileState::Pending { attempts, .. }) => *attempts,
                _ => continue,
            };
            let path = self.spool.join(&name);
            match self.validate(&path, &name, attempts) {
                Ok(entry) => {
                    self.states.insert(name.clone(), FileState::Done);
                    let key = key_of(name.as_encoded_bytes());
                    let duplicated = fires(site::INGEST_ARRIVAL_DUPLICATE, key);
                    if duplicated {
                        events.push(SpoolEvent::Validated(entry.clone()));
                    }
                    events.push(SpoolEvent::Validated(entry));
                }
                Err(f) if f.retryable && attempts + 1 < self.max_attempts => {
                    m.retries.inc();
                    obs::log_debug!(
                        "ingest.spool",
                        "retrying {} (attempt {} of {}): {}",
                        name.to_string_lossy(),
                        attempts + 2,
                        self.max_attempts,
                        f.reason
                    );
                    let ready_at = now + self.backoff(&name, attempts + 1);
                    self.states.insert(
                        name.clone(),
                        FileState::Pending {
                            attempts: attempts + 1,
                            ready_at,
                        },
                    );
                }
                Err(f) => {
                    let dst = self.exile(&name, QUARANTINE_DIR)?;
                    m.quarantined.inc();
                    events.push(SpoolEvent::Quarantined {
                        path: dst,
                        reason: f.reason,
                    });
                }
            }
        }
        Ok(events)
    }

    /// Register newly arrived `.dasf` files (in-progress `.tmp` writes
    /// and the quarantine/late/duplicate subdirectories never match).
    fn discover(&mut self) -> io::Result<()> {
        for entry in std::fs::read_dir(&self.spool)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() || path.extension().and_then(|e| e.to_str()) != Some("dasf") {
                continue;
            }
            let Some(name) = path.file_name() else {
                continue;
            };
            if self.states.contains_key(name) {
                continue;
            }
            let key = key_of(name.as_encoded_bytes());
            let state = if fires(site::INGEST_ARRIVAL_DELAY, key) {
                FileState::Deferred {
                    rounds_left: 1 + value_below(site::INGEST_ARRIVAL_DELAY, key, 3),
                }
            } else {
                FileState::Pending {
                    attempts: 0,
                    ready_at: Instant::now(),
                }
            };
            self.states.insert(name.to_os_string(), state);
        }
        Ok(())
    }

    /// One validation attempt: checksum scrub + metadata parse.
    fn validate(
        &self,
        path: &Path,
        name: &OsStr,
        attempts: u32,
    ) -> Result<FileEntry, ValidationFailure> {
        let key = key_of(name.as_encoded_bytes());
        if fires(site::INGEST_SPOOL_TORN, key) {
            // The writer renamed before its data hit the disk: the first
            // 1 + value_below(...) attempts observe a torn file. Some
            // files therefore heal within the retry budget and some
            // exhaust it — both paths rehearsed, deterministically.
            let torn_attempts =
                1 + value_below(site::INGEST_SPOOL_TORN, key, self.max_attempts as u64);
            if (attempts as u64) < torn_attempts {
                return Err(ValidationFailure {
                    retryable: true,
                    reason: "torn spool rename (injected)".into(),
                });
            }
        }
        let file = dasf::File::open_verified(path).map_err(classify_dasf)?;
        let meta = DasFileMeta::from_file(&file).map_err(classify_dassa)?;
        Ok(FileEntry {
            path: path.to_path_buf(),
            meta,
        })
    }

    /// Jittered exponential backoff for retry `attempt` (1-based): the
    /// shift is clamped, and the jitter factor in `[0.75, 1.25)` is
    /// drawn from an FNV hash of `(name, attempt)` — deterministic, so
    /// chaos runs replay byte-identically, yet decorrelated across
    /// files so real retry storms do not synchronize. The band is
    /// narrow enough that doubling always dominates: each retry waits
    /// strictly longer than the one before (2 × 0.75 > 1.25).
    fn backoff(&self, name: &OsStr, attempt: u32) -> Duration {
        let exp = self.base_backoff.saturating_mul(1u32 << attempt.min(10));
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name
            .as_encoded_bytes()
            .iter()
            .chain(attempt.to_le_bytes().iter())
        {
            h = (h ^ *b as u64).wrapping_mul(0x100_0000_01b3);
        }
        let jitter_ppm = 750_000 + h % 500_000; // [0.75, 1.25) in millionths
        let nanos = exp.as_nanos().saturating_mul(jitter_ppm as u128) / 1_000_000;
        Duration::from_nanos(nanos.min(u64::MAX as u128) as u64)
    }
}

/// Is this dasf failure plausibly transient?
fn classify_dasf(e: DasfError) -> ValidationFailure {
    let retryable = matches!(e, DasfError::Truncated | DasfError::Io(_));
    ValidationFailure {
        retryable,
        reason: e.to_string(),
    }
}

/// Metadata-layer failures: transient only if the underlying I/O was.
fn classify_dassa(e: DassaError) -> ValidationFailure {
    match e {
        DassaError::Dasf(inner) => classify_dasf(inner),
        DassaError::Io(inner) => ValidationFailure {
            retryable: true,
            reason: inner.to_string(),
        },
        other => ValidationFailure {
            retryable: false,
            reason: other.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dass::search::tests::make_files;
    use faultline::{FaultPlan, PlanGuard};
    use std::sync::Arc;

    fn drain(scanner: &mut SpoolScanner) -> Vec<SpoolEvent> {
        let mut events = Vec::new();
        loop {
            events.extend(scanner.poll().unwrap());
            if scanner.is_quiescent() {
                return events;
            }
            if let Some(wait) = scanner.next_ready_in(Instant::now()) {
                std::thread::sleep(wait.min(Duration::from_millis(5)));
            }
        }
    }

    #[test]
    fn clean_spool_validates_everything_once() {
        let dir = make_files("spool-clean", "170728224510", 4, 3, 60);
        let mut s = SpoolScanner::new(dir, 3, Duration::from_millis(1));
        let events = drain(&mut s);
        let validated = events
            .iter()
            .filter(|e| matches!(e, SpoolEvent::Validated(_)))
            .count();
        assert_eq!(validated, 4);
        // A second poll rediscovers nothing.
        assert!(s.poll().unwrap().is_empty());
    }

    #[test]
    fn corrupt_file_quarantines_immediately() {
        let dir = make_files("spool-rot", "170728224510", 2, 3, 60);
        // Bit-rot one payload byte of the first file.
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "dasf"))
            .min()
            .unwrap();
        let mut bytes = std::fs::read(&victim).unwrap();
        bytes[40] ^= 0x20;
        std::fs::write(&victim, &bytes).unwrap();

        let mut s = SpoolScanner::new(dir.clone(), 3, Duration::from_millis(1));
        let events = drain(&mut s);
        let quarantined: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                SpoolEvent::Quarantined { path, .. } => Some(path.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(quarantined.len(), 1);
        assert!(quarantined[0].starts_with(dir.join(QUARANTINE_DIR)));
        assert!(!victim.exists());
    }

    #[test]
    fn injected_torn_heals_or_quarantines_by_budget() {
        let dir = make_files("spool-torn", "170728224510", 6, 3, 60);
        let plan = Arc::new(FaultPlan::parse("seed=11,ingest.spool.torn=1.0").unwrap());
        let max_attempts = 3u32;
        // Predict per-file outcomes from the plan itself.
        let names: Vec<OsString> = {
            let mut n: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name())
                .collect();
            n.sort();
            n
        };
        let expect_quarantined: Vec<bool> = names
            .iter()
            .map(|n| {
                let key = key_of(n.as_encoded_bytes());
                let torn = 1 + plan.value_below(site::INGEST_SPOOL_TORN, key, max_attempts as u64);
                torn >= max_attempts as u64
            })
            .collect();

        let _guard = PlanGuard::install(plan);
        let mut s = SpoolScanner::new(dir, max_attempts, Duration::from_millis(1));
        let events = drain(&mut s);
        for (name, expect_q) in names.iter().zip(&expect_quarantined) {
            let quarantined = events.iter().any(|e| {
                matches!(e, SpoolEvent::Quarantined { path, .. }
                         if path.file_name() == Some(name.as_os_str()))
            });
            let validated = events.iter().any(|e| {
                matches!(e, SpoolEvent::Validated(entry)
                         if entry.path.file_name() == Some(name.as_os_str()))
            });
            assert_eq!(quarantined, *expect_q, "{name:?}");
            assert_eq!(validated, !*expect_q, "{name:?}");
        }
    }

    #[test]
    fn injected_duplicate_delivers_twice() {
        let dir = make_files("spool-dup", "170728224510", 3, 3, 60);
        let plan = Arc::new(FaultPlan::parse("seed=5,ingest.arrival.duplicate=1.0").unwrap());
        let _guard = PlanGuard::install(plan);
        let mut s = SpoolScanner::new(dir, 3, Duration::from_millis(1));
        let events = drain(&mut s);
        let validated = events
            .iter()
            .filter(|e| matches!(e, SpoolEvent::Validated(_)))
            .count();
        assert_eq!(validated, 6, "every file delivered exactly twice");
    }

    #[test]
    fn deferred_arrival_still_validates() {
        let dir = make_files("spool-delay", "170728224510", 3, 3, 60);
        let plan = Arc::new(FaultPlan::parse("seed=9,ingest.arrival.delay=1.0").unwrap());
        let _guard = PlanGuard::install(plan);
        let mut s = SpoolScanner::new(dir, 3, Duration::from_millis(1));
        // Round one discovers but defers everything.
        assert!(s.poll().unwrap().is_empty());
        assert!(!s.is_quiescent());
        let events = drain(&mut s);
        let validated = events
            .iter()
            .filter(|e| matches!(e, SpoolEvent::Validated(_)))
            .count();
        assert_eq!(validated, 3);
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let dir = std::env::temp_dir().join("dassa-spool-backoff");
        std::fs::create_dir_all(&dir).unwrap();
        let s = SpoolScanner::new(dir, 3, Duration::from_millis(10));
        let name = OsString::from("westSac_170728224510.dasf");
        let b1 = s.backoff(&name, 1);
        let b2 = s.backoff(&name, 2);
        assert_eq!(b1, s.backoff(&name, 1), "same (name, attempt) ⇒ same wait");
        // Jitter is at most ±25%, the exponent doubles: growth wins
        // for every hash value, not just lucky ones.
        assert!(b2 > b1, "{b2:?} should exceed {b1:?}");
        // Bounds: [0.75, 1.25) × base × 2^attempt.
        assert!(b1 >= Duration::from_millis(15) && b1 < Duration::from_millis(25));
    }
}
