//! The crash-consistent checkpoint journal.
//!
//! One tiny JSON file (`checkpoint.json` in the output directory)
//! records how far the detection loop has committed: the window
//! anchoring geometry and the index of the next window to emit. It is
//! rewritten after *every* emitted window with the same discipline the
//! dasf writer uses for data (`<name>.tmp` + fsync + atomic rename +
//! parent-dir fsync), so at any kill point the file on disk is either
//! the old complete checkpoint or the new complete checkpoint — never
//! a torn one.
//!
//! The checkpoint is deliberately *behind* the reports: a window's
//! report is renamed into place first, the checkpoint second. A crash
//! between the two resumes at the same window, finds the report
//! already on disk, skips re-evaluation, and advances — no lost and no
//! duplicate windows, which is the property the chaos suite's
//! kill-and-resume matrix pins down.

use obs::json::{parse, JsonValue, JsonWriter};
use std::fs;
use std::io::{self, Write};
use std::path::Path;

/// The committed frontier of an ingest run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Epoch minute windows are anchored at (fixed at first seal).
    pub base_minute: u64,
    /// Index of the next window to evaluate; windows below this are
    /// committed (their reports are on disk).
    pub next_window: u64,
    /// Highest watermark reached, in epoch minutes (informational; the
    /// sealed frontier is `base_minute + next_window * hop_minutes`).
    pub watermark_minute: u64,
    /// Window length in minutes.
    pub window_minutes: u64,
    /// Hop between window starts in minutes.
    pub hop_minutes: u64,
}

impl Checkpoint {
    /// Serialize (field order is stable for greppability).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::with_capacity(128);
        w.begin_object();
        w.key("base_minute").uint(self.base_minute);
        w.key("next_window").uint(self.next_window);
        w.key("watermark_minute").uint(self.watermark_minute);
        w.key("window_minutes").uint(self.window_minutes);
        w.key("hop_minutes").uint(self.hop_minutes);
        w.end_object();
        w.finish()
    }

    /// Atomically replace the journal at `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, self.to_json().as_bytes())
    }

    /// Load the journal at `path`; `Ok(None)` when no checkpoint has
    /// ever been committed. A malformed journal is an error, not a
    /// silent fresh start — restarting detection from zero over a
    /// spool whose windows were already emitted would be wrong twice
    /// (duplicate work, and `ingest.late` evictions of live files).
    pub fn load(path: &Path) -> io::Result<Option<Checkpoint>> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let bad = |msg: String| io::Error::other(format!("{}: {msg}", path.display()));
        let value = parse(&text).map_err(|e| bad(e.to_string()))?;
        let JsonValue::Object(map) = value else {
            return Err(bad("checkpoint is not a JSON object".into()));
        };
        let field = |key: &str| -> io::Result<u64> {
            match map.get(key) {
                Some(JsonValue::Number(n)) => Ok(*n),
                Some(_) => Err(bad(format!("field `{key}` is not an unsigned integer"))),
                None => Err(bad(format!("missing field `{key}`"))),
            }
        };
        Ok(Some(Checkpoint {
            base_minute: field("base_minute")?,
            next_window: field("next_window")?,
            watermark_minute: field("watermark_minute")?,
            window_minutes: field("window_minutes")?,
            hop_minutes: field("hop_minutes")?,
        }))
    }
}

/// Write `bytes` to `path` crash-consistently: sibling `.tmp`, fsync,
/// atomic rename over the target, fsync of the parent directory so the
/// rename itself survives power loss. Shared by the checkpoint journal
/// and the window reports.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = dir {
        // Directory fsync is best-effort on filesystems that refuse
        // opening directories; the rename is already atomic.
        if let Ok(d) = fs::File::open(dir) {
            d.sync_all().ok();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dassa-journal-{tag}"));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            base_minute: 9_250_605,
            next_window: 3,
            watermark_minute: 9_250_612,
            window_minutes: 2,
            hop_minutes: 2,
        }
    }

    #[test]
    fn save_load_round_trip() {
        let path = tmpdir("roundtrip").join("checkpoint.json");
        assert_eq!(Checkpoint::load(&path).unwrap(), None);
        let cp = sample();
        cp.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), Some(cp));
        // Overwrite advances in place.
        let mut next = cp;
        next.next_window = 4;
        next.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), Some(next));
        // No stray tmp file survives a successful commit.
        assert!(!path.with_extension("json.tmp").exists());
    }

    #[test]
    fn malformed_journal_is_loud() {
        let path = tmpdir("malformed").join("checkpoint.json");
        std::fs::write(&path, "{\"base_minute\":1").unwrap();
        assert!(Checkpoint::load(&path).is_err());
        std::fs::write(&path, "{\"base_minute\":1}").unwrap();
        let err = Checkpoint::load(&path).unwrap_err().to_string();
        assert!(err.contains("next_window"), "{err}");
    }

    #[test]
    fn write_atomic_replaces_content() {
        let path = tmpdir("atomic").join("blob.json");
        write_atomic(&path, b"old").unwrap();
        write_atomic(&path, b"new").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new");
    }
}
