//! `das_pipeline` — run a DASSA analysis from the command line.
//!
//! ```text
//! das_pipeline -d <dir> -a localsim        [-t <threads>] [-o out.dasf]
//! das_pipeline -d <dir> -a interferometry  [-t <threads>] [--master <ch>] [-o out.dasf]
//! das_pipeline -d <dir> -a stack           [-t <threads>] [--window <n>] [-o out.dasf]
//! ```
//!
//! Scans `dir`, merges every file into a VCA, runs the chosen analysis
//! with the hybrid engine, prints a summary, and optionally writes the
//! result as a dasf dataset.

use dassa::dasa::{
    interferometry, local_similarity, stacked_interferometry, Haee, InterferometryParams,
    LocalSimiParams, StackingParams,
};
use dassa::dass::{FileCatalog, Vca};
use std::process::ExitCode;

struct Args {
    dir: String,
    analysis: String,
    threads: usize,
    master: usize,
    window: usize,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: das_pipeline -d <dir> -a <localsim|interferometry|stack>\n\
         \u{20}                     [-t <threads>] [--master <channel>=0]\n\
         \u{20}                     [--window <samples>=512] [-o <out.dasf>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        dir: String::new(),
        analysis: String::new(),
        threads: omp::num_procs(),
        master: 0,
        window: 512,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "-d" | "--dir" => args.dir = value("-d"),
            "-a" | "--analysis" => args.analysis = value("-a"),
            "-t" | "--threads" => args.threads = value("-t").parse().unwrap_or_else(|_| usage()),
            "--master" => args.master = value("--master").parse().unwrap_or_else(|_| usage()),
            "--window" => args.window = value("--window").parse().unwrap_or_else(|_| usage()),
            "-o" | "--out" => args.out = Some(value("-o")),
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.dir.is_empty() || args.analysis.is_empty() {
        usage();
    }
    args
}

fn write_out(path: &str, dims: &[u64], data: &[f64]) -> dassa::Result<()> {
    let mut w = dasf::Writer::create(path)?;
    w.write_dataset_f64("/result", dims, data)?;
    w.finish()?;
    Ok(())
}

fn run(args: &Args) -> dassa::Result<()> {
    let t0 = std::time::Instant::now();
    let catalog = FileCatalog::scan(&args.dir)?;
    let vca = Vca::from_entries(catalog.entries())?;
    eprintln!(
        "merged {} files: {} channels x {} samples @ {} Hz (scan {:.1} ms)",
        vca.n_files(),
        vca.channels(),
        vca.total_samples(),
        vca.sampling_hz(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    let t1 = std::time::Instant::now();
    let data = vca.read_all_f64()?;
    eprintln!("read {:.1} ms", t1.elapsed().as_secs_f64() * 1e3);

    let haee = Haee::hybrid(args.threads);
    let t2 = std::time::Instant::now();
    match args.analysis.as_str() {
        "localsim" => {
            let params = LocalSimiParams::default();
            let map = local_similarity(&data, &params, &haee);
            eprintln!(
                "local similarity {:.1} ms: {} x {} map",
                t2.elapsed().as_secs_f64() * 1e3,
                map.rows(),
                map.cols()
            );
            let peak = map.as_slice().iter().cloned().fold(f64::MIN, f64::max);
            let mean = map.as_slice().iter().sum::<f64>() / map.len() as f64;
            println!("similarity: mean {mean:.4}, peak {peak:.4}");
            if let Some(out) = &args.out {
                write_out(out, &[map.rows() as u64, map.cols() as u64], map.as_slice())?;
                eprintln!("wrote {out}");
            }
        }
        "interferometry" => {
            let params = InterferometryParams {
                master_channel: args.master,
                ..Default::default()
            };
            let scores = interferometry(&data, &params, &haee)?;
            eprintln!("interferometry {:.1} ms", t2.elapsed().as_secs_f64() * 1e3);
            for (ch, s) in scores.iter().enumerate().step_by((scores.len() / 16).max(1)) {
                println!("channel {ch:5}: |cos| = {s:.4}");
            }
            if let Some(out) = &args.out {
                write_out(out, &[scores.len() as u64], &scores)?;
                eprintln!("wrote {out}");
            }
        }
        "stack" => {
            let params = StackingParams {
                window: args.window,
                hop: args.window,
                master_channel: args.master,
                ..Default::default()
            };
            let stacks = stacked_interferometry(&data, &params, &haee)?;
            eprintln!("stacking {:.1} ms", t2.elapsed().as_secs_f64() * 1e3);
            for (ch, s) in stacks.iter().enumerate().step_by((stacks.len() / 16).max(1)) {
                println!(
                    "channel {ch:5}: peak lag {:+5} samples, SNR {:.1} ({} windows)",
                    s.peak_lag(),
                    s.snr(),
                    s.n_windows
                );
            }
            if let Some(out) = &args.out {
                let flat: Vec<f64> = stacks.iter().flat_map(|s| s.stack.clone()).collect();
                write_out(out, &[stacks.len() as u64, args.window as u64], &flat)?;
                eprintln!("wrote {out}");
            }
        }
        other => {
            eprintln!("unknown analysis {other:?} (want localsim|interferometry|stack)");
            usage();
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("das_pipeline: {e}");
            ExitCode::FAILURE
        }
    }
}
