//! `das_pipeline` — run a DASSA analysis from the command line.
//!
//! ```text
//! das_pipeline -d <dir> -a localsim        [-t <threads>] [-o out.dasf] [--metrics[=out.json]]
//! das_pipeline -d <dir> -a interferometry  [-t <threads>] [--master <ch>] [-o out.dasf]
//! das_pipeline -d <dir> -a stack           [-t <threads>] [--window <n>] [-o out.dasf]
//! das_pipeline -d <dir> -a <any> --ranks 4 --trace=trace.json --metrics=m.json
//! das_pipeline --program pipeline.das      [-d <dir>] [-t <threads>] [-o out.dasf]
//! das_pipeline --eval 'load("corpus") | detrend | xcorr(master=ch[0])'
//! ```
//!
//! Scans `dir`, merges every file into a VCA, runs the chosen analysis
//! through the [`dasa::run`] dispatcher, prints a summary, and
//! optionally writes the result as a dasf dataset.
//!
//! With `--program <file.das>` (or `--eval <expr>`) the pipeline comes
//! from a `dasl` program instead of `-a`: the source is compiled —
//! lexed, typechecked, lowered to bytecode with adjacent element-wise
//! stages fused — the disassembly is logged to stderr, the `load(...)`
//! clause lowers into the same chunk-granular [`IoPlan`] every other
//! read path uses (`-d` overrides the corpus it names), and the
//! register VM executes the result through the same engine. Compile
//! errors render as caret diagnostics and exit with status 2.
//!
//! With `--metrics` the full observability snapshot (stage spans,
//! `dasf.*` I/O counters, `minimpi.*` message counters) is rendered to
//! stderr after the run; `--metrics=<out.json>` writes it as JSON
//! instead. Stage timings appear as `span.pipeline.{scan,read,analyze,
//! write}`, with the analysis's own spans nested underneath (e.g.
//! `span.pipeline.analyze.interferometry.apply`).
//!
//! With `--ranks <n>` (n > 1) the read stage runs under an in-process
//! `minimpi` world of n ranks, and the metrics output gains a
//! per-rank `cluster` section (min/mean/max/imbalance per metric in
//! text mode, exact per-rank values in JSON).
//!
//! With `--trace` the run records begin/end events from every
//! instrumented span into per-thread ring buffers; bare `--trace`
//! prints a summary (top spans, per-thread utilisation, critical-path
//! estimate) to stderr, `--trace=<out.json>` writes the full timeline
//! as Chrome trace-event JSON — load it in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`, or inspect it
//! with `das_trace`.
//!
//! With `--fault-plan <spec>` (e.g. `seed=42,dasf.read.err=0.05`) a
//! deterministic `faultline` plan is installed for the whole run and the
//! read stage switches to the resilient reader: unreadable member files
//! are retried, then quarantined and zero-filled, and the quarantine
//! report is printed instead of aborting the pipeline.

use dassa::prelude::*;
use std::process::ExitCode;

struct Args {
    dir: String,
    analysis: String,
    /// Path to a `.das` program file (`--program`).
    program: Option<String>,
    /// Inline `dasl` source (`--eval`).
    eval: Option<String>,
    threads: usize,
    master: Option<usize>,
    window: Option<usize>,
    ranks: usize,
    out: Option<String>,
    /// `None` = off, `Some(None)` = text to stderr, `Some(Some(p))` = JSON to `p`.
    metrics: Option<Option<String>>,
    /// `None` = off, `Some(None)` = summary to stderr, `Some(Some(p))` = Chrome JSON to `p`.
    trace: Option<Option<String>>,
    fault_plan: Option<faultline::FaultPlan>,
}

fn usage() -> ! {
    eprintln!(
        "usage: das_pipeline -d <dir> -a <localsim|interferometry|stack>\n\
         \u{20}                     [-t <threads>] [--master <channel>=0]\n\
         \u{20}                     [--window <samples>=512] [-o <out.dasf>]\n\
         \u{20}                     [--ranks <n>=1] [--metrics[=<out.json>]]\n\
         \u{20}                     [--trace[=<out.json>]]\n\
         \u{20}                     [--fault-plan <seed=N,site=rate,...>]\n\
         \u{20}  or:  das_pipeline --program <file.das> [-d <dir>] [common flags]\n\
         \u{20}  or:  das_pipeline --eval '<pipeline>'  [-d <dir>] [common flags]"
    );
    std::process::exit(2);
}

/// Reject a bad argument with a clear message and exit code 2 — bad
/// invocations must fail at parse time, not panic mid-pipeline.
fn invalid(msg: &str) -> ! {
    eprintln!("das_pipeline: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        dir: String::new(),
        analysis: String::new(),
        program: None,
        eval: None,
        threads: omp::num_procs(),
        master: None,
        window: None,
        ranks: 1,
        out: None,
        metrics: None,
        trace: None,
        fault_plan: None,
    };
    let parse_plan = |spec: &str| -> faultline::FaultPlan {
        faultline::FaultPlan::parse(spec)
            .unwrap_or_else(|e| invalid(&format!("--fault-plan {spec:?}: {e}")))
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| invalid(&format!("missing value for {name}")))
        };
        let parse = |name: &str, raw: String| -> usize {
            raw.parse().unwrap_or_else(|_| {
                invalid(&format!("{name} wants a non-negative integer, got {raw:?}"))
            })
        };
        match flag.as_str() {
            "-d" | "--dir" => args.dir = value("-d"),
            "-a" | "--analysis" => args.analysis = value("-a"),
            "-t" | "--threads" => args.threads = parse("-t", value("-t")),
            "--master" => args.master = Some(parse("--master", value("--master"))),
            "--window" => args.window = Some(parse("--window", value("--window"))),
            "--program" => args.program = Some(value("--program")),
            "--eval" => args.eval = Some(value("--eval")),
            "--ranks" => args.ranks = parse("--ranks", value("--ranks")),
            "-o" | "--out" => args.out = Some(value("-o")),
            "--metrics" => args.metrics = Some(None),
            "--trace" => args.trace = Some(None),
            "--fault-plan" => args.fault_plan = Some(parse_plan(&value("--fault-plan"))),
            "-h" | "--help" => usage(),
            other => {
                if let Some(path) = other.strip_prefix("--metrics=") {
                    if path.is_empty() {
                        invalid("--metrics= wants a file path (or use bare --metrics)");
                    }
                    args.metrics = Some(Some(path.to_string()));
                } else if let Some(path) = other.strip_prefix("--trace=") {
                    if path.is_empty() {
                        invalid("--trace= wants a file path (or use bare --trace)");
                    }
                    args.trace = Some(Some(path.to_string()));
                } else if let Some(spec) = other.strip_prefix("--fault-plan=") {
                    args.fault_plan = Some(parse_plan(spec));
                } else if let Some(path) = other.strip_prefix("--program=") {
                    if path.is_empty() {
                        invalid("--program= wants a .das file path");
                    }
                    args.program = Some(path.to_string());
                } else if let Some(src) = other.strip_prefix("--eval=") {
                    if src.is_empty() {
                        invalid("--eval= wants a pipeline expression");
                    }
                    args.eval = Some(src.to_string());
                } else {
                    eprintln!("unknown flag {other:?}");
                    usage()
                }
            }
        }
    }
    let modes = usize::from(!args.analysis.is_empty())
        + usize::from(args.program.is_some())
        + usize::from(args.eval.is_some());
    if modes == 0 {
        usage();
    }
    if modes > 1 {
        invalid("choose exactly one of -a, --program, or --eval");
    }
    if args.analysis.is_empty() {
        if args.master.is_some() {
            invalid("--master only applies to -a; set it in the program: xcorr(master=ch[k])");
        }
        if args.window.is_some() {
            invalid("--window only applies to -a; set it in the program: stack(window=n)");
        }
    } else if args.dir.is_empty() {
        usage();
    }
    if args.threads == 0 {
        invalid("-t 0: the engine needs at least one thread");
    }
    if args.window == Some(0) {
        invalid("--window 0: stacking windows must hold at least one sample");
    }
    if args.ranks == 0 {
        invalid("--ranks 0: the comm world needs at least one rank");
    }
    args
}

/// Map the CLI analysis name to an [`Analysis`] (exits on unknown names).
fn select_analysis(args: &Args) -> Analysis {
    match args.analysis.as_str() {
        "localsim" | "local_similarity" => Analysis::LocalSimilarity(LocalSimiParams::default()),
        "interferometry" => Analysis::Interferometry(InterferometryParams {
            master_channel: args.master.unwrap_or(0),
            ..Default::default()
        }),
        "stack" | "stacking" => Analysis::Stacking(StackingParams {
            window: args.window.unwrap_or(512),
            hop: args.window.unwrap_or(512),
            master_channel: args.master.unwrap_or(0),
            ..Default::default()
        }),
        other => {
            eprintln!("unknown analysis {other:?} (want localsim|interferometry|stack)");
            usage();
        }
    }
}

fn summarize(output: &AnalysisOutput) {
    match output {
        AnalysisOutput::Map(map) => {
            let peak = map.as_slice().iter().cloned().fold(f64::MIN, f64::max);
            let mean = map.as_slice().iter().sum::<f64>() / map.len() as f64;
            println!("similarity: mean {mean:.4}, peak {peak:.4}");
        }
        AnalysisOutput::Scores(scores) => {
            for (ch, s) in scores
                .iter()
                .enumerate()
                .step_by((scores.len() / 16).max(1))
            {
                println!("channel {ch:5}: |cos| = {s:.4}");
            }
        }
        AnalysisOutput::Stacks(stacks) => {
            for (ch, s) in stacks
                .iter()
                .enumerate()
                .step_by((stacks.len() / 16).max(1))
            {
                println!(
                    "channel {ch:5}: peak lag {:+5} samples, SNR {:.1} ({} windows)",
                    s.peak_lag(),
                    s.snr(),
                    s.n_windows
                );
            }
        }
    }
}

/// Load the `dasl` source for `--program`/`--eval` and compile it.
/// Compile errors render as caret diagnostics and exit 2 — same
/// contract as any other bad invocation.
fn compile_program(args: &Args) -> (String, Program) {
    let (origin, src) = match (&args.program, &args.eval) {
        (Some(path), _) => {
            let src = std::fs::read_to_string(path)
                .unwrap_or_else(|e| invalid(&format!("--program {path}: {e}")));
            (path.clone(), src)
        }
        (None, Some(src)) => ("<eval>".to_string(), src.clone()),
        (None, None) => unreachable!("parse_args enforces one mode"),
    };
    match dasl::compile(&src) {
        Ok(program) => (origin, program),
        Err(e) => {
            eprintln!("das_pipeline: {origin}:");
            eprintln!("{}", e.render(&src));
            std::process::exit(2);
        }
    }
}

/// Run a compiled `dasl` program: the `load(...)` clause lowers into an
/// [`IoPlan`] (the corpus it names is the dataset directory unless `-d`
/// overrides it), the plan runs through the same serial / resilient /
/// distributed executors as `-a` mode, and the register VM executes the
/// bytecode at the corpus sampling rate.
fn run_program(args: &Args) -> dassa::Result<Option<obs::ClusterSnapshot>> {
    let (origin, program) = compile_program(args);
    eprintln!("compiled {origin}:");
    eprint!("{}", program.disassemble());
    let spec = program.load_spec();
    let dir = if args.dir.is_empty() {
        spec.corpus.clone()
    } else {
        args.dir.clone()
    };

    let _root = obs::span("pipeline");
    let t0 = std::time::Instant::now();
    let vca = {
        let _s = obs::span("scan");
        let catalog = FileCatalog::scan(&dir)?;
        Vca::from_entries(catalog.entries())?
    };
    eprintln!(
        "merged {} files: {} channels x {} samples @ {} Hz (scan {:.1} ms)",
        vca.n_files(),
        vca.channels(),
        vca.total_samples(),
        vca.sampling_hz(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    let io_plan = IoPlan::for_load(&vca, spec, args.ranks)?;
    let t1 = std::time::Instant::now();
    let (data, cluster) = {
        let _s = obs::span("read");
        if args.ranks > 1 {
            read_distributed_f64(&vca, &io_plan, args.ranks, args.fault_plan.as_ref())?
        } else {
            let block = match &args.fault_plan {
                None => IoExecutor::serial().run(&io_plan)?.0,
                Some(plan) => {
                    let plan = std::sync::Arc::new(plan.clone());
                    let (mut results, _) =
                        minimpi::run_chaos(1, plan, minimpi::RetryPolicy::default(), |comm| {
                            IoExecutor::resilient(comm).run(&io_plan)
                        });
                    let (block, report) = results.remove(0)?;
                    if report.is_clean() {
                        eprintln!("fault plan active: clean read, no faults struck");
                    } else {
                        eprintln!(
                            "fault plan active: quarantined {}/{} files {:?}, {} read retries, {} samples zero-filled",
                            report.quarantined.len(),
                            vca.n_files(),
                            report.quarantined,
                            report.io_retries,
                            report.zero_samples
                        );
                    }
                    block
                }
            };
            let wide: Vec<f64> = block.as_slice().iter().map(|&v| v as f64).collect();
            (
                arrayudf::Array2::from_vec(block.rows(), block.cols(), wide),
                None,
            )
        }
    };
    eprintln!("read {:.1} ms", t1.elapsed().as_secs_f64() * 1e3);

    let haee = Haee::builder().threads(args.threads).build();
    let bound = program.bind(vca.sampling_hz() as f64);
    let t2 = std::time::Instant::now();
    let output = {
        let _s = obs::span("analyze");
        dasa::run(&bound, &data, &haee)?
    };
    eprintln!("dasl {:.1} ms", t2.elapsed().as_secs_f64() * 1e3);
    summarize(&output);

    write_output(args, &output)?;
    Ok(cluster)
}

/// Write the result as a dasf dataset when `-o` was given.
fn write_output(args: &Args, output: &AnalysisOutput) -> dassa::Result<()> {
    if let Some(out) = &args.out {
        let _s = obs::span("write");
        let (dims, values) = output.to_dataset();
        let mut w = dasf::Writer::create(out)?;
        w.write_dataset_f64("/result", &dims, &values)?;
        w.finish()?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

fn run(args: &Args) -> dassa::Result<Option<obs::ClusterSnapshot>> {
    if args.analysis.is_empty() {
        return run_program(args);
    }
    let analysis = select_analysis(args);
    let _root = obs::span("pipeline");

    let t0 = std::time::Instant::now();
    let vca = {
        let _s = obs::span("scan");
        let catalog = FileCatalog::scan(&args.dir)?;
        Vca::from_entries(catalog.entries())?
    };
    eprintln!(
        "merged {} files: {} channels x {} samples @ {} Hz (scan {:.1} ms)",
        vca.n_files(),
        vca.channels(),
        vca.total_samples(),
        vca.sampling_hz(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    let t1 = std::time::Instant::now();
    let (data, cluster) = {
        let _s = obs::span("read");
        if args.ranks > 1 {
            let io_plan = IoPlan::for_vca(&vca, ReadStrategy::Auto, args.ranks);
            read_distributed_f64(&vca, &io_plan, args.ranks, args.fault_plan.as_ref())?
        } else {
            let data = match &args.fault_plan {
                None => vca.read_all_f64()?,
                Some(plan) => read_resilient_f64(&vca, plan)?,
            };
            (data, None)
        }
    };
    eprintln!("read {:.1} ms", t1.elapsed().as_secs_f64() * 1e3);

    let haee = Haee::builder().threads(args.threads).build();
    let t2 = std::time::Instant::now();
    let output = {
        let _s = obs::span("analyze");
        dasa::run(&analysis, &data, &haee)?
    };
    eprintln!(
        "{} {:.1} ms",
        analysis.name(),
        t2.elapsed().as_secs_f64() * 1e3
    );
    summarize(&output);

    write_output(args, &output)?;
    Ok(cluster)
}

/// Read a prepared [`IoPlan`] under an in-process comm world of `ranks`
/// ranks: the plan is summarized to stderr, then every rank runs it
/// through the [`IoExecutor`] (resilient when a fault plan is active).
/// Rank 0 gathers the channel blocks back into the full array and the
/// per-rank observability registries into a [`obs::ClusterSnapshot`]
/// for `--metrics`.
fn read_distributed_f64(
    vca: &Vca,
    io_plan: &IoPlan,
    ranks: usize,
    plan: Option<&faultline::FaultPlan>,
) -> dassa::Result<(arrayudf::Array2<f64>, Option<obs::ClusterSnapshot>)> {
    let comm_err = |e: minimpi::CommError| dassa::DassaError::Io(std::io::Error::other(e));
    eprintln!(
        "planned {} chunk reads ({} KiB) with {:?} exchange over {ranks} ranks",
        io_plan.ops.len(),
        io_plan.total_bytes() / 1024,
        io_plan.exchange
    );
    let body = |comm: &minimpi::Comm| -> dassa::Result<_> {
        let block = match plan {
            None => IoExecutor::new(comm).run(io_plan)?.0,
            Some(_) => {
                let (block, report) = IoExecutor::resilient(comm).run(io_plan)?;
                if comm.rank() == 0 && !report.is_clean() {
                    eprintln!(
                        "fault plan active: quarantined {}/{} files {:?}, {} read retries, {} samples zero-filled",
                        report.quarantined.len(),
                        vca.n_files(),
                        report.quarantined,
                        report.io_retries,
                        report.zero_samples
                    );
                }
                block
            }
        };
        let cluster = comm.try_cluster_snapshot().map_err(comm_err)?;
        Ok((arrayudf::dist::gather_rows(comm, block), cluster))
    };
    let mut results = match plan {
        None => minimpi::run(ranks, body),
        Some(p) => {
            let plan = std::sync::Arc::new(p.clone());
            minimpi::run_chaos(ranks, plan, minimpi::RetryPolicy::default(), body).0
        }
    };
    let (full, cluster) = results.remove(0)?;
    for r in results {
        r?;
    }
    let block = full.expect("rank 0 gathers the full array");
    let data: Vec<f64> = block.as_slice().iter().map(|&v| v as f64).collect();
    Ok((
        arrayudf::Array2::from_vec(block.rows(), block.cols(), data),
        cluster,
    ))
}

/// Read the VCA under a fault plan: a single-rank chaos world drives the
/// resilient reader (retry, then quarantine + zero-fill), the quarantine
/// report goes to stderr, and the f32 block widens to the f64 array the
/// analyses consume.
fn read_resilient_f64(
    vca: &Vca,
    plan: &faultline::FaultPlan,
) -> dassa::Result<arrayudf::Array2<f64>> {
    let plan = std::sync::Arc::new(plan.clone());
    let (mut results, _) = minimpi::run_chaos(1, plan, minimpi::RetryPolicy::default(), |comm| {
        dassa::dass::read_vca_resilient(comm, vca, ReadStrategy::Auto)
    });
    let (block, report) = results.remove(0)?;
    if report.is_clean() {
        eprintln!("fault plan active: clean read, no faults struck");
    } else {
        eprintln!(
            "fault plan active: quarantined {}/{} files {:?}, {} read retries, {} samples zero-filled",
            report.quarantined.len(),
            vca.n_files(),
            report.quarantined,
            report.io_retries,
            report.zero_samples
        );
    }
    let data: Vec<f64> = block.as_slice().iter().map(|&v| v as f64).collect();
    Ok(arrayudf::Array2::from_vec(block.rows(), block.cols(), data))
}

/// Emit the observability snapshot per `--metrics` (after every span
/// guard has dropped, so the full `span.pipeline.*` tree is recorded).
/// With a cluster snapshot from a `--ranks` world the JSON gains a
/// `cluster` key and the text report appends the per-rank breakdown.
fn emit_metrics(
    dest: &Option<String>,
    cluster: Option<&obs::ClusterSnapshot>,
) -> std::io::Result<()> {
    let snap = obs::global().snapshot();
    match dest {
        None => {
            eprint!("{}", snap.render_text());
            if let Some(c) = cluster {
                eprint!("{}", c.render_text());
            }
        }
        Some(path) => {
            let json = match cluster {
                Some(c) => snap.to_json_with_cluster(c),
                None => snap.to_json(),
            };
            std::fs::write(path, json)?;
            eprintln!("metrics written to {path}");
        }
    }
    Ok(())
}

/// Emit the recorded timeline per `--trace`: a text summary to stderr,
/// or Chrome trace-event JSON to a file.
fn emit_trace(dest: &Option<String>, tracer: &obs::Tracer) -> std::io::Result<()> {
    let trace = tracer.collect();
    match dest {
        None => eprint!("{}", trace.summary().render_text()),
        Some(path) => {
            std::fs::write(path, trace.to_chrome_json())?;
            eprintln!(
                "trace written to {path} ({} events, {} dropped)",
                trace.events.len(),
                trace.dropped
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(plan) = &args.fault_plan {
        // Process-wide, so dasf faults also strike scan and write stages.
        faultline::install_global(std::sync::Arc::new(plan.clone()));
    }
    // Install the tracer before any span opens so the whole run lands
    // on the timeline.
    let tracer = args
        .trace
        .as_ref()
        .map(|_| obs::trace::enable_global(obs::trace::DEFAULT_CAPACITY));
    let result = run(&args);
    if let Some(dest) = &args.trace {
        let tracer = tracer.expect("tracer installed when --trace given");
        if let Err(e) = emit_trace(dest, &tracer) {
            eprintln!("das_pipeline: writing trace failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    match &result {
        Ok(cluster) => {
            if let Some(dest) = &args.metrics {
                if let Err(e) = emit_metrics(dest, cluster.as_ref()) {
                    eprintln!("das_pipeline: writing metrics failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            if let Some(dest) = &args.metrics {
                let _ = emit_metrics(dest, None);
            }
            eprintln!("das_pipeline: {e}");
            ExitCode::FAILURE
        }
    }
}
