//! `das_ingest` — the streaming ingest daemon.
//!
//! ```text
//! das_ingest --spool /data/spool --out /data/windows            # always-on
//! das_ingest --spool stage --out win --once                     # drain & exit
//! das_ingest --spool s --out w --window 4 --hop 2 --job stacking
//! das_ingest --spool s --out w --eval 'load("live") | detrend | demean'
//! ```
//!
//! Watches the spool for arriving minute files, validates each
//! (checksum scrub), admits it into the incremental minute index, and
//! runs the detection job over every completed window, emitting one
//! deterministic JSON report per window. Progress is journaled
//! crash-consistently: `kill -9` at any instant and a restart resumes
//! from the last committed window without re-emitting anything.
//!
//! `--once` drains the spool and exits (the staged/CI mode); without
//! it the loop runs until SIGTERM/SIGINT (handled: the loop finishes
//! the current round, then exits cleanly, emitting `--metrics` if
//! asked) or a hard kill. Exit status: 0 success, 1 runtime failure,
//! 2 usage errors.
//!
//! Telemetry: `--probe-addr 127.0.0.1:0` opens a local diagnostics
//! socket answering the `dassd` protocol's `Ping`/`Health`/`Metrics`/
//! `MetricsSeries` probes (so `das_query --health` and `das_top` work
//! against ingest too), `--flight <file>` installs the panic flight
//! recorder, and structured log records go to stderr (`DASSA_LOG`
//! filters, `DASSA_LOG_FORMAT=json` switches format).

use dassa::ingest::{run, run_once, IngestConfig, IngestJob, Probe};
use dassa::prelude::*;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set by the signal handler; checked by the always-on loop each round.
static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    /// Install SIGINT/SIGTERM handlers that flip [`super::STOP`]. Raw
    /// `signal(2)` through the already-linked libc — no new crates.
    /// The handler body is a single atomic store, which is
    /// async-signal-safe.
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_signal(_sig: i32) {
            super::STOP.store(true, std::sync::atomic::Ordering::Relaxed);
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

struct Args {
    cfg: IngestConfig,
    once: bool,
    metrics: Option<Option<String>>,
    fault_plan: Option<faultline::FaultPlan>,
    probe_addr: Option<String>,
    flight: Option<String>,
    sample_ms: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: das_ingest --spool <dir> --out <dir> [options]\n\
         \n\
         options:\n\
         \x20 --once                 drain the spool, emit every complete window, exit\n\
         \x20 --window <minutes>     window length (default 2)\n\
         \x20 --hop <minutes>        hop between windows (default = window; tumbling)\n\
         \x20 --lateness <minutes>   watermark grace for out-of-order arrival (default 1)\n\
         \x20 --max-attempts <n>     validation attempts before quarantine (default 3)\n\
         \x20 --backoff-ms <ms>      first retry backoff, doubles per attempt (default 50)\n\
         \x20 --poll-ms <ms>         spool scan interval (default 200)\n\
         \x20 --inflight <n>         sealed windows buffered ahead of detection (default 4)\n\
         \x20 --threads <n>          evaluator engine threads (default 2)\n\
         \x20 --job <name>           built-in pipeline: interferometry (default),\n\
         \x20                        local_similarity, stacking\n\
         \x20 --eval '<program>'     run a dasl program per window instead of --job\n\
         \x20 --metrics[=<file>]     dump the obs registry on exit (stderr or file)\n\
         \x20 --probe-addr <addr>    serve Ping/Health/Metrics/MetricsSeries probes locally\n\
         \x20                        (e.g. 127.0.0.1:0; the bound address is printed)\n\
         \x20 --flight <file>        install the panic flight recorder, dumping here\n\
         \x20 --sample-ms <ms>       metrics sampler cadence for MetricsSeries (default 500)\n\
         \x20 --fault-plan <spec>    seeded fault injection, e.g. 'seed=7,ingest.spool.torn=0.3'\n\
         \n\
         Exits 0 success / 1 failure / 2 usage."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut spool: Option<String> = None;
    let mut out: Option<String> = None;
    let mut once = false;
    let mut metrics: Option<Option<String>> = None;
    let mut fault_plan = None;
    let mut window = 2u64;
    let mut hop = 0u64;
    let mut lateness = 1u64;
    let mut max_attempts = 3u32;
    let mut backoff_ms = 50u64;
    let mut poll_ms = 200u64;
    let mut inflight = 4usize;
    let mut threads = 2usize;
    let mut job: Option<IngestJob> = None;
    let mut probe_addr: Option<String> = None;
    let mut flight: Option<String> = None;
    let mut sample_ms = 500u64;

    fn numeric<T: std::str::FromStr>(flag: &str, v: &str) -> T {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{flag} expects a number, got {v:?}");
            usage()
        })
    }

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--spool" => spool = Some(value("--spool")),
            "--out" => out = Some(value("--out")),
            "--once" => once = true,
            "--window" => window = numeric("--window", &value("--window")),
            "--hop" => hop = numeric("--hop", &value("--hop")),
            "--lateness" => lateness = numeric("--lateness", &value("--lateness")),
            "--max-attempts" => max_attempts = numeric("--max-attempts", &value("--max-attempts")),
            "--backoff-ms" => backoff_ms = numeric("--backoff-ms", &value("--backoff-ms")),
            "--poll-ms" => poll_ms = numeric("--poll-ms", &value("--poll-ms")),
            "--inflight" => inflight = numeric("--inflight", &value("--inflight")),
            "--threads" => threads = numeric("--threads", &value("--threads")),
            "--job" => {
                let name = value("--job");
                job = Some(IngestJob::Analysis(match name.as_str() {
                    "interferometry" => dassa::dasa::Analysis::Interferometry(Default::default()),
                    "local_similarity" => {
                        dassa::dasa::Analysis::LocalSimilarity(Default::default())
                    }
                    "stacking" => dassa::dasa::Analysis::Stacking(Default::default()),
                    other => {
                        eprintln!("unknown --job {other:?} (want interferometry, local_similarity, or stacking)");
                        usage()
                    }
                }));
            }
            "--eval" => {
                let src = value("--eval");
                match dasl::compile(&src) {
                    Ok(p) => job = Some(IngestJob::Program(p)),
                    Err(e) => {
                        eprintln!("das_ingest: --eval does not compile:\n{}", e.render(&src));
                        std::process::exit(2);
                    }
                }
            }
            "--metrics" => metrics = Some(None),
            "--probe-addr" => probe_addr = Some(value("--probe-addr")),
            "--flight" => flight = Some(value("--flight")),
            "--sample-ms" => sample_ms = numeric("--sample-ms", &value("--sample-ms")),
            "--fault-plan" => {
                let spec = value("--fault-plan");
                match faultline::FaultPlan::parse(&spec) {
                    Ok(p) => fault_plan = Some(p),
                    Err(e) => {
                        eprintln!("bad --fault-plan: {e}");
                        usage()
                    }
                }
            }
            "-h" | "--help" => usage(),
            other => {
                if let Some(path) = other.strip_prefix("--metrics=") {
                    if path.is_empty() {
                        eprintln!("--metrics= wants a file path (or use bare --metrics)");
                        usage();
                    }
                    metrics = Some(Some(path.to_string()));
                } else {
                    eprintln!("unknown argument {other:?}");
                    usage()
                }
            }
        }
    }

    let (Some(spool), Some(out)) = (spool, out) else {
        eprintln!("--spool and --out are both required");
        usage()
    };
    if window == 0 {
        eprintln!("--window must be at least 1");
        usage();
    }
    let mut cfg = IngestConfig::new(spool, out);
    cfg.window_minutes = window;
    cfg.hop_minutes = hop;
    cfg.lateness_minutes = lateness;
    cfg.max_attempts = max_attempts.max(1);
    cfg.base_backoff = Duration::from_millis(backoff_ms);
    cfg.poll = Duration::from_millis(poll_ms.max(1));
    cfg.max_inflight = inflight.max(1);
    cfg.threads = threads.max(1);
    if let Some(job) = job {
        cfg.job = job;
    }
    Args {
        cfg,
        once,
        metrics,
        fault_plan,
        probe_addr,
        flight,
        sample_ms,
    }
}

fn emit_metrics(dest: &Option<String>) -> std::io::Result<()> {
    let snap = obs::global().snapshot();
    match dest {
        None => eprint!("{}", snap.render_text()),
        Some(path) => {
            let json = snap.to_json_tagged(
                &[
                    ("component", "das_ingest"),
                    ("version", env!("CARGO_PKG_VERSION")),
                ],
                &[],
            );
            std::fs::write(path, json)?;
            obs::log_info!("ingest", "metrics written to {path}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(plan) = &args.fault_plan {
        // Process-wide, so validation and window reads both feel it.
        faultline::install_global(std::sync::Arc::new(plan.clone()));
    }
    if let Some(path) = &args.flight {
        obs::flight::install(obs::flight::FlightConfig::new(
            path,
            Arc::clone(obs::global()),
            "das_ingest",
        ));
        obs::log_info!("ingest", "flight recorder armed, dumps to {path}");
    }
    // The sampler feeds `MetricsSeries` on the probe socket; it also
    // runs without one so a final `--metrics` snapshot has rate
    // context in the flight record.
    let sampler = Arc::new(obs::Sampler::start(
        Arc::clone(obs::global()),
        Duration::from_millis(args.sample_ms.max(1)),
        120,
    ));
    let _probe = match &args.probe_addr {
        Some(addr) => match Probe::start(
            addr,
            Arc::clone(&sampler),
            args.cfg.threads as u64,
            args.cfg.max_inflight as u64,
        ) {
            Ok(probe) => {
                // Scripts wait for this stdout line to learn the port.
                println!("das_ingest probe listening on {}", probe.addr());
                use std::io::Write;
                std::io::stdout().flush().ok();
                Some(probe)
            }
            Err(e) => {
                eprintln!("das_ingest: binding probe {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let result = if args.once {
        run_once(&args.cfg)
    } else {
        // The always-on loop: SIGINT/SIGTERM set STOP, the loop
        // finishes its round and returns. Every externally visible
        // effect is atomic, so a hard kill is also always safe.
        #[cfg(unix)]
        sig::install();
        run(&args.cfg, &STOP)
    };
    let code = match &result {
        Ok(summary) => {
            if STOP.load(Ordering::Relaxed) {
                obs::log_info!("ingest", "stop signal received; shutting down cleanly");
            }
            obs::log_info!(
                "ingest",
                "{} admitted, {} late, {} duplicate, {} quarantined, \
                 {} window(s) emitted, {} skipped, {} gap sample(s)",
                summary.admitted,
                summary.late,
                summary.duplicate,
                summary.quarantined,
                summary.windows_emitted,
                summary.windows_skipped,
                summary.gap_samples
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            obs::log_error!("ingest", "fatal: {e}");
            // A fatal error is flight-record worthy even without a
            // panic: same postmortem file, same layout.
            if obs::flight::installed() {
                match obs::flight::dump(&format!("fatal error: {e}")) {
                    Ok(p) => obs::log_info!("ingest", "flight record at {}", p.display()),
                    Err(de) => obs::log_warn!("ingest", "flight dump failed: {de}"),
                }
            }
            ExitCode::FAILURE
        }
    };
    sampler.sample_now();
    if let Some(dest) = &args.metrics {
        if let Err(e) = emit_metrics(dest) {
            obs::log_error!("ingest", "writing metrics failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    code
}
