//! `das_serve` — the `dassd` daemon.
//!
//! ```text
//! das_serve -d <corpus> [--addr 127.0.0.1:0] [--workers <n>=4]
//!           [--queue <n>=8] [--cache-bytes <n>=67108864]
//!           [--threads <n>=1] [--metrics=<out.json>]
//!           [--fault-plan <seed=N,site=rate,...>]
//! ```
//!
//! Scans the corpus once, binds the listener, prints
//! `dassd listening on <addr>` to stdout (the line scripts wait for),
//! and serves until a client sends a shutdown request (`das_query
//! --shutdown`) or the process is killed. On clean shutdown the final
//! metrics snapshot — per-endpoint request counts and latency
//! histograms, `cache.*`, bytes served — is rendered to stderr, or
//! written as JSON with `--metrics=<out.json>`.
//!
//! `--workers` bounds connections being served concurrently and
//! `--queue` bounds how many more may wait; anything beyond that is
//! rejected with a typed `Busy` response. `--cache-bytes` caps the
//! shared chunk cache. `--fault-plan` installs a deterministic
//! `faultline` plan in every worker (chaos testing).
//!
//! Telemetry: `--flight <file>` installs the panic flight recorder
//! (trace tail + log tail + final metrics snapshot, dumped atomically
//! on panic); `--inject-panic-ms <n>` panics a background thread after
//! `n` milliseconds — the CI hook proving the recorder fires. Health
//! and windowed-rate probes are served in-protocol (`das_query
//! --health`, `das_top`).

use dassa::dassd::{Server, ServerConfig};
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    dir: String,
    cfg: ServerConfig,
    /// `None` = text to stderr, `Some(p)` = JSON to `p`.
    metrics_out: Option<String>,
    flight: Option<String>,
    inject_panic_ms: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: das_serve -d <corpus> [--addr <host:port>=127.0.0.1:0]\n\
         \u{20}                 [--workers <n>=4] [--queue <n>=8]\n\
         \u{20}                 [--cache-bytes <n>=67108864] [--threads <n>=1]\n\
         \u{20}                 [--metrics=<out.json>] [--flight <file>]\n\
         \u{20}                 [--inject-panic-ms <n>]\n\
         \u{20}                 [--fault-plan <seed=N,site=rate,...>]"
    );
    std::process::exit(2);
}

fn invalid(msg: &str) -> ! {
    eprintln!("das_serve: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        dir: String::new(),
        cfg: ServerConfig::default(),
        metrics_out: None,
        flight: None,
        inject_panic_ms: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| invalid(&format!("missing value for {name}")))
        };
        let parse = |name: &str, raw: String| -> u64 {
            raw.parse()
                .unwrap_or_else(|_| invalid(&format!("{name} wants a number, got {raw:?}")))
        };
        match flag.as_str() {
            "-d" | "--dir" => args.dir = value("-d"),
            "--addr" => args.cfg.addr = value("--addr"),
            "--workers" => {
                args.cfg.workers = parse("--workers", value("--workers")) as usize;
                if args.cfg.workers == 0 {
                    invalid("--workers must be at least 1");
                }
            }
            "--queue" => args.cfg.queue_depth = parse("--queue", value("--queue")) as usize,
            "--cache-bytes" => {
                args.cfg.cache_bytes = parse("--cache-bytes", value("--cache-bytes"));
                if args.cfg.cache_bytes == 0 {
                    invalid("--cache-bytes must be at least 1");
                }
            }
            "--threads" => {
                args.cfg.eval_threads = parse("--threads", value("--threads")) as usize;
                if args.cfg.eval_threads == 0 {
                    invalid("--threads must be at least 1");
                }
            }
            "--fault-plan" => {
                let spec = value("--fault-plan");
                let plan = faultline::FaultPlan::parse(&spec)
                    .unwrap_or_else(|e| invalid(&format!("--fault-plan {spec:?}: {e}")));
                args.cfg.fault_plan = Some(std::sync::Arc::new(plan));
            }
            "--flight" => args.flight = Some(value("--flight")),
            "--inject-panic-ms" => {
                args.inject_panic_ms = Some(parse("--inject-panic-ms", value("--inject-panic-ms")));
            }
            other => {
                if let Some(path) = other.strip_prefix("--metrics=") {
                    args.metrics_out = Some(path.to_string());
                } else {
                    usage();
                }
            }
        }
    }
    if args.dir.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let server = match Server::start(args.dir.as_ref(), args.cfg) {
        Ok(s) => s,
        Err(e) => {
            obs::log_error!("dassd", "startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.flight {
        // The server's registry (a child of the global one) carries
        // the dassd.* counters and the trace ring the postmortem wants.
        obs::flight::install(obs::flight::FlightConfig::new(
            path,
            Arc::clone(server.registry()),
            "dassd",
        ));
        obs::log_info!("dassd", "flight recorder armed, dumps to {path}");
    }
    if let Some(ms) = args.inject_panic_ms {
        // CI hook: panic a background thread after `ms` milliseconds.
        // The panic hook (the flight recorder, when armed) runs during
        // the unwind; once it has finished — join observes the Err —
        // the process exits nonzero, like an uncaught crash would.
        std::thread::spawn(move || {
            let victim = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                panic!("injected panic for flight-recorder testing after {ms} ms");
            });
            let _ = victim.join();
            std::process::exit(101);
        });
    }
    println!("dassd listening on {}", server.addr());
    std::io::stdout().flush().ok();

    let snapshot = server.wait();
    match &args.metrics_out {
        None => eprint!("{}", snapshot.render_text()),
        Some(path) => {
            if let Err(e) = std::fs::write(path, snapshot.to_json()) {
                obs::log_error!("dassd", "writing {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    obs::log_info!("dassd", "clean shutdown");
    ExitCode::SUCCESS
}
