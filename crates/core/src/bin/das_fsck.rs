//! `das_fsck` — offline integrity scrub for dasf file trees.
//!
//! ```text
//! das_fsck <path>...                      # scrub files / directory trees
//! das_fsck --json /data/das               # machine-readable report
//! das_fsck --quarantine /data/bad /data   # move damaged files aside
//! das_fsck --threads 8 /data/das
//! ```
//!
//! Every `.dasf` file under the given paths is opened and every
//! checksum unit verified. Damage is classified as *torn* (truncated
//! mid-write — re-run the writer) vs *corrupt* (bit-rot — restore from
//! a replica) vs *error* (the filesystem failed). Exit status: 0 when
//! everything is clean, 1 when any file is damaged, 2 on usage errors.

use dassa::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    paths: Vec<PathBuf>,
    json: bool,
    quarantine_dir: Option<PathBuf>,
    threads: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: das_fsck [--json] [--quarantine <dir>] [--threads <n>] <path>...\n\
         \n\
         Scrubs dasf files (v3/v4 checksums verified chunk by chunk over the\n\
         stored — possibly compressed — bytes; v2 files are structurally\n\
         checked only). Directories are walked recursively for *.dasf.\n\
         Exits 0 clean / 1 damaged / 2 usage."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        paths: Vec::new(),
        json: false,
        quarantine_dir: None,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--json" => args.json = true,
            "-q" | "--quarantine" => args.quarantine_dir = Some(PathBuf::from(value("-q"))),
            "-t" | "--threads" => {
                let v = value("-t");
                args.threads = v.parse().unwrap_or_else(|_| {
                    eprintln!("--threads expects a positive integer, got {v:?}");
                    usage()
                });
                if args.threads == 0 {
                    eprintln!("--threads must be at least 1");
                    usage();
                }
            }
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if args.paths.is_empty() {
        eprintln!("no paths given");
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let targets = match collect_targets(&args.paths) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("das_fsck: cannot list targets: {e}");
            return ExitCode::FAILURE;
        }
    };
    let started = std::time::Instant::now();
    let report = scrub_paths(&targets, args.threads);
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

    if args.json {
        println!("{}", report.to_json());
    } else {
        for v in &report.files {
            println!(
                "{}\t{}\t{}\t{:.3}\t{}",
                v.path.display(),
                v.status,
                v.codec,
                v.compress_ratio,
                v.detail
            );
        }
        eprintln!(
            "# scrubbed {} file(s) in {elapsed_ms:.1} ms: {} clean, {} corrupt, {} torn, {} error(s)",
            report.scanned(),
            report.clean(),
            report.corrupt(),
            report.torn(),
            report.errors()
        );
    }

    if let Some(dir) = &args.quarantine_dir {
        if report.is_clean() {
            eprintln!("# nothing to quarantine");
        } else {
            match quarantine(&report, dir) {
                Ok(moved) => eprintln!(
                    "# quarantined {} file(s) into {}",
                    moved.len(),
                    dir.display()
                ),
                Err(e) => {
                    eprintln!("das_fsck: quarantine failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
