//! `das_query` — one-shot `dassd` client.
//!
//! ```text
//! das_query --addr <host:port> --eval '<dasl pipeline>'
//! das_query --addr <host:port> --read <ch0>..<ch1>:<t0>..<t1>
//! das_query --addr <host:port> --read-all
//! das_query --addr <host:port> --metrics | --series | --health
//! das_query --addr <host:port> --ping | --shutdown
//! das_query --addr <host:port> --read-all --burst <n>
//! ```
//!
//! Exactly one action per invocation. Reads print the response shape
//! and an FNV-1a digest of the sample bytes (stable across runs, handy
//! for byte-identity checks in scripts); evals print the output dims
//! and the first few values; `--metrics` prints the server's JSON
//! snapshot to stdout.
//!
//! `--burst <n>` replays the chosen action on `n` parallel
//! connections and prints `burst: ok=<a> busy=<b> err=<c>` — the CI
//! overload probe. Exit status: 0 on success (bursts without `--retry`
//! always exit 0 so the caller inspects the counts), 1 on a
//! server/transport error, 2 on a compile error (the rendered caret
//! diagnostic goes to stderr).
//!
//! `--retry <n>` wraps every connection in the client's
//! [`BusyRetry`] policy: up to `n` attempts per action, jittered
//! doubling waits between them, retrying only typed `busy`
//! rejections. With `--retry`, persistent busy is a *failure*: a
//! single-shot invocation exits 1 when its budget is spent, and a
//! burst exits 1 when every connection stayed busy through all its
//! attempts (`ok=0 busy>0`).

use dassa::dassd::{BusyRetry, Client, ClientError};
use std::process::ExitCode;

#[derive(Clone)]
enum Action {
    Eval(String),
    Read { ch: (u64, u64), t: (u64, u64) },
    ReadAll,
    Metrics,
    Series,
    Health,
    Ping,
    Shutdown,
}

struct Args {
    addr: String,
    action: Action,
    burst: usize,
    retry: Option<u32>,
}

fn usage() -> ! {
    eprintln!(
        "usage: das_query --addr <host:port> <action> [--burst <n>] [--retry <n>]\n\
         actions:\n\
         \u{20} --eval '<pipeline>'              compile + run a dasl program\n\
         \u{20} --read <c0>..<c1>:<t0>..<t1>     stream a channel x sample window\n\
         \u{20} --read-all                       stream the whole corpus\n\
         \u{20} --metrics                        print the server metrics JSON\n\
         \u{20} --series                         print the windowed rate-series JSON\n\
         \u{20} --health                         print the liveness/occupancy summary\n\
         \u{20} --ping                           liveness probe\n\
         \u{20} --shutdown                       ask the server to exit\n\
         options:\n\
         \u{20} --burst <n>                      replay on n parallel connections\n\
         \u{20} --retry <n>                      up to n attempts per connection on\n\
         \u{20}                                  busy (jittered backoff); exits 1 when\n\
         \u{20}                                  every attempt stayed busy"
    );
    std::process::exit(2);
}

fn invalid(msg: &str) -> ! {
    eprintln!("das_query: {msg}");
    std::process::exit(2);
}

/// Parse `<a>..<b>:<c>..<d>`.
fn parse_window(raw: &str) -> ((u64, u64), (u64, u64)) {
    let parse_range = |s: &str| -> (u64, u64) {
        let (a, b) = s
            .split_once("..")
            .unwrap_or_else(|| invalid(&format!("bad range {s:?}, want <a>..<b>")));
        let p = |x: &str| -> u64 {
            x.parse()
                .unwrap_or_else(|_| invalid(&format!("bad bound {x:?} in {raw:?}")))
        };
        (p(a), p(b))
    };
    let (ch, t) = raw
        .split_once(':')
        .unwrap_or_else(|| invalid(&format!("bad window {raw:?}, want <c0>..<c1>:<t0>..<t1>")));
    (parse_range(ch), parse_range(t))
}

fn parse_args() -> Args {
    let mut addr = String::new();
    let mut action: Option<Action> = None;
    let mut burst = 1usize;
    let mut retry: Option<u32> = None;
    let set = |a: Action, action: &mut Option<Action>| {
        if action.is_some() {
            invalid("exactly one action per invocation");
        }
        *action = Some(a);
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| invalid(&format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--eval" => {
                let src = value("--eval");
                set(Action::Eval(src), &mut action);
            }
            "--read" => {
                let (ch, t) = parse_window(&value("--read"));
                set(Action::Read { ch, t }, &mut action);
            }
            "--read-all" => set(Action::ReadAll, &mut action),
            "--metrics" => set(Action::Metrics, &mut action),
            "--series" => set(Action::Series, &mut action),
            "--health" => set(Action::Health, &mut action),
            "--ping" => set(Action::Ping, &mut action),
            "--shutdown" => set(Action::Shutdown, &mut action),
            "--burst" => {
                let raw = value("--burst");
                burst = raw
                    .parse()
                    .unwrap_or_else(|_| invalid(&format!("--burst wants a number, got {raw:?}")));
                if burst == 0 {
                    invalid("--burst must be at least 1");
                }
            }
            "--retry" => {
                let raw = value("--retry");
                let n: u32 = raw
                    .parse()
                    .unwrap_or_else(|_| invalid(&format!("--retry wants a number, got {raw:?}")));
                if n == 0 {
                    invalid("--retry must be at least 1");
                }
                retry = Some(n);
            }
            _ => usage(),
        }
    }
    if addr.is_empty() {
        invalid("--addr is required");
    }
    let Some(action) = action else { usage() };
    Args {
        addr,
        action,
        burst,
        retry,
    }
}

/// FNV-1a over a float array's LE bytes — matches the chaos suite's
/// digest style so script-level byte-identity checks are one `grep`.
fn digest_f32(data: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in data {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Run one action on a fresh connection. Returns the process exit
/// code; `quiet` suppresses stdout (burst mode).
fn run_once(addr: &str, action: &Action, quiet: bool) -> Result<(), ClientError> {
    let mut client = Client::connect(addr)?;
    match action {
        Action::Eval(src) => {
            let (dims, flat) = client.eval(src)?;
            if !quiet {
                let head: Vec<String> = flat.iter().take(4).map(|v| format!("{v:.6}")).collect();
                println!(
                    "eval ok: dims={dims:?} values={} head=[{}]",
                    flat.len(),
                    head.join(", ")
                );
            }
        }
        Action::Read { ch, t } => {
            let out = client.read_region(ch.0..ch.1, t.0..t.1)?;
            if !quiet {
                println!(
                    "read ok: {} x {} digest={:016x}",
                    out.rows(),
                    out.cols(),
                    digest_f32(out.as_slice())
                );
            }
        }
        Action::ReadAll => {
            let out = client.read_all()?;
            if !quiet {
                println!(
                    "read ok: {} x {} digest={:016x}",
                    out.rows(),
                    out.cols(),
                    digest_f32(out.as_slice())
                );
            }
        }
        Action::Metrics => {
            let json = client.metrics_json()?;
            if !quiet {
                println!("{json}");
            }
        }
        Action::Series => {
            let json = client.metrics_series_json()?;
            if !quiet {
                println!("{json}");
            }
        }
        Action::Health => {
            let h = client.health()?;
            if !quiet {
                // One stable machine-greppable line per field group.
                println!(
                    "health: component={} version={} uptime_ms={} workers={}/{} \
                     queue={}/{} cache_bytes={}/{} requests_total={} last_error={:?}",
                    h.component,
                    h.version,
                    h.uptime_ms,
                    h.workers_busy,
                    h.workers,
                    h.queue_len,
                    h.queue_cap,
                    h.cache_resident_bytes,
                    h.cache_capacity_bytes,
                    h.requests_total,
                    h.last_error
                );
            }
        }
        Action::Ping => {
            client.ping()?;
            if !quiet {
                println!("pong");
            }
        }
        Action::Shutdown => {
            client.shutdown_server()?;
            if !quiet {
                println!("shutting down");
            }
        }
    }
    Ok(())
}

/// Run the action once, or — with `--retry` — under a [`BusyRetry`]
/// policy, reconnecting per attempt (a busy rejection closes the
/// connection, so there is nothing to reuse).
fn run_with_policy(
    addr: &str,
    action: &Action,
    retry: Option<u32>,
    key: &str,
    quiet: bool,
) -> Result<(), ClientError> {
    match retry {
        None => run_once(addr, action, quiet),
        Some(n) => BusyRetry::new(n).run(key, |_| run_once(addr, action, quiet)),
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.burst > 1 {
        // Overload probe: every connection opened before any request is
        // sent, so the admission queue sees them together.
        let handles: Vec<_> = (0..args.burst)
            .map(|i| {
                let addr = args.addr.clone();
                let action = args.action.clone();
                let retry = args.retry;
                // Per-thread retry keys so the backoff jitter spreads
                // the re-attempts instead of replaying the stampede.
                std::thread::spawn(move || {
                    run_with_policy(&addr, &action, retry, &format!("burst-{i}"), true)
                })
            })
            .collect();
        let (mut ok, mut busy, mut err) = (0u64, 0u64, 0u64);
        for h in handles {
            match h.join() {
                Ok(Ok(())) => ok += 1,
                Ok(Err(ClientError::Busy)) => busy += 1,
                _ => err += 1,
            }
        }
        println!("burst: ok={ok} busy={busy} err={err}");
        // With a retry budget, "everyone stayed busy through every
        // attempt" is a failure the caller should see in the exit code.
        if args.retry.is_some() && ok == 0 && busy > 0 {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    match run_with_policy(&args.addr, &args.action, args.retry, "das_query", false) {
        Ok(()) => ExitCode::SUCCESS,
        Err(ClientError::Compile(diag)) => {
            eprint!("{diag}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("das_query: {e}");
            ExitCode::FAILURE
        }
    }
}
