//! `das_top` — live telemetry viewer for the daemons.
//!
//! ```text
//! das_top --addr <host:port>                  # refresh every second
//! das_top --addr <host:port> --interval-ms 250
//! das_top --addr <host:port> --once           # one frame, for scripts
//! ```
//!
//! Polls the `Health` and `MetricsSeries` endpoints (served by both
//! `das_serve` and the `das_ingest --probe-addr` socket) and renders a
//! rate table: requests/s, busy rejections/s, bytes/s, cache hit
//! ratio, live codec compression ratio (decoded raw bytes over stored
//! bytes, from the window's `dasf.codec.bytes_{raw,stored}` deltas),
//! read p99 latency, and the ingest watermark lag. Every rate
//! comes from the daemon's windowed series — deltas between registry
//! snapshots — never from dividing a cumulative counter by uptime, so
//! the numbers move when the daemon does.
//!
//! Each frame ends with one machine-greppable line:
//!
//! ```text
//! series: windows=<n> dt_ms=<ms> req_per_sec=<r> req_per_sec_peak=<p> \
//! busy_per_sec=<b> cache_hit_pct=<c> read_p99_ns=<ns> watermark_lag=<w> \
//! codec_ratio=<x.xx>
//! ```
//!
//! `req_per_sec` is the latest window's rate; `req_per_sec_peak` is the
//! highest window retained in the ring (what a burst shows even if it
//! landed a window or two ago). Exit status: 0, or 1 when the daemon
//! is unreachable.

use dassa::dassd::{Client, HealthInfo};
use obs::json::JsonValue;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: String,
    interval: Duration,
    /// 0 = run until killed.
    iterations: u64,
    /// Skip the ANSI clear between frames (implied by `--once`).
    plain: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: das_top --addr <host:port> [--interval-ms <n>=1000]\n\
         \u{20}              [--iterations <n>=0 (forever)] [--once] [--plain]"
    );
    std::process::exit(2);
}

fn invalid(msg: &str) -> ! {
    eprintln!("das_top: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        interval: Duration::from_millis(1000),
        iterations: 0,
        plain: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| invalid(&format!("missing value for {name}")))
        };
        let parse = |name: &str, raw: String| -> u64 {
            raw.parse()
                .unwrap_or_else(|_| invalid(&format!("{name} wants a number, got {raw:?}")))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--interval-ms" => {
                args.interval =
                    Duration::from_millis(parse("--interval-ms", value("--interval-ms")).max(50));
            }
            "--iterations" => args.iterations = parse("--iterations", value("--iterations")),
            "--once" => {
                args.iterations = 1;
                args.plain = true;
            }
            "--plain" => args.plain = true,
            _ => usage(),
        }
    }
    if args.addr.is_empty() {
        invalid("--addr is required");
    }
    args
}

/// One parsed series window: rates in milli-units/sec, gauge levels,
/// and histogram quantiles.
#[derive(Default)]
struct Window {
    dt_ms: u64,
    rates_milli: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    /// `name -> (count, p99)`.
    histograms: BTreeMap<String, (u64, u64)>,
}

fn num(map: &BTreeMap<String, JsonValue>, key: &str) -> u64 {
    match map.get(key) {
        Some(JsonValue::Number(n)) => *n,
        _ => 0,
    }
}

fn num_map(map: &BTreeMap<String, JsonValue>, key: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    if let Some(JsonValue::Object(inner)) = map.get(key) {
        for (k, v) in inner {
            if let JsonValue::Number(n) = v {
                out.insert(k.clone(), *n);
            }
        }
    }
    out
}

/// Parse the `SeriesRing` export into windows (oldest first).
fn parse_series(json: &str) -> Result<Vec<Window>, String> {
    let JsonValue::Object(top) = obs::json::parse(json).map_err(|e| e.to_string())? else {
        return Err("series export is not an object".into());
    };
    let Some(JsonValue::Array(windows)) = top.get("windows") else {
        return Err("series export has no windows array".into());
    };
    let mut out = Vec::with_capacity(windows.len());
    for w in windows {
        let JsonValue::Object(map) = w else {
            return Err("series window is not an object".into());
        };
        let mut win = Window {
            dt_ms: num(map, "t1_ms").saturating_sub(num(map, "t0_ms")),
            rates_milli: num_map(map, "rates_milli_per_sec"),
            gauges: num_map(map, "gauges"),
            histograms: BTreeMap::new(),
        };
        if let Some(JsonValue::Object(hists)) = map.get("histograms") {
            for (name, h) in hists {
                if let JsonValue::Object(fields) = h {
                    win.histograms
                        .insert(name.clone(), (num(fields, "count"), num(fields, "p99")));
                }
            }
        }
        out.push(win);
    }
    Ok(out)
}

/// Sum of all `*.requests` counter rates in a window — endpoint
/// traffic, whichever daemon is answering.
fn req_rate_milli(w: &Window) -> u64 {
    w.rates_milli
        .iter()
        .filter(|(k, _)| k.ends_with(".requests"))
        .map(|(_, v)| v)
        .sum()
}

/// Render a milli-units/sec rate as a decimal string.
fn fmt_rate(milli: u64) -> String {
    format!("{}.{:03}", milli / 1000, milli % 1000)
}

/// Cache hit percentage over one window's traffic; `None` when idle.
fn cache_hit_pct(w: &Window) -> Option<u64> {
    let hit = w.rates_milli.get("cache.hit").copied().unwrap_or(0);
    let miss = w.rates_milli.get("cache.miss").copied().unwrap_or(0);
    (hit * 100).checked_div(hit + miss)
}

/// Live compression ratio over one window's decode traffic: raw bytes
/// decoded over stored bytes read, from the windowed deltas of the
/// `dasf.codec.bytes_{raw,stored}` counters. `None` when no codec
/// traffic landed in the window.
fn codec_ratio(w: &Window) -> Option<f64> {
    let raw = w
        .rates_milli
        .get("dasf.codec.bytes_raw")
        .copied()
        .unwrap_or(0);
    let stored = w
        .rates_milli
        .get("dasf.codec.bytes_stored")
        .copied()
        .unwrap_or(0);
    (stored > 0).then(|| raw as f64 / stored as f64)
}

fn render_frame(health: &HealthInfo, windows: &[Window], plain: bool) {
    let latest = windows.last();
    let req_milli = latest.map_or(0, req_rate_milli);
    let peak_milli = windows.iter().map(req_rate_milli).max().unwrap_or(0);
    let busy_milli = latest.map_or(0, |w| w.rates_milli.get("dassd.busy").copied().unwrap_or(0));
    let bytes_milli = latest.map_or(0, |w| {
        w.rates_milli
            .get("dassd.bytes_served")
            .copied()
            .unwrap_or(0)
    });
    let hit_pct = latest.and_then(cache_hit_pct);
    let ratio = latest.and_then(codec_ratio);
    let read_p99 = latest
        .and_then(|w| w.histograms.get("dassd.read.ns"))
        .filter(|(count, _)| *count > 0)
        .map_or(0, |(_, p99)| *p99);
    let lag = latest.map_or(0, |w| {
        w.gauges.get("ingest.watermark_lag").copied().unwrap_or(0)
    });
    let dt_ms = latest.map_or(0, |w| w.dt_ms);

    if !plain {
        // Clear screen + home: a live refreshing table.
        print!("\x1b[2J\x1b[H");
    }
    println!(
        "das_top — {} v{}  up {:.1}s  workers {}/{}  queue {}/{}",
        health.component,
        health.version,
        health.uptime_ms as f64 / 1000.0,
        health.workers_busy,
        health.workers,
        health.queue_len,
        health.queue_cap,
    );
    println!(
        "  req/s        {:>12}   (peak {} over {} window(s))",
        fmt_rate(req_milli),
        fmt_rate(peak_milli),
        windows.len()
    );
    println!("  busy/s       {:>12}", fmt_rate(busy_milli));
    println!("  bytes/s      {:>12}", fmt_rate(bytes_milli));
    match hit_pct {
        Some(pct) => println!("  cache hit    {pct:>11}%"),
        None => println!("  cache hit    {:>12}", "-"),
    }
    match ratio {
        Some(r) => println!("  codec ratio  {r:>12.2}"),
        None => println!("  codec ratio  {:>12}", "-"),
    }
    println!("  read p99 ns  {read_p99:>12}");
    println!("  wmark lag    {lag:>12}");
    if health.cache_capacity_bytes > 0 {
        println!(
            "  cache bytes  {:>12} / {}",
            health.cache_resident_bytes, health.cache_capacity_bytes
        );
    }
    if !health.last_error.is_empty() {
        println!("  last error   {}", health.last_error);
    }
    println!(
        "series: windows={} dt_ms={} req_per_sec={} req_per_sec_peak={} \
         busy_per_sec={} cache_hit_pct={} read_p99_ns={} watermark_lag={} \
         codec_ratio={}",
        windows.len(),
        dt_ms,
        fmt_rate(req_milli),
        fmt_rate(peak_milli),
        fmt_rate(busy_milli),
        hit_pct.map_or_else(|| "-".into(), |p| p.to_string()),
        read_p99,
        lag,
        ratio.map_or_else(|| "-".into(), |r| format!("{r:.2}")),
    );
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut tick = 0u64;
    loop {
        let frame = (|| -> Result<(), String> {
            let mut client = Client::connect(args.addr.as_str()).map_err(|e| e.to_string())?;
            let health = client.health().map_err(|e| e.to_string())?;
            let series = client.metrics_series_json().map_err(|e| e.to_string())?;
            let windows = parse_series(&series)?;
            render_frame(&health, &windows, args.plain);
            Ok(())
        })();
        if let Err(e) = frame {
            eprintln!("das_top: {e}");
            return ExitCode::FAILURE;
        }
        tick += 1;
        if args.iterations != 0 && tick >= args.iterations {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(args.interval);
    }
}
