//! `das_search` — the command-line search tool of paper §IV-A.
//!
//! ```text
//! das_search -d <dir> -s <yymmddhhmmss> -c <count>   # type-1 range query
//! das_search -d <dir> -e <regex>                     # type-2 regex query
//! das_search -d <dir> -s <ts> -c <n> --vca out.dasf  # save hits as a VCA
//! ```
//!
//! Matching files are printed one per line (path, timestamp, shape);
//! `--vca` additionally writes a virtually-concatenated-array descriptor
//! for the hits.

use dassa::prelude::*;
use std::process::ExitCode;

struct Args {
    dir: String,
    start: Option<u64>,
    count: usize,
    regex: Option<String>,
    vca_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: das_search -d <dir> (-s <yymmddhhmmss> -c <count> | -e <regex>) [--vca <out.dasf>]\n\
         \n\
         examples (from the DASSA paper, Section IV-A):\n\
           das_search -d /data/das -s 170728224510 -c 2\n\
           das_search -d /data/das -e '170728224[567]10'"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        dir: ".".to_string(),
        start: None,
        count: 0,
        regex: None,
        vca_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "-d" | "--dir" => args.dir = value("-d"),
            "-s" | "--start" => {
                let v = value("-s");
                args.start = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("-s expects a numeric yymmddhhmmss timestamp, got {v:?}");
                    usage()
                }));
            }
            "-c" | "--count" => {
                let v = value("-c");
                args.count = v.parse().unwrap_or_else(|_| {
                    eprintln!("-c expects a non-negative integer, got {v:?}");
                    usage()
                });
            }
            "-e" | "--regex" => args.regex = Some(value("-e")),
            "--vca" => args.vca_out = Some(value("--vca")),
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.start.is_none() && args.regex.is_none() {
        eprintln!("one of -s/-c or -e is required");
        usage();
    }
    if args.start.is_some() && args.regex.is_some() {
        eprintln!("-s and -e are mutually exclusive");
        usage();
    }
    args
}

fn run(args: &Args) -> dassa::Result<Vec<FileEntry>> {
    let t_scan = std::time::Instant::now();
    let catalog = FileCatalog::scan(&args.dir)?;
    let scan_ms = t_scan.elapsed().as_secs_f64() * 1e3;

    let t_search = std::time::Instant::now();
    let hits = match (&args.start, &args.regex) {
        (Some(start), None) => catalog.search_range(*start, args.count)?,
        (None, Some(pattern)) => catalog.search_regex(pattern)?,
        _ => unreachable!("validated in parse_args"),
    };
    let search_ms = t_search.elapsed().as_secs_f64() * 1e3;

    eprintln!(
        "# scanned {} files in {scan_ms:.3} ms; search took {search_ms:.3} ms; {} hit(s)",
        catalog.len(),
        hits.len()
    );
    Ok(hits)
}

fn main() -> ExitCode {
    let args = parse_args();
    let hits = match run(&args) {
        Ok(hits) => hits,
        Err(e) => {
            eprintln!("das_search: {e}");
            return ExitCode::FAILURE;
        }
    };
    for e in &hits {
        println!(
            "{}\t{}\t{}x{}\t{} Hz",
            e.path.display(),
            e.meta.timestamp.to_compact(),
            e.meta.channels,
            e.meta.samples,
            e.meta.sampling_hz
        );
    }
    if let Some(out) = &args.vca_out {
        if hits.is_empty() {
            eprintln!("das_search: no hits, not writing VCA");
            return ExitCode::FAILURE;
        }
        let vca = match Vca::from_entries(&hits) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("das_search: cannot build VCA: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = vca.save(std::path::Path::new(out)) {
            eprintln!("das_search: cannot save VCA: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "# wrote VCA descriptor {out}: {} files, {} channels x {} samples",
            vca.n_files(),
            vca.channels(),
            vca.total_samples()
        );
    }
    ExitCode::SUCCESS
}
