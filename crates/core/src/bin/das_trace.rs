//! `das_trace` — summarize a Chrome trace-event JSON timeline.
//!
//! ```text
//! das_trace <trace.json> [--metrics <m.json>]
//! ```
//!
//! Reads a trace produced by `das_pipeline --trace=<file>` (or any
//! Chrome trace-event document with the same integer-only shape) and
//! prints the same report as bare `--trace`: top spans by total time,
//! per-thread utilisation, and a critical-path estimate. With
//! `--metrics` it also parses a `das_pipeline --metrics=<file>`
//! document and, when that run held a `--ranks` comm world, renders the
//! per-rank cluster breakdown. Exit status is nonzero when either file
//! fails to parse, so CI can use this binary as the validator for both
//! artifacts. For the full interactive timeline load the trace in
//! Perfetto (<https://ui.perfetto.dev>) instead.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: das_trace <trace.json> [--metrics <m.json>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return usage(),
            "--metrics" => match it.next() {
                Some(p) => metrics_path = Some(p),
                None => return usage(),
            },
            _ if trace_path.is_none() => trace_path = Some(arg),
            _ => return usage(),
        }
    }
    let Some(trace_path) = trace_path else {
        return usage();
    };

    let text = match std::fs::read_to_string(&trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("das_trace: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match obs::Trace::from_chrome_json(&text) {
        Ok(trace) => print!("{}", trace.summary().render_text()),
        Err(e) => {
            eprintln!("das_trace: {trace_path}: not a readable trace: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = metrics_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("das_trace: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let snap = match obs::Snapshot::from_json(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("das_trace: {path}: not a readable metrics snapshot: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "metrics: {} counter(s), {} histogram(s)",
            snap.counters.len(),
            snap.histograms.len()
        );
        // A `--ranks` run embeds the per-rank cluster view; render it.
        if text.contains("\"cluster\"") {
            match obs::ClusterSnapshot::from_json(&text) {
                Ok(cluster) => print!("{}", cluster.render_text()),
                Err(e) => {
                    eprintln!("das_trace: {path}: bad cluster section: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
