//! A small blocking client for `dassd`, used by the test suite and
//! the `das_query` CLI.
//!
//! One [`Client`] wraps one TCP connection and may issue many
//! requests sequentially. Server-side failures surface as typed
//! [`ClientError`] variants; in particular an admission rejection is
//! [`ClientError::Busy`] and a `dasl` compile failure carries the
//! rendered caret diagnostic in [`ClientError::Compile`]. The client
//! never retries on its own — backoff policy belongs to the caller,
//! and [`BusyRetry`] is the packaged, still opt-in version of it.

use super::protocol::{read_frame, write_frame, ErrorKind, HealthInfo, Request, Response};
use arrayudf::{Array2, TileView};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What a request can fail with, from the client's point of view.
#[derive(Debug)]
pub enum ClientError {
    /// The server rejected the connection or request at admission.
    Busy,
    /// The `dasl` program failed to compile; the string is the
    /// server-rendered caret diagnostic.
    Compile(String),
    /// Any other typed server failure.
    Server {
        /// Failure class from the wire.
        kind: ErrorKind,
        /// Server-provided detail.
        message: String,
    },
    /// The server broke the protocol (unexpected frame, bad payload).
    Protocol(String),
    /// Transport-level failure.
    Io(io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Busy => write!(f, "server busy"),
            ClientError::Compile(d) => write!(f, "compile error:\n{d}"),
            ClientError::Server { kind, message } => {
                write!(f, "server error ({}): {message}", kind.name())
            }
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Io(e) => write!(f, "connection error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<super::protocol::ProtoError> for ClientError {
    fn from(e: super::protocol::ProtoError) -> ClientError {
        ClientError::Protocol(e.0)
    }
}

/// One connection to a `dassd` server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn request(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        self.writer.flush()?;
        Ok(())
    }

    fn next_response(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.reader)? {
            None => Err(ClientError::Protocol(
                "server closed the connection mid-request".into(),
            )),
            Some(payload) => Ok(Response::decode(&payload)?),
        }
    }

    /// Translate an `Error` frame into the matching variant.
    fn server_error(kind: ErrorKind, message: String) -> ClientError {
        match kind {
            ErrorKind::Busy => ClientError::Busy,
            ErrorKind::Compile => ClientError::Compile(message),
            _ => ClientError::Server { kind, message },
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Ping)?;
        match self.next_response()? {
            Response::Pong => Ok(()),
            Response::Error { kind, message } => Err(Self::server_error(kind, message)),
            other => Err(ClientError::Protocol(format!(
                "expected Pong, got {other:?}"
            ))),
        }
    }

    /// Read the whole corpus as `channel × sample` `f32`s.
    pub fn read_all(&mut self) -> Result<Array2<f32>, ClientError> {
        self.request(&Request::ReadAll)?;
        self.collect_read()
    }

    /// Read a rectangular window: channels `ch0..ch1`, samples
    /// `t0..t1`.
    pub fn read_region(
        &mut self,
        ch: std::ops::Range<u64>,
        t: std::ops::Range<u64>,
    ) -> Result<Array2<f32>, ClientError> {
        self.request(&Request::ReadRegion {
            ch0: ch.start,
            ch1: ch.end,
            t0: t.start,
            t1: t.end,
        })?;
        self.collect_read()
    }

    /// Assemble a `Start`/`Chunk`*/`End` stream into an array.
    fn collect_read(&mut self) -> Result<Array2<f32>, ClientError> {
        let (rows, cols) = match self.next_response()? {
            Response::Start { rows, cols } => (rows as usize, cols as usize),
            Response::Error { kind, message } => return Err(Self::server_error(kind, message)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected Start, got {other:?}"
                )))
            }
        };
        let mut out = Array2::<f32>::zeroed(rows, cols);
        let mut frames = 0u64;
        loop {
            match self.next_response()? {
                Response::Chunk {
                    row0,
                    col0,
                    rows: tr,
                    cols: tc,
                    data,
                } => {
                    let (tr, tc) = (tr as usize, tc as usize);
                    if data.len() != tr * tc
                        || row0 as usize + tr > rows
                        || col0 as usize + tc > cols
                    {
                        return Err(ClientError::Protocol("chunk outside grid".into()));
                    }
                    out.paste(row0 as usize, col0 as usize, TileView::new(tr, tc, &data));
                    frames += 1;
                }
                Response::End { frames: n } => {
                    if n != frames {
                        return Err(ClientError::Protocol(format!(
                            "End claims {n} frames, saw {frames}"
                        )));
                    }
                    return Ok(out);
                }
                Response::Error { kind, message } => return Err(Self::server_error(kind, message)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected Chunk/End, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Compile and run a `dasl` program server-side; returns the
    /// output dataset as `(dims, flat f64 samples)` — the same shape
    /// `AnalysisOutput::to_dataset` produces locally.
    pub fn eval(&mut self, src: &str) -> Result<(Vec<u64>, Vec<f64>), ClientError> {
        self.request(&Request::Eval { src: src.into() })?;
        let dims = match self.next_response()? {
            Response::EvalStart { dims } => dims,
            Response::Error { kind, message } => return Err(Self::server_error(kind, message)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected EvalStart, got {other:?}"
                )))
            }
        };
        let total: u64 = dims.iter().product();
        let mut flat = vec![0.0f64; total as usize];
        let mut frames = 0u64;
        loop {
            match self.next_response()? {
                Response::EvalChunk { offset, data } => {
                    let off = offset as usize;
                    if off + data.len() > flat.len() {
                        return Err(ClientError::Protocol("eval chunk outside dataset".into()));
                    }
                    flat[off..off + data.len()].copy_from_slice(&data);
                    frames += 1;
                }
                Response::End { frames: n } => {
                    if n != frames {
                        return Err(ClientError::Protocol(format!(
                            "End claims {n} frames, saw {frames}"
                        )));
                    }
                    return Ok((dims, flat));
                }
                Response::Error { kind, message } => return Err(Self::server_error(kind, message)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected EvalChunk/End, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Fetch the server's metrics snapshot as JSON.
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        self.request(&Request::Metrics)?;
        match self.next_response()? {
            Response::MetricsJson { json } => Ok(json),
            Response::Error { kind, message } => Err(Self::server_error(kind, message)),
            other => Err(ClientError::Protocol(format!(
                "expected MetricsJson, got {other:?}"
            ))),
        }
    }

    /// Fetch the daemon's liveness/occupancy summary.
    pub fn health(&mut self) -> Result<HealthInfo, ClientError> {
        self.request(&Request::Health)?;
        match self.next_response()? {
            Response::Health { info } => Ok(info),
            Response::Error { kind, message } => Err(Self::server_error(kind, message)),
            other => Err(ClientError::Protocol(format!(
                "expected Health, got {other:?}"
            ))),
        }
    }

    /// Fetch the windowed rate series (`obs::series` JSON export).
    pub fn metrics_series_json(&mut self) -> Result<String, ClientError> {
        self.request(&Request::MetricsSeries)?;
        match self.next_response()? {
            Response::SeriesJson { json } => Ok(json),
            Response::Error { kind, message } => Err(Self::server_error(kind, message)),
            other => Err(ClientError::Protocol(format!(
                "expected SeriesJson, got {other:?}"
            ))),
        }
    }

    /// Ask the server to shut down; returns once acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown)?;
        match self.next_response()? {
            Response::ShuttingDown => Ok(()),
            Response::Error { kind, message } => Err(Self::server_error(kind, message)),
            other => Err(ClientError::Protocol(format!(
                "expected ShuttingDown, got {other:?}"
            ))),
        }
    }
}

/// Opt-in jittered backoff around [`ClientError::Busy`] rejections.
///
/// The server sheds load by rejecting at *admission* and closing the
/// connection, so a retry is a whole new connection: the closure owns
/// connect + request and receives the 0-based attempt number. Only
/// `Busy` retries — every other failure propagates immediately, and so
/// does the `Busy` from the final attempt.
///
/// Waits double per attempt (shift clamped) with a deterministic
/// jitter factor in `[0.75, 1.25)` drawn from an FNV hash of
/// `(key, attempt)`: replays are byte-identical for the same key, yet
/// parallel callers with distinct keys spread out instead of
/// re-stampeding the admission queue in lockstep.
///
/// ```no_run
/// use dassa::dassd::{BusyRetry, Client};
/// let policy = BusyRetry::new(5);
/// let digest = policy.run("probe", |_attempt| {
///     let mut client = Client::connect("127.0.0.1:3557")?;
///     client.read_all()
/// })?;
/// # Ok::<(), dassa::dassd::ClientError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BusyRetry {
    /// Total attempts, including the first (≥ 1).
    pub attempts: u32,
    /// Wait before the first retry; doubles per attempt.
    pub base: Duration,
}

impl Default for BusyRetry {
    /// Four attempts from 25 ms: worst case ~½ s of patience.
    fn default() -> BusyRetry {
        BusyRetry {
            attempts: 4,
            base: Duration::from_millis(25),
        }
    }
}

impl BusyRetry {
    /// A policy with `attempts` total tries and the default base wait.
    pub fn new(attempts: u32) -> BusyRetry {
        BusyRetry {
            attempts,
            ..BusyRetry::default()
        }
    }

    /// Run `op` until it returns anything other than `Busy`, or the
    /// attempt budget is spent.
    pub fn run<T>(
        &self,
        key: &str,
        mut op: impl FnMut(u32) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let attempts = self.attempts.max(1);
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Err(ClientError::Busy) if attempt + 1 < attempts => {
                    std::thread::sleep(self.wait(key, attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// The wait after attempt `attempt` (0-based) failed busy.
    fn wait(&self, key: &str, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(10));
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in key.bytes().chain(attempt.to_le_bytes()) {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        let jitter_ppm = 750_000 + h % 500_000; // [0.75, 1.25) in millionths
        let nanos = exp.as_nanos().saturating_mul(jitter_ppm as u128) / 1_000_000;
        Duration::from_nanos(nanos.min(u64::MAX as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(attempts: u32) -> BusyRetry {
        BusyRetry {
            attempts,
            base: Duration::from_micros(10),
        }
    }

    #[test]
    fn busy_then_success_retries_through() {
        let mut calls = 0u32;
        let out = tiny(4).run("k", |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(ClientError::Busy)
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(calls, 3);
    }

    #[test]
    fn persistent_busy_spends_the_budget_then_surfaces() {
        let mut calls = 0u32;
        let out = tiny(3).run("k", |_| {
            calls += 1;
            Err::<(), _>(ClientError::Busy)
        });
        assert!(matches!(out, Err(ClientError::Busy)));
        assert_eq!(calls, 3, "exactly the attempt budget");
    }

    #[test]
    fn non_busy_errors_do_not_retry() {
        let mut calls = 0u32;
        let out = tiny(5).run("k", |_| {
            calls += 1;
            Err::<(), _>(ClientError::Protocol("boom".into()))
        });
        assert!(matches!(out, Err(ClientError::Protocol(_))));
        assert_eq!(calls, 1);
    }

    #[test]
    fn waits_are_deterministic_and_grow() {
        let p = BusyRetry::default();
        let w0 = p.wait("key", 0);
        let w1 = p.wait("key", 1);
        assert_eq!(w0, p.wait("key", 0));
        assert!(w1 > w0, "{w1:?} should exceed {w0:?}");
        assert_ne!(p.wait("other", 0), w0, "keys decorrelate");
    }
}
