//! The `dassd` wire protocol: length-prefixed frames over a byte
//! stream.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by that many payload bytes. The first payload byte is a
//! tag selecting the message variant; the rest is a fixed field layout
//! per variant (little-endian integers, length-prefixed strings,
//! packed `f32`/`f64` sample runs). Frames larger than
//! [`MAX_FRAME_BYTES`] are rejected before allocation, so a corrupt or
//! hostile length prefix cannot balloon memory.
//!
//! Bulk data never travels as one frame. The server streams a read as
//! `Start` → many `Chunk` frames (each at most [`MAX_DATA_ELEMS`]
//! samples) → `End`, and an eval as `EvalStart` → `EvalChunk`* →
//! `End`, so a multi-GB response is pipelined through a bounded buffer
//! rather than materialised.

use std::io::{self, Read, Write};

/// Hard cap on a single frame's payload (64 MiB).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Maximum samples per `Chunk`/`EvalChunk` frame (1 Mi elements, so a
/// data frame stays ≤ 8 MiB).
pub const MAX_DATA_ELEMS: usize = 1 << 20;

/// A decode failure: the frame was well-delimited but its payload did
/// not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

/// Typed failure classes a server can return. The client maps these
/// onto [`super::ClientError`] variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The server is at capacity; the request was rejected, not queued.
    Busy,
    /// The `dasl` source failed to compile; the message carries the
    /// rendered caret diagnostic.
    Compile,
    /// The request itself is invalid (bad selection, unknown tag...).
    BadRequest,
    /// Stored data failed integrity verification (checksum mismatch,
    /// torn file).
    Corrupt,
    /// An I/O error reading the corpus.
    Io,
    /// Anything else; a server-side bug or comm failure.
    Internal,
}

impl ErrorKind {
    fn to_u8(self) -> u8 {
        match self {
            ErrorKind::Busy => 0,
            ErrorKind::Compile => 1,
            ErrorKind::BadRequest => 2,
            ErrorKind::Corrupt => 3,
            ErrorKind::Io => 4,
            ErrorKind::Internal => 5,
        }
    }

    fn from_u8(b: u8) -> Result<ErrorKind, ProtoError> {
        Ok(match b {
            0 => ErrorKind::Busy,
            1 => ErrorKind::Compile,
            2 => ErrorKind::BadRequest,
            3 => ErrorKind::Corrupt,
            4 => ErrorKind::Io,
            5 => ErrorKind::Internal,
            other => return Err(ProtoError(format!("unknown error kind {other}"))),
        })
    }

    /// Stable lowercase name (used in metrics and CLI output).
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Busy => "busy",
            ErrorKind::Compile => "compile",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Corrupt => "corrupt",
            ErrorKind::Io => "io",
            ErrorKind::Internal => "internal",
        }
    }
}

/// Liveness/occupancy summary answered to [`Request::Health`]. Both
/// daemons speak it: `dassd` fills every field; the `das_ingest` probe
/// reports zero cache capacity (it has no chunk cache).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthInfo {
    /// Reporting daemon, `dassd` or `das_ingest`.
    pub component: String,
    /// Workspace version string.
    pub version: String,
    /// Milliseconds since the daemon started serving.
    pub uptime_ms: u64,
    /// Configured worker threads.
    pub workers: u64,
    /// Workers currently inside a request.
    pub workers_busy: u64,
    /// Connections waiting in the accept queue.
    pub queue_len: u64,
    /// Accept queue capacity.
    pub queue_cap: u64,
    /// Bytes resident in the chunk cache (0 for ingest).
    pub cache_resident_bytes: u64,
    /// Chunk cache capacity (0 for ingest).
    pub cache_capacity_bytes: u64,
    /// Total requests dispatched since start.
    pub requests_total: u64,
    /// Most recent error message served, empty if none yet.
    pub last_error: String,
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Stream the whole corpus as `channel × sample` `f32`s.
    ReadAll,
    /// Stream a rectangular window: channels `ch0..ch1`, samples
    /// `t0..t1` (half-open).
    ReadRegion {
        /// First channel (inclusive).
        ch0: u64,
        /// One past the last channel.
        ch1: u64,
        /// First sample (inclusive).
        t0: u64,
        /// One past the last sample.
        t1: u64,
    },
    /// Compile and run a `dasl` program against the server's corpus.
    Eval {
        /// `dasl` source text.
        src: String,
    },
    /// Return the server's metrics registry as a JSON snapshot.
    Metrics,
    /// Ask the server to stop accepting and exit its serve loop.
    Shutdown,
    /// Liveness/occupancy probe; answered with [`Response::Health`].
    Health,
    /// Return the windowed rate series ([`obs::series`] JSON export);
    /// answered with [`Response::SeriesJson`].
    MetricsSeries,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Head of a read stream: the full response grid shape.
    Start {
        /// Total channels in the response.
        rows: u64,
        /// Total samples in the response.
        cols: u64,
    },
    /// One tile of a read stream, pasted at `(row0, col0)` of the grid
    /// announced by `Start`. `data.len() == rows * cols`, row-major.
    Chunk {
        /// Destination row of the tile's first row.
        row0: u64,
        /// Destination column of the tile's first column.
        col0: u64,
        /// Tile height.
        rows: u64,
        /// Tile width.
        cols: u64,
        /// Row-major samples.
        data: Vec<f32>,
    },
    /// Head of an eval stream: the output dataset's dimensions.
    EvalStart {
        /// Dataset dims, as written by `AnalysisOutput::to_dataset`.
        dims: Vec<u64>,
    },
    /// One run of an eval stream's flat `f64` payload.
    EvalChunk {
        /// Flat element offset of `data[0]`.
        offset: u64,
        /// Flat samples.
        data: Vec<f64>,
    },
    /// Tail of a read/eval stream.
    End {
        /// Number of data frames that preceded this.
        frames: u64,
    },
    /// Answer to [`Request::Metrics`].
    MetricsJson {
        /// `obs::Snapshot` JSON.
        json: String,
    },
    /// Answer to [`Request::Shutdown`]; the connection closes after.
    ShuttingDown,
    /// Answer to [`Request::Health`].
    Health {
        /// Current liveness/occupancy summary.
        info: HealthInfo,
    },
    /// Answer to [`Request::MetricsSeries`].
    SeriesJson {
        /// `obs::series::SeriesRing` windowed-rates JSON.
        json: String,
    },
    /// Typed failure. May replace any response, including mid-stream
    /// (after which the stream is abandoned but the connection stays
    /// usable for the next request).
    Error {
        /// Failure class.
        kind: ErrorKind,
        /// Human-readable detail (rendered caret diagnostic for
        /// [`ErrorKind::Compile`]).
        message: String,
    },
}

// ---------------------------------------------------------------- frame I/O

/// Write one frame: `u32` LE length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// True for the error kinds a `set_read_timeout` expiry produces.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read one frame. Returns `Ok(None)` on clean EOF at a frame
/// boundary; mid-frame EOF and oversized lengths are errors.
///
/// With a read timeout set on the underlying stream, an expiry while
/// *idle* (no header byte seen yet) surfaces as a [`is_timeout`]
/// error so a server loop can poll its shutdown flag and resume;
/// expiries *inside* a frame keep waiting, so a slow writer cannot
/// desynchronise the framing.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) && got > 0 => continue,
            Err(e) => return Err(e),
        }
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds cap of {MAX_FRAME_BYTES}"),
        ));
    }
    let mut payload = vec![0u8; n];
    let mut filled = 0;
    while filled < n {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame payload",
                ))
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted || is_timeout(&e) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

// ------------------------------------------------------------- enc / dec

struct Enc(Vec<u8>);

impl Enc {
    fn new(tag: u8) -> Enc {
        Enc(vec![tag])
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn f32s(&mut self, v: &[f32]) {
        self.u64(v.len() as u64);
        for x in v {
            self.0.extend_from_slice(&x.to_le_bytes());
        }
    }
    fn f64s(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for x in v {
            self.0.extend_from_slice(&x.to_le_bytes());
        }
    }
    fn u64s(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for x in v {
            self.u64(*x);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError(format!(
                "payload truncated: wanted {n} bytes at offset {}",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.bytes(1)?[0])
    }
    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn len(&mut self) -> Result<usize, ProtoError> {
        let n = self.u64()? as usize;
        if n > MAX_FRAME_BYTES {
            return Err(ProtoError(format!("length {n} exceeds frame cap")));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, ProtoError> {
        let n = self.len()?;
        String::from_utf8(self.bytes(n)?.to_vec())
            .map_err(|_| ProtoError("string is not UTF-8".into()))
    }
    fn f32s(&mut self) -> Result<Vec<f32>, ProtoError> {
        let n = self.len()?;
        let raw = self.bytes(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
    fn f64s(&mut self) -> Result<Vec<f64>, ProtoError> {
        let n = self.len()?;
        let raw = self.bytes(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
    fn u64s(&mut self) -> Result<Vec<u64>, ProtoError> {
        let n = self.len()?;
        (0..n).map(|_| self.u64()).collect()
    }
    fn done(&self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(ProtoError(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

const REQ_PING: u8 = 0x01;
const REQ_READ_ALL: u8 = 0x02;
const REQ_READ_REGION: u8 = 0x03;
const REQ_EVAL: u8 = 0x04;
const REQ_METRICS: u8 = 0x05;
const REQ_SHUTDOWN: u8 = 0x06;
const REQ_HEALTH: u8 = 0x07;
const REQ_METRICS_SERIES: u8 = 0x08;

const RSP_PONG: u8 = 0x81;
const RSP_START: u8 = 0x82;
const RSP_CHUNK: u8 = 0x83;
const RSP_EVAL_START: u8 = 0x84;
const RSP_EVAL_CHUNK: u8 = 0x85;
const RSP_END: u8 = 0x86;
const RSP_METRICS_JSON: u8 = 0x87;
const RSP_SHUTTING_DOWN: u8 = 0x88;
const RSP_HEALTH: u8 = 0x89;
const RSP_SERIES_JSON: u8 = 0x8A;
const RSP_ERROR: u8 = 0x90;

impl Request {
    /// Serialize into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Ping => Enc::new(REQ_PING).0,
            Request::ReadAll => Enc::new(REQ_READ_ALL).0,
            Request::ReadRegion { ch0, ch1, t0, t1 } => {
                let mut e = Enc::new(REQ_READ_REGION);
                e.u64(*ch0);
                e.u64(*ch1);
                e.u64(*t0);
                e.u64(*t1);
                e.0
            }
            Request::Eval { src } => {
                let mut e = Enc::new(REQ_EVAL);
                e.str(src);
                e.0
            }
            Request::Metrics => Enc::new(REQ_METRICS).0,
            Request::Shutdown => Enc::new(REQ_SHUTDOWN).0,
            Request::Health => Enc::new(REQ_HEALTH).0,
            Request::MetricsSeries => Enc::new(REQ_METRICS_SERIES).0,
        }
    }

    /// Parse a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut d = Dec::new(payload);
        let req = match d.u8()? {
            REQ_PING => Request::Ping,
            REQ_READ_ALL => Request::ReadAll,
            REQ_READ_REGION => Request::ReadRegion {
                ch0: d.u64()?,
                ch1: d.u64()?,
                t0: d.u64()?,
                t1: d.u64()?,
            },
            REQ_EVAL => Request::Eval { src: d.str()? },
            REQ_METRICS => Request::Metrics,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_HEALTH => Request::Health,
            REQ_METRICS_SERIES => Request::MetricsSeries,
            tag => return Err(ProtoError(format!("unknown request tag {tag:#x}"))),
        };
        d.done()?;
        Ok(req)
    }
}

impl Response {
    /// Serialize into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Pong => Enc::new(RSP_PONG).0,
            Response::Start { rows, cols } => {
                let mut e = Enc::new(RSP_START);
                e.u64(*rows);
                e.u64(*cols);
                e.0
            }
            Response::Chunk {
                row0,
                col0,
                rows,
                cols,
                data,
            } => {
                let mut e = Enc::new(RSP_CHUNK);
                e.u64(*row0);
                e.u64(*col0);
                e.u64(*rows);
                e.u64(*cols);
                e.f32s(data);
                e.0
            }
            Response::EvalStart { dims } => {
                let mut e = Enc::new(RSP_EVAL_START);
                e.u64s(dims);
                e.0
            }
            Response::EvalChunk { offset, data } => {
                let mut e = Enc::new(RSP_EVAL_CHUNK);
                e.u64(*offset);
                e.f64s(data);
                e.0
            }
            Response::End { frames } => {
                let mut e = Enc::new(RSP_END);
                e.u64(*frames);
                e.0
            }
            Response::MetricsJson { json } => {
                let mut e = Enc::new(RSP_METRICS_JSON);
                e.str(json);
                e.0
            }
            Response::ShuttingDown => Enc::new(RSP_SHUTTING_DOWN).0,
            Response::Health { info } => {
                let mut e = Enc::new(RSP_HEALTH);
                e.str(&info.component);
                e.str(&info.version);
                e.u64(info.uptime_ms);
                e.u64(info.workers);
                e.u64(info.workers_busy);
                e.u64(info.queue_len);
                e.u64(info.queue_cap);
                e.u64(info.cache_resident_bytes);
                e.u64(info.cache_capacity_bytes);
                e.u64(info.requests_total);
                e.str(&info.last_error);
                e.0
            }
            Response::SeriesJson { json } => {
                let mut e = Enc::new(RSP_SERIES_JSON);
                e.str(json);
                e.0
            }
            Response::Error { kind, message } => {
                let mut e = Enc::new(RSP_ERROR);
                e.u8(kind.to_u8());
                e.str(message);
                e.0
            }
        }
    }

    /// Parse a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut d = Dec::new(payload);
        let rsp = match d.u8()? {
            RSP_PONG => Response::Pong,
            RSP_START => Response::Start {
                rows: d.u64()?,
                cols: d.u64()?,
            },
            RSP_CHUNK => Response::Chunk {
                row0: d.u64()?,
                col0: d.u64()?,
                rows: d.u64()?,
                cols: d.u64()?,
                data: d.f32s()?,
            },
            RSP_EVAL_START => Response::EvalStart { dims: d.u64s()? },
            RSP_EVAL_CHUNK => Response::EvalChunk {
                offset: d.u64()?,
                data: d.f64s()?,
            },
            RSP_END => Response::End { frames: d.u64()? },
            RSP_METRICS_JSON => Response::MetricsJson { json: d.str()? },
            RSP_SHUTTING_DOWN => Response::ShuttingDown,
            RSP_HEALTH => Response::Health {
                info: HealthInfo {
                    component: d.str()?,
                    version: d.str()?,
                    uptime_ms: d.u64()?,
                    workers: d.u64()?,
                    workers_busy: d.u64()?,
                    queue_len: d.u64()?,
                    queue_cap: d.u64()?,
                    cache_resident_bytes: d.u64()?,
                    cache_capacity_bytes: d.u64()?,
                    requests_total: d.u64()?,
                    last_error: d.str()?,
                },
            },
            RSP_SERIES_JSON => Response::SeriesJson { json: d.str()? },
            RSP_ERROR => Response::Error {
                kind: ErrorKind::from_u8(d.u8()?)?,
                message: d.str()?,
            },
            tag => return Err(ProtoError(format!("unknown response tag {tag:#x}"))),
        };
        d.done()?;
        Ok(rsp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_req(r: Request) {
        let back = Request::decode(&r.encode()).unwrap();
        assert_eq!(back, r);
    }

    fn rt_rsp(r: Response) {
        let back = Response::decode(&r.encode()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn requests_round_trip() {
        rt_req(Request::Ping);
        rt_req(Request::ReadAll);
        rt_req(Request::ReadRegion {
            ch0: 2,
            ch1: 17,
            t0: 0,
            t1: u64::MAX,
        });
        rt_req(Request::Eval {
            src: "load(\"corpus\") | detrend".into(),
        });
        rt_req(Request::Metrics);
        rt_req(Request::Shutdown);
        rt_req(Request::Health);
        rt_req(Request::MetricsSeries);
    }

    #[test]
    fn health_and_series_round_trip() {
        rt_rsp(Response::Health {
            info: HealthInfo {
                component: "dassd".into(),
                version: "0.1.0".into(),
                uptime_ms: 123_456,
                workers: 4,
                workers_busy: 2,
                queue_len: 1,
                queue_cap: 8,
                cache_resident_bytes: 64 << 20,
                cache_capacity_bytes: 256 << 20,
                requests_total: 9_999,
                last_error: "busy: server at capacity".into(),
            },
        });
        rt_rsp(Response::Health {
            info: HealthInfo::default(),
        });
        rt_rsp(Response::SeriesJson {
            json: "{\"points\":0,\"capacity\":2,\"evicted\":0,\"windows\":[]}".into(),
        });
    }

    #[test]
    fn responses_round_trip() {
        rt_rsp(Response::Pong);
        rt_rsp(Response::Start {
            rows: 32,
            cols: 9000,
        });
        rt_rsp(Response::Chunk {
            row0: 4,
            col0: 3000,
            rows: 2,
            cols: 3,
            data: vec![1.0, -2.5, f32::MIN_POSITIVE, 0.0, 3.25, -0.0],
        });
        rt_rsp(Response::EvalStart {
            dims: vec![32, 9000],
        });
        rt_rsp(Response::EvalChunk {
            offset: 7,
            data: vec![0.125, -9.75, 1e300],
        });
        rt_rsp(Response::End { frames: 12 });
        rt_rsp(Response::MetricsJson {
            json: "{\"counters\":{}}".into(),
        });
        rt_rsp(Response::ShuttingDown);
        rt_rsp(Response::Error {
            kind: ErrorKind::Busy,
            message: "server at capacity".into(),
        });
    }

    #[test]
    fn frame_io_round_trips_and_detects_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[1, 2, 3]).unwrap();
        write_frame(&mut buf, &[]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(vec![1, 2, 3]));
        assert_eq!(read_frame(&mut r).unwrap(), Some(vec![]));
        assert_eq!(read_frame(&mut r).unwrap(), None);

        // Mid-header EOF is an error, not a clean end.
        let mut torn = &buf[..2];
        assert!(read_frame(&mut torn).is_err());

        // Oversized length prefix is rejected before allocation.
        let huge = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
    }

    #[test]
    fn bad_payloads_are_typed_errors() {
        assert!(Request::decode(&[0xEE]).is_err());
        assert!(Request::decode(&[]).is_err());
        // Trailing garbage after a valid body is rejected.
        let mut p = Request::Ping.encode();
        p.push(0);
        assert!(Request::decode(&p).is_err());
        // String length pointing past the payload is rejected.
        let mut e = Vec::new();
        e.push(super::REQ_EVAL);
        e.extend_from_slice(&1000u64.to_le_bytes());
        e.extend_from_slice(b"short");
        assert!(Request::decode(&e).is_err());
    }
}
