//! The `dassd` server: accept loop, bounded admission queue, worker
//! pool, and per-request dispatch.
//!
//! ```text
//!             ┌──────────── acceptor thread ────────────┐
//!  clients ──▶ accept() ─▶ try_push ──▶ [bounded queue] ─▶ workers (N)
//!                             │                              │
//!                             ▼ full                         ▼
//!                     Error{Busy} + close            handle_conn loop:
//!                                                    frame → dispatch →
//!                                                    stream response
//! ```
//!
//! Admission control is two-stage: at most `workers` connections are
//! being served and at most `queue_depth` more are waiting. Anything
//! beyond that is answered immediately with a typed `Busy` error and
//! closed — the server never queues unboundedly, so a client burst
//! degrades into fast rejections instead of collapse.
//!
//! Each worker serves one connection at a time but many requests per
//! connection (frames are read in a loop until EOF). A request that
//! fails — bad frame, compile error, corrupt chunk — produces an
//! `Error` response and the connection keeps serving; only transport
//! errors drop it.

use super::cache::ChunkCache;
use super::protocol::{
    read_frame, write_frame, ErrorKind, HealthInfo, Request, Response, MAX_DATA_ELEMS,
};
use crate::dasa::{self, BindProgram, Haee};
use crate::dass::{FileCatalog, IoPlan, Vca, DATASET_PATH};
use crate::{DassaError, Result};
use arrayudf::TileView;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Metric names recorded by the server (in addition to the
/// `cache.*` family from [`ChunkCache`]).
pub mod metric_names {
    /// Per-endpoint request counts: `dassd.<endpoint>.requests` for
    /// `read`, `eval`, `metrics`, `ping`, `shutdown`.
    pub const REQUESTS_PREFIX: &str = "dassd.";
    /// Connections rejected at admission.
    pub const BUSY: &str = "dassd.busy";
    /// Requests answered with a typed error.
    pub const ERRORS: &str = "dassd.errors";
    /// Payload bytes streamed to clients.
    pub const BYTES_SERVED: &str = "dassd.bytes_served";
    /// Read-request latency histogram (ns).
    pub const READ_NS: &str = "dassd.read.ns";
    /// Eval-request latency histogram (ns).
    pub const EVAL_NS: &str = "dassd.eval.ns";
    /// Gauge: workers currently inside a request.
    pub const WORKERS_BUSY: &str = "dassd.workers_busy";
    /// Gauge: connections waiting in the accept queue.
    pub const QUEUE_DEPTH: &str = "dassd.queue_depth";
    /// Gauge: milliseconds since the server started (refreshed whenever
    /// `Metrics`/`Health` is served).
    pub const UPTIME_MS: &str = "dassd.uptime_ms";
}

/// Server tunables. `Default` suits tests: an OS-assigned port, a
/// small pool, a 64 MiB cache.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 asks the OS for a free port.
    pub addr: String,
    /// Worker threads (concurrent connections being served).
    pub workers: usize,
    /// Accepted connections that may wait beyond the in-service set.
    pub queue_depth: usize,
    /// Chunk-cache capacity in bytes.
    pub cache_bytes: u64,
    /// Haee threads per eval request.
    pub eval_threads: usize,
    /// Optional fault plan installed thread-locally in every worker
    /// (chaos tests; `None` in production).
    pub fault_plan: Option<Arc<faultline::FaultPlan>>,
    /// Cadence of the background metrics sampler feeding
    /// `MetricsSeries` windows.
    pub sample_interval: Duration,
    /// Samples retained by the series ring (windows = samples - 1).
    pub series_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 8,
            cache_bytes: 64 << 20,
            eval_threads: 1,
            fault_plan: None,
            sample_interval: Duration::from_millis(500),
            series_capacity: 120,
        }
    }
}

/// Bounded MPMC connection queue: `Mutex<VecDeque>` + `Condvar` (the
/// vendored crossbeam-channel is unbounded-only, and admission control
/// is the point here).
struct ConnQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    cap: usize,
}

struct QueueInner {
    deque: std::collections::VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            inner: Mutex::new(QueueInner {
                deque: std::collections::VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Non-blocking push; hands the stream back when full or closed.
    fn try_push(&self, stream: TcpStream) -> std::result::Result<(), TcpStream> {
        let mut q = self.inner.lock().unwrap();
        if q.closed || q.deque.len() >= self.cap {
            return Err(stream);
        }
        q.deque.push_back(stream);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.inner.lock().unwrap();
        loop {
            if let Some(s) = q.deque.pop_front() {
                return Some(s);
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).unwrap();
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

struct Metrics {
    req_read: obs::Counter,
    req_eval: obs::Counter,
    req_metrics: obs::Counter,
    req_ping: obs::Counter,
    req_shutdown: obs::Counter,
    req_health: obs::Counter,
    req_series: obs::Counter,
    busy: obs::Counter,
    errors: obs::Counter,
    bytes_served: obs::Counter,
    read_ns: obs::Histogram,
    eval_ns: obs::Histogram,
    workers_busy: obs::Gauge,
    queue_depth: obs::Gauge,
    uptime_ms: obs::Gauge,
}

impl Metrics {
    fn new(reg: &obs::Registry) -> Metrics {
        let req =
            |ep: &str| reg.counter(&format!("{}{ep}.requests", metric_names::REQUESTS_PREFIX));
        Metrics {
            req_read: req("read"),
            req_eval: req("eval"),
            req_metrics: req("metrics"),
            req_ping: req("ping"),
            req_shutdown: req("shutdown"),
            req_health: req("health"),
            req_series: req("series"),
            busy: reg.counter(metric_names::BUSY),
            errors: reg.counter(metric_names::ERRORS),
            bytes_served: reg.counter(metric_names::BYTES_SERVED),
            read_ns: reg.histogram(metric_names::READ_NS),
            eval_ns: reg.histogram(metric_names::EVAL_NS),
            workers_busy: reg.gauge(metric_names::WORKERS_BUSY),
            queue_depth: reg.gauge(metric_names::QUEUE_DEPTH),
            uptime_ms: reg.gauge(metric_names::UPTIME_MS),
        }
    }

    fn requests_total(&self) -> u64 {
        self.req_read.get()
            + self.req_eval.get()
            + self.req_metrics.get()
            + self.req_ping.get()
            + self.req_shutdown.get()
            + self.req_health.get()
            + self.req_series.get()
    }
}

struct State {
    vca: Vca,
    cache: ChunkCache,
    registry: Arc<obs::Registry>,
    metrics: Metrics,
    eval_threads: usize,
    shutdown: AtomicBool,
    queue: ConnQueue,
    /// Our own bound address, used to poke the blocking `accept()`
    /// when a remote `Shutdown` request arrives.
    poke_addr: SocketAddr,
    started: Instant,
    workers_total: usize,
    queue_cap: usize,
    cache_capacity: u64,
    /// Windowed rate sampler answering `MetricsSeries`.
    sampler: obs::Sampler,
    /// Most recent typed error served, for `Health`.
    last_error: Mutex<String>,
}

impl State {
    /// Refresh the `dassd.uptime_ms` gauge to the current uptime. A
    /// gauge set is emulated as a delta against the last published
    /// value so ancestor aggregation (child levels sum into parents)
    /// stays correct.
    fn refresh_uptime(&self) {
        let now = u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        let prev = self.metrics.uptime_ms.get();
        if now >= prev {
            self.metrics.uptime_ms.add(now - prev);
        }
    }

    fn note_error(&self, kind: ErrorKind, message: &str) {
        self.metrics.errors.inc();
        let mut last = match self.last_error.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *last = format!("{}: {message}", kind.name());
    }

    fn health(&self) -> HealthInfo {
        self.refresh_uptime();
        HealthInfo {
            component: "dassd".into(),
            version: env!("CARGO_PKG_VERSION").into(),
            uptime_ms: self.metrics.uptime_ms.get(),
            workers: self.workers_total as u64,
            workers_busy: self.metrics.workers_busy.get(),
            queue_len: self.metrics.queue_depth.get(),
            queue_cap: self.queue_cap as u64,
            cache_resident_bytes: self.cache.resident_bytes(),
            cache_capacity_bytes: self.cache_capacity,
            requests_total: self.metrics.requests_total(),
            last_error: match self.last_error.lock() {
                Ok(g) => g.clone(),
                Err(p) => p.into_inner().clone(),
            },
        }
    }
}

/// A running `dassd` instance. Dropping without [`Server::stop`] or
/// [`Server::wait`] detaches the threads (tests should call `stop`).
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Scan `dir` into a [`Vca`] and start serving it per `cfg`.
    /// Returns once the listener is bound and the pool is running.
    pub fn start(dir: &Path, cfg: ServerConfig) -> Result<Server> {
        let catalog = FileCatalog::scan(dir)?;
        let vca = Vca::from_entries(catalog.entries())?;

        let registry = Arc::new(obs::Registry::with_parent(Arc::clone(obs::global())));
        let cache = ChunkCache::new(cfg.cache_bytes, DATASET_PATH, &registry);
        let metrics = Metrics::new(&registry);

        let listener = TcpListener::bind(&cfg.addr).map_err(DassaError::Io)?;
        let addr = listener.local_addr().map_err(DassaError::Io)?;

        // The rate sampler watches the *global* registry (like the
        // ingest probe does): child increments aggregate up into it, so
        // the series carries the server's own `dassd.*`/`cache.*` rates
        // plus the storage-layer `dasf.*` traffic they cause — e.g. the
        // `dasf.codec.bytes_{raw,stored}` deltas behind the `das_top`
        // compression-ratio column.
        let sampler = obs::Sampler::start(
            Arc::clone(obs::global()),
            cfg.sample_interval,
            cfg.series_capacity,
        );
        let state = Arc::new(State {
            vca,
            cache,
            registry,
            metrics,
            eval_threads: cfg.eval_threads.max(1),
            shutdown: AtomicBool::new(false),
            queue: ConnQueue::new(cfg.workers + cfg.queue_depth),
            poke_addr: addr,
            started: Instant::now(),
            workers_total: cfg.workers.max(1),
            queue_cap: cfg.workers + cfg.queue_depth,
            cache_capacity: cfg.cache_bytes,
            sampler,
            last_error: Mutex::new(String::new()),
        });

        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                let plan = cfg.fault_plan.clone();
                std::thread::Builder::new()
                    .name(format!("dassd-worker-{i}"))
                    .spawn(move || match plan {
                        Some(p) => faultline::with_plan(p, || worker_loop(&state)),
                        None => worker_loop(&state),
                    })
                    .expect("spawn dassd worker")
            })
            .collect();

        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("dassd-accept".into())
                .spawn(move || accept_loop(&state, listener))
                .expect("spawn dassd acceptor")
        };

        Ok(Server {
            addr,
            state,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (a child of [`obs::global`]).
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.state.registry
    }

    /// Current chunk-cache resident bytes (test hook).
    pub fn cache_resident_bytes(&self) -> u64 {
        self.state.cache.resident_bytes()
    }

    /// Block until a client sends [`Request::Shutdown`], then join the
    /// pool and return the final metrics snapshot.
    pub fn wait(mut self) -> obs::Snapshot {
        self.join_threads();
        self.state.registry.snapshot()
    }

    /// Initiate shutdown locally, join the pool, and return the final
    /// metrics snapshot.
    pub fn stop(mut self) -> obs::Snapshot {
        initiate_shutdown(&self.state, self.addr);
        self.join_threads();
        self.state.registry.snapshot()
    }

    fn join_threads(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Flip the flag and poke the blocking `accept()` with a throwaway
/// connection so the acceptor observes it.
fn initiate_shutdown(state: &State, addr: SocketAddr) {
    if state.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    let _ = TcpStream::connect(addr);
}

fn accept_loop(state: &State, listener: TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Err(stream) = state.queue.try_push(stream) {
                    state.metrics.busy.inc();
                    obs::log_debug!("dassd", "rejecting connection: queue full");
                    reject_busy(stream);
                } else {
                    state.metrics.queue_depth.add(1);
                }
            }
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure; keep listening.
            }
        }
    }
    state.queue.close();
}

/// Answer an over-capacity connection with `Busy` and close it. Bounded
/// by a short write timeout so a stalled client cannot wedge the
/// acceptor.
fn reject_busy(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(1)));
    let mut w = BufWriter::new(stream);
    let rsp = Response::Error {
        kind: ErrorKind::Busy,
        message: "server at capacity; retry later".into(),
    };
    let _ = write_frame(&mut w, &rsp.encode());
    let _ = w.flush();
}

fn worker_loop(state: &State) {
    while let Some(stream) = state.queue.pop() {
        state.metrics.queue_depth.sub(1);
        state.metrics.workers_busy.add(1);
        if let Err(e) = handle_conn(state, stream) {
            obs::log_debug!("dassd", "connection dropped: {e}");
        }
        state.metrics.workers_busy.sub(1);
    }
}

/// Serve one connection: frames in, responses out, until EOF, a
/// transport error, or shutdown observed while idle (the read timeout
/// bounds how long an idle connection can outlive a shutdown request).
fn handle_conn(state: &State, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(200)))
        .ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => break,
            Err(e) if super::protocol::is_timeout(&e) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        let req = match Request::decode(&payload) {
            Ok(req) => req,
            Err(e) => {
                // The framing survived but the payload didn't parse;
                // answer and keep the connection.
                state.note_error(ErrorKind::BadRequest, &e.to_string());
                send(
                    &mut writer,
                    &Response::Error {
                        kind: ErrorKind::BadRequest,
                        message: e.to_string(),
                    },
                )?;
                continue;
            }
        };
        if dispatch(state, &mut writer, req)? {
            break; // Shutdown
        }
    }
    Ok(())
}

fn send(w: &mut impl Write, rsp: &Response) -> io::Result<()> {
    write_frame(w, &rsp.encode())?;
    w.flush()
}

/// Handle one request. `Ok(true)` means the connection (and server)
/// should wind down. `Err` is transport-level only; request-level
/// failures become `Error` responses.
fn dispatch(state: &State, w: &mut impl Write, req: Request) -> io::Result<bool> {
    match req {
        Request::Ping => {
            state.metrics.req_ping.inc();
            send(w, &Response::Pong)?;
        }
        Request::ReadAll => {
            state.metrics.req_read.inc();
            let t = Instant::now();
            let _trace = obs::trace::scope_in(&state.registry, "dassd.read");
            match IoPlan::for_region(
                &state.vca,
                0..state.vca.channels(),
                0..state.vca.total_samples(),
            ) {
                Ok(plan) => serve_read(state, w, &plan)?,
                Err(e) => send_error(state, w, &e)?,
            }
            state.metrics.read_ns.record_duration(t.elapsed());
        }
        Request::ReadRegion { ch0, ch1, t0, t1 } => {
            state.metrics.req_read.inc();
            let t = Instant::now();
            let _trace = obs::trace::scope_in(&state.registry, "dassd.read");
            match IoPlan::for_region(&state.vca, ch0..ch1, t0..t1) {
                Ok(plan) => serve_read(state, w, &plan)?,
                Err(e) => send_error(state, w, &e)?,
            }
            state.metrics.read_ns.record_duration(t.elapsed());
        }
        Request::Eval { src } => {
            state.metrics.req_eval.inc();
            let t = Instant::now();
            let _trace = obs::trace::scope_in(&state.registry, "dassd.eval");
            serve_eval(state, w, &src)?;
            state.metrics.eval_ns.record_duration(t.elapsed());
        }
        Request::Metrics => {
            state.metrics.req_metrics.inc();
            state.refresh_uptime();
            let json = state.registry.snapshot().to_json_tagged(
                &[
                    ("component", "dassd"),
                    ("version", env!("CARGO_PKG_VERSION")),
                ],
                &[(
                    "uptime_ms",
                    u64::try_from(state.started.elapsed().as_millis()).unwrap_or(u64::MAX),
                )],
            );
            send(w, &Response::MetricsJson { json })?;
        }
        Request::Health => {
            state.metrics.req_health.inc();
            send(
                w,
                &Response::Health {
                    info: state.health(),
                },
            )?;
        }
        Request::MetricsSeries => {
            state.metrics.req_series.inc();
            // An out-of-cadence sample first, so the newest window
            // reflects activity right up to this probe.
            state.sampler.sample_now();
            let json = state.sampler.to_json();
            send(w, &Response::SeriesJson { json })?;
        }
        Request::Shutdown => {
            state.metrics.req_shutdown.inc();
            obs::log_info!("dassd", "shutdown requested by client");
            send(w, &Response::ShuttingDown)?;
            initiate_shutdown(state, state.poke_addr);
            return Ok(true);
        }
    }
    Ok(false)
}

/// Stream a read plan: `Start`, one or more `Chunk` frames per op
/// (split so no frame exceeds [`MAX_DATA_ELEMS`] samples), `End`. A
/// failing op aborts the stream with an `Error` frame; the connection
/// survives.
fn serve_read(state: &State, w: &mut impl Write, plan: &IoPlan) -> io::Result<()> {
    send(
        w,
        &Response::Start {
            rows: plan.rows as u64,
            cols: plan.cols as u64,
        },
    )?;
    let mut frames = 0u64;
    for op in &plan.ops {
        let chunk = match state.cache.get_or_read(&op.path) {
            Ok(c) => c,
            Err(e) => return send_error(state, w, &e),
        };
        let data = chunk.hyperslab(op.selection);
        let (rows, cols) = (op.rows, op.cols);
        // Every op's tile lands at response row 0 (member files are
        // channel-complete; a channel window is already folded into
        // the op's selection), column `op.t0`.
        let band_rows = (MAX_DATA_ELEMS / cols.max(1)).max(1);
        let mut r = 0usize;
        while r < rows {
            let n = band_rows.min(rows - r);
            let band = &data[r * cols..(r + n) * cols];
            send(
                w,
                &Response::Chunk {
                    row0: r as u64,
                    col0: op.t0 as u64,
                    rows: n as u64,
                    cols: cols as u64,
                    data: band.to_vec(),
                },
            )?;
            state
                .metrics
                .bytes_served
                .add(std::mem::size_of_val(band) as u64);
            frames += 1;
            r += n;
        }
    }
    send(w, &Response::End { frames })
}

/// Compile and run a `dasl` program: assemble the input through the
/// cache, execute on a per-request [`Haee`], stream the output
/// dataset.
fn serve_eval(state: &State, w: &mut impl Write, src: &str) -> io::Result<()> {
    let program = match dasl::compile(src) {
        Ok(p) => p,
        Err(e) => {
            let message = e.render(src);
            state.note_error(ErrorKind::Compile, &message);
            return send(
                w,
                &Response::Error {
                    kind: ErrorKind::Compile,
                    message,
                },
            );
        }
    };
    let spec = program.load_spec();
    let plan = match IoPlan::for_load(&state.vca, spec, 1) {
        Ok(p) => p,
        Err(e) => return send_error(state, w, &e),
    };
    let block = match run_plan_cached(state, &plan) {
        Ok(b) => b,
        Err(e) => return send_error(state, w, &e),
    };
    let wide: Vec<f64> = block.as_slice().iter().map(|&v| v as f64).collect();
    let data = arrayudf::Array2::from_vec(block.rows(), block.cols(), wide);

    let haee = Haee::builder().threads(state.eval_threads).build();
    let bound = program.bind(state.vca.sampling_hz() as f64);
    let output = match dasa::run(&bound, &data, &haee) {
        Ok(o) => o,
        Err(e) => return send_error(state, w, &e),
    };
    let (dims, flat) = output.to_dataset();

    send(w, &Response::EvalStart { dims })?;
    let mut frames = 0u64;
    let mut off = 0usize;
    while off < flat.len() {
        let n = MAX_DATA_ELEMS.min(flat.len() - off);
        send(
            w,
            &Response::EvalChunk {
                offset: off as u64,
                data: flat[off..off + n].to_vec(),
            },
        )?;
        state
            .metrics
            .bytes_served
            .add((n * std::mem::size_of::<f64>()) as u64);
        frames += 1;
        off += n;
    }
    send(w, &Response::End { frames })
}

/// Execute a serial plan through the chunk cache instead of
/// [`IoExecutor`]'s direct reads: same ops, same assembly, shared
/// buffers.
fn run_plan_cached(state: &State, plan: &IoPlan) -> Result<arrayudf::Array2<f32>> {
    let mut out = arrayudf::Array2::zeroed(plan.rows, plan.cols);
    for op in &plan.ops {
        let chunk = state.cache.get_or_read(&op.path)?;
        let data = chunk.hyperslab(op.selection);
        out.paste(0, op.t0, TileView::new(op.rows, op.cols, &data));
    }
    Ok(out)
}

/// Map a request-level failure onto a typed `Error` response and keep
/// the connection.
fn send_error(state: &State, w: &mut impl Write, e: &DassaError) -> io::Result<()> {
    let kind = kind_of(e);
    let message = e.to_string();
    state.note_error(kind, &message);
    obs::log_warn!("dassd", "request failed ({}): {message}", kind.name());
    send(w, &Response::Error { kind, message })
}

/// The `DassaError` → wire [`ErrorKind`] mapping.
fn kind_of(e: &DassaError) -> ErrorKind {
    match e {
        DassaError::Dasf(
            dasf::DasfError::ChecksumMismatch { .. }
            | dasf::DasfError::Corrupt(_)
            | dasf::DasfError::Truncated
            | dasf::DasfError::BadMagic,
        ) => ErrorKind::Corrupt,
        DassaError::Dasf(_) | DassaError::Io(_) => ErrorKind::Io,
        DassaError::BadSelection(_)
        | DassaError::Inconsistent(_)
        | DassaError::BadTimestamp(_)
        | DassaError::MissingMetadata { .. }
        | DassaError::Regex(_) => ErrorKind::BadRequest,
        DassaError::Comm(_) => ErrorKind::Internal,
    }
}
