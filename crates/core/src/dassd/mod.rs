//! `dassd` — a concurrent DAS data server.
//!
//! The batch pipelines answer "run this analysis once"; `dassd`
//! answers the ROADMAP's service question: many simultaneous clients
//! reading windows of one corpus and running `dasl` programs against
//! it, over plain TCP with zero new dependencies. The subsystem has
//! four layers, one module each:
//!
//! * [`protocol`] — length-prefixed frames; requests carry `dasl`
//!   source, responses stream data in bounded chunks so a multi-GB
//!   read never materialises in one buffer.
//! * [`cache`] — a corpus-wide, capacity-bounded chunk cache
//!   ([`ChunkCache`]) with CLOCK eviction, layered on [`dasf::pool`];
//!   only checksum-verified chunks are ever resident.
//! * [`server`] — accept loop, bounded admission queue, worker pool;
//!   over-capacity clients get a typed [`protocol::ErrorKind::Busy`]
//!   rejection instead of unbounded queueing.
//! * [`client`] — the blocking [`Client`] used by tests and
//!   `das_query`.
//!
//! Binaries: `das_serve` (the daemon) and `das_query` (one-shot
//! client + burst tool). Every request is traced and counted; see
//! [`server::metric_names`] and [`cache::metric_names`].
//!
//! ```no_run
//! use dassa::dassd::{Client, Server, ServerConfig};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::start("/data/das".as_ref(), ServerConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! let window = client.read_region(0..8, 0..3000)?;
//! let (dims, scores) = client.eval("load(\"corpus\") | detrend | xcorr(master=ch[0])")?;
//! # let _ = (window, dims, scores);
//! server.stop();
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{Chunk, ChunkCache};
pub use client::{BusyRetry, Client, ClientError};
pub use protocol::{ErrorKind, HealthInfo, Request, Response};
pub use server::{Server, ServerConfig};
