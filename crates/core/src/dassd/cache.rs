//! Corpus-wide chunk cache shared by every `dassd` request.
//!
//! The cache granule is a whole member file's sample dataset (the unit
//! `IoPlan` reads are built from), keyed by path. Overlapping windowed
//! queries from different clients therefore hit the same entries:
//! serving a hyperslab is a slice of the cached full tile, which is
//! byte-identical to `read_hyperslab_into` on the same file because
//! DASF stores the dataset row-major.
//!
//! Properties:
//!
//! * **Capacity-bounded.** Resident bytes never exceed the configured
//!   capacity; an entry larger than the whole capacity is served
//!   uncached rather than evicting everything.
//! * **CLOCK (second-chance) eviction.** A hit sets the entry's
//!   referenced bit; the evictor sweeps a queue, demoting referenced
//!   entries once before evicting them — LRU-approximating without
//!   per-hit queue surgery.
//! * **Checksum-verified only.** Entries come from `dasf` v3/v4
//!   verified reads (checksums are validated over the stored bytes
//!   before any decode runs); any error — in particular
//!   `ChecksumMismatch` — propagates
//!   to the caller and is *never* cached, so one corrupt page cannot
//!   poison later requests.
//! * **Pooled memory.** Samples live in [`dasf::pool`] buffers; an
//!   evicted chunk's buffer returns to the pool once the last
//!   in-flight reader drops its `Arc`.
//!
//! Metrics (on the registry passed to [`ChunkCache::new`], aggregating
//! into its parent): counters `cache.{hit,miss,evict}`, gauge
//! `cache.bytes` (current resident bytes), histogram
//! `cache.resident_bytes` (resident level sampled after each insert —
//! its max is the high-water mark the stress test bounds), and counter
//! `cache.stored_bytes` (on-disk — possibly compressed — bytes behind
//! each miss; with v4 codecs this trails `cache.bytes` growth, and the
//! gap is the decode amplification the cache absorbs).
//!
//! Under v4 codecs the granule is the *decoded* tile: residency is
//! charged at raw (decoded) size, because that is what the entry pins
//! in memory, while `cache.stored_bytes` accounts what was actually
//! read from disk.

use crate::Result;
use dasf::File;
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Metric names recorded by the cache.
pub mod metric_names {
    /// Gets served from a resident entry.
    pub const HIT: &str = "cache.hit";
    /// Gets that went to disk.
    pub const MISS: &str = "cache.miss";
    /// Entries evicted to make room.
    pub const EVICT: &str = "cache.evict";
    /// Current resident bytes (gauge).
    pub const BYTES: &str = "cache.bytes";
    /// Resident bytes sampled after each insert (histogram; `max` is
    /// the high-water mark).
    pub const RESIDENT_BYTES: &str = "cache.resident_bytes";
    /// On-disk (stored, possibly compressed) bytes behind cache misses.
    pub const STORED_BYTES: &str = "cache.stored_bytes";
}

/// One cached member-file dataset: the full `rows × cols` tile in a
/// pooled buffer.
pub struct Chunk {
    rows: usize,
    cols: usize,
    stored_bytes: u64,
    data: dasf::pool::PooledBuf<f32>,
}

impl std::fmt::Debug for Chunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chunk")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .finish_non_exhaustive()
    }
}

impl Chunk {
    /// Tile height (channels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Tile width (samples).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major samples, `rows * cols` long.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Payload size in bytes (decoded — what residency is charged at).
    pub fn bytes(&self) -> u64 {
        (self.rows * self.cols * std::mem::size_of::<f32>()) as u64
    }

    /// On-disk footprint of the dataset this tile was decoded from;
    /// equals [`Chunk::bytes`] for uncompressed files.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Copy out the hyperslab `sel` (`[(row0, nrows), (col0, ncols)]`
    /// in the file's local coordinates), or the whole tile when `sel`
    /// is `None` — the same contract as `dasf`'s `read_hyperslab_into`
    /// / `read_into` pair, so served bytes match a direct disk read.
    pub fn hyperslab(&self, sel: Option<[(u64, u64); 2]>) -> Vec<f32> {
        match sel {
            None => self.data.to_vec(),
            Some([(r0, nr), (c0, nc)]) => {
                let (r0, nr, c0, nc) = (r0 as usize, nr as usize, c0 as usize, nc as usize);
                let mut out = Vec::with_capacity(nr * nc);
                for r in r0..r0 + nr {
                    let row = &self.data[r * self.cols..(r + 1) * self.cols];
                    out.extend_from_slice(&row[c0..c0 + nc]);
                }
                out
            }
        }
    }
}

struct Entry {
    chunk: Arc<Chunk>,
    referenced: bool,
}

struct Inner {
    map: HashMap<PathBuf, Entry>,
    /// CLOCK sweep order; may hold stale keys (skipped on pop).
    clock: VecDeque<PathBuf>,
    resident: u64,
}

/// The shared, capacity-bounded chunk cache. All methods take `&self`;
/// any thread may call them concurrently.
pub struct ChunkCache {
    capacity: u64,
    dataset: String,
    inner: Mutex<Inner>,
    hit: obs::Counter,
    miss: obs::Counter,
    evict: obs::Counter,
    bytes: obs::Gauge,
    resident_hist: obs::Histogram,
    stored: obs::Counter,
}

impl ChunkCache {
    /// A cache bounded at `capacity` bytes, reading the dataset at
    /// `dataset` in each member file, reporting into `registry`.
    pub fn new(capacity: u64, dataset: &str, registry: &obs::Registry) -> ChunkCache {
        ChunkCache {
            capacity,
            dataset: dataset.to_string(),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: VecDeque::new(),
                resident: 0,
            }),
            hit: registry.counter(metric_names::HIT),
            miss: registry.counter(metric_names::MISS),
            evict: registry.counter(metric_names::EVICT),
            bytes: registry.gauge(metric_names::BYTES),
            resident_hist: registry.histogram(metric_names::RESIDENT_BYTES),
            stored: registry.counter(metric_names::STORED_BYTES),
        }
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Current resident bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().unwrap().resident
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `path` is resident (does not touch the referenced
    /// bit; test hook).
    pub fn contains(&self, path: &Path) -> bool {
        self.inner.lock().unwrap().map.contains_key(path)
    }

    /// Fetch the member file's full dataset, from cache or disk. Disk
    /// reads happen outside the lock, so concurrent misses on
    /// different files overlap; a lost race on the *same* file adopts
    /// the winner's entry and drops the duplicate buffer back to the
    /// pool. Errors — including `ChecksumMismatch` — propagate and
    /// leave no cache entry behind.
    pub fn get_or_read(&self, path: &Path) -> Result<Arc<Chunk>> {
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(e) = inner.map.get_mut(path) {
                e.referenced = true;
                self.hit.inc();
                return Ok(Arc::clone(&e.chunk));
            }
        }
        self.miss.inc();
        let chunk = Arc::new(self.read_chunk(path)?);
        let nbytes = chunk.bytes();
        self.stored.add(chunk.stored_bytes());

        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.map.get_mut(path) {
            // Another thread cached it while we read; use theirs so
            // everyone shares one buffer.
            e.referenced = true;
            return Ok(Arc::clone(&e.chunk));
        }
        if nbytes > self.capacity {
            // Would never fit; serve uncached instead of flushing
            // everything else.
            return Ok(chunk);
        }
        while inner.resident + nbytes > self.capacity {
            let Some(key) = inner.clock.pop_front() else {
                break;
            };
            let demote = match inner.map.get_mut(&key) {
                None => continue, // stale queue entry
                Some(e) if e.referenced => {
                    // Second chance: demote and move on. Bits are only
                    // *set* under the lock we hold, so each entry is
                    // demoted at most once per sweep and the loop
                    // terminates.
                    e.referenced = false;
                    true
                }
                Some(_) => false,
            };
            if demote {
                inner.clock.push_back(key);
            } else {
                let e = inner.map.remove(&key).unwrap();
                let freed = e.chunk.bytes();
                inner.resident -= freed;
                self.bytes.sub(freed);
                self.evict.inc();
            }
        }
        inner.resident += nbytes;
        self.bytes.add(nbytes);
        self.resident_hist.record(inner.resident);
        inner.clock.push_back(path.to_path_buf());
        inner.map.insert(
            path.to_path_buf(),
            Entry {
                chunk: Arc::clone(&chunk),
                referenced: false,
            },
        );
        Ok(chunk)
    }

    /// Verified read of the whole dataset into a pooled buffer.
    fn read_chunk(&self, path: &Path) -> Result<Chunk> {
        let f = File::open(path)?;
        let ds = f.dataset(&self.dataset)?;
        let dims = ds.dims.clone();
        if dims.len() != 2 {
            return Err(crate::DassaError::Inconsistent(format!(
                "{}: expected a 2-D dataset at {}, got {} dims",
                path.display(),
                self.dataset,
                dims.len()
            )));
        }
        let (rows, cols) = (dims[0] as usize, dims[1] as usize);
        let stored_bytes = ds.stored_byte_len();
        let mut buf = dasf::pool::f32s().acquire(rows * cols);
        let n = f.read_into(&self.dataset, &mut buf)?;
        debug_assert_eq!(n, rows * cols);
        Ok(Chunk {
            rows,
            cols,
            stored_bytes,
            data: buf,
        })
    }
}
