//! One import for the whole DASSA surface.
//!
//! Examples, tests, and tools used to deep-import from `dassa::dasa`
//! and `dassa::dass` submodule paths, which coupled every caller to the
//! crate's internal layout. `use dassa::prelude::*` brings in the
//! storage engine (catalog/VCA/planner/executor), the analysis engine
//! (HAEE, the flagship pipelines, the one [`run`] dispatcher), and the
//! `dasl` pipeline-language front end, so callers name what they use
//! and nothing about where it lives.

// `crate::Result` stays out of the prelude on purpose: glob-importing a
// 1-parameter `Result` alias shadows `std::result::Result` in every
// consumer. Name it as `dassa::Result` where needed.
pub use crate::DassaError;

// The engines and the server as modules, for qualified paths
// (`dasa::run`, `dassd::Server::start`, `ingest::run_once`, …).
pub use crate::{dasa, dass, dassd, ingest};

// DASA — the analysis engine.
pub use crate::dasa::{
    channel_metrics, channel_qc, cross_correlation_with_master, execute, interferometry,
    interferometry_dist, local_similarity, local_similarity_dist, prepare_master,
    prepare_master_windows, preprocess_channel, qc, run, stack_channel, stacked_interferometry,
    stacked_interferometry_3d, Analysis, AnalysisOutput, BindProgram, BoundProgram, ChannelHealth,
    ChannelMetrics, Haee, HaeeBuilder, InterferometryParams, Job, LocalSimiParams, MasterSpectrum,
    MasterWindows, MemoryModel, QcParams, QcReport, StackedCorrelation, StackingParams, TimeNorm,
};

// DASS — the storage engine.
pub use crate::dass::par_read::MAX_READ_ATTEMPTS;
pub use crate::dass::{
    choose_strategy_modeled, collect_targets, create_rca, create_rca_parallel, das_file_name, fsck,
    par_read, plan, quarantine, read_collective_per_file, read_collective_per_file_resilient,
    read_comm_avoiding, read_comm_avoiding_resilient, read_rca, read_vca, read_vca_resilient,
    scrub_file, scrub_paths, write_das_file, write_das_file_with_codec, write_das_file_with_layout,
    DasFileMeta, Exchange, FileCatalog, FileEntry, FileStatus, FsckReport, IoExecutor, IoPlan, Lav,
    ReadOp, ReadReport, ReadStrategy, Resilience, Tile, Timestamp, Vca, DATASET_PATH,
};

// DASSD — the data server.
pub use crate::dassd::{BusyRetry, ChunkCache, Client, ClientError, Server, ServerConfig};

// Ingest — the streaming daemon. `run`/`run_once` stay qualified
// (`ingest::run_once`) so they don't collide with `dasa::run`.
pub use crate::ingest::{Checkpoint, IngestConfig, IngestJob, IngestSummary, MinuteIndex};

// The pipeline language: `dasl::compile("load(…) | …")` → a `Program`
// that `run` executes.
pub use ::dasl;
pub use ::dasl::Program;
