//! Scrubbing: offline integrity verification of dasf file trees.
//!
//! Backs the `das_fsck` tool. A scrub opens every `.dasf` file under
//! the given paths, verifies every checksum unit (see
//! [`dasf::File::verify_all`]), and classifies each file:
//!
//! * **clean** — v3, every unit hashed and matched;
//! * **clean-unverified** — opened fine but carries no checksums (v2);
//! * **torn** — truncated / interrupted mid-write (`Truncated`);
//! * **corrupt** — bytes present but wrong (`ChecksumMismatch`,
//!   `BadMagic`, structural `Corrupt`);
//! * **error** — the host filesystem failed us (`Io`).
//!
//! The distinction matters operationally: a torn file is the tail of a
//! crash and its writer may be re-run; a corrupt file is bit-rot and
//! needs restoring from a replica. Quarantine moves damaged files into
//! a side directory so the catalog scan ([`super::FileCatalog`]) stops
//! picking them up.

use dasf::{DasfError, File};
use obs::Counter;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Metric names recorded by scrubs in the global `obs` registry.
pub mod metric_names {
    /// Files examined.
    pub const SCANNED: &str = "fsck.scanned";
    /// Files fully verified clean (including v2 `clean-unverified`).
    pub const CLEAN: &str = "fsck.clean";
    /// Files with checksum mismatches or structural corruption.
    pub const CORRUPT: &str = "fsck.corrupt";
    /// Files truncated mid-write.
    pub const TORN: &str = "fsck.torn";
}

struct Metrics {
    scanned: Counter,
    clean: Counter,
    corrupt: Counter,
    torn: Counter,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = obs::global();
        Metrics {
            scanned: reg.counter(metric_names::SCANNED),
            clean: reg.counter(metric_names::CLEAN),
            corrupt: reg.counter(metric_names::CORRUPT),
            torn: reg.counter(metric_names::TORN),
        }
    })
}

/// Scrub classification of one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileStatus {
    /// Every checksum unit verified.
    Clean,
    /// Opened and structurally sound, but the format carries no
    /// checksums to verify (v2).
    CleanUnverified,
    /// Checksum mismatch or structural corruption: bytes are wrong.
    Corrupt,
    /// Truncated / interrupted mid-write: bytes are missing.
    Torn,
    /// The filesystem failed (permission, disappearing file, …).
    Error,
}

impl FileStatus {
    /// The machine-readable status string used in JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FileStatus::Clean => "clean",
            FileStatus::CleanUnverified => "clean-unverified",
            FileStatus::Corrupt => "corrupt",
            FileStatus::Torn => "torn",
            FileStatus::Error => "error",
        }
    }

    /// True for the two undamaged classifications.
    pub fn is_clean(self) -> bool {
        matches!(self, FileStatus::Clean | FileStatus::CleanUnverified)
    }
}

impl fmt::Display for FileStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One scrubbed file.
#[derive(Debug, Clone)]
pub struct FileVerdict {
    /// The file scrubbed.
    pub path: PathBuf,
    /// Its classification.
    pub status: FileStatus,
    /// Human-readable evidence (first mismatch, error text, …).
    pub detail: String,
    /// Codec label of the file's datasets (`raw`, `shuffle-lz`,
    /// `quant:<bound>`), or `-` when the file could not be opened.
    pub codec: String,
    /// On-disk payload bytes over raw payload bytes inverted:
    /// `raw / stored` across all datasets (1.0 for uncompressed files,
    /// 0.0 when unknown).
    pub compress_ratio: f64,
}

impl FileVerdict {
    /// A verdict with no codec information (unopened / damaged file).
    fn without_codec(path: &Path, status: FileStatus, detail: String) -> FileVerdict {
        FileVerdict {
            path: path.to_path_buf(),
            status,
            detail,
            codec: "-".into(),
            compress_ratio: 0.0,
        }
    }
}

/// Aggregate result of scrubbing a set of paths.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Per-file verdicts, sorted by path.
    pub files: Vec<FileVerdict>,
}

impl FsckReport {
    fn count(&self, f: impl Fn(FileStatus) -> bool) -> usize {
        self.files.iter().filter(|v| f(v.status)).count()
    }

    /// Files examined.
    pub fn scanned(&self) -> usize {
        self.files.len()
    }

    /// Undamaged files (clean + clean-unverified).
    pub fn clean(&self) -> usize {
        self.count(FileStatus::is_clean)
    }

    /// Corrupt files.
    pub fn corrupt(&self) -> usize {
        self.count(|s| s == FileStatus::Corrupt)
    }

    /// Torn files.
    pub fn torn(&self) -> usize {
        self.count(|s| s == FileStatus::Torn)
    }

    /// Filesystem errors.
    pub fn errors(&self) -> usize {
        self.count(|s| s == FileStatus::Error)
    }

    /// True when every file scrubbed undamaged.
    pub fn is_clean(&self) -> bool {
        self.files.iter().all(|v| v.status.is_clean())
    }

    /// The damaged (non-clean) verdicts.
    pub fn damaged(&self) -> impl Iterator<Item = &FileVerdict> {
        self.files.iter().filter(|v| !v.status.is_clean())
    }

    /// Render as one machine-readable JSON object:
    /// `{"scanned":N,"clean":N,"corrupt":N,"torn":N,"errors":N,
    ///   "files":[{"path":"…","status":"…","detail":"…",
    ///             "codec":"…","compress_ratio":"N.NNN"},…]}`.
    ///
    /// Emitted through the workspace-shared [`obs::json::JsonWriter`],
    /// the same serializer behind `--metrics` and `--trace` output, so
    /// every binary quotes and escapes identically. The field order
    /// above is load-bearing: `ci.sh` greps for adjacent fields, so new
    /// fields go after `detail`, never between `path` and `status`.
    pub fn to_json(&self) -> String {
        let mut w = obs::json::JsonWriter::with_capacity(256 + self.files.len() * 128);
        w.begin_object();
        w.key("scanned").uint(self.scanned() as u64);
        w.key("clean").uint(self.clean() as u64);
        w.key("corrupt").uint(self.corrupt() as u64);
        w.key("torn").uint(self.torn() as u64);
        w.key("errors").uint(self.errors() as u64);
        w.key("files").begin_array();
        for v in &self.files {
            w.begin_object();
            w.key("path").string(&v.path.display().to_string());
            w.key("status").string(v.status.as_str());
            w.key("detail").string(&v.detail);
            w.key("codec").string(&v.codec);
            // The shared parser admits only unsigned integers, so the
            // ratio travels as a fixed-point string.
            w.key("compress_ratio")
                .string(&format!("{:.3}", v.compress_ratio));
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Codec label and raw/stored compression ratio of an open file,
/// aggregated across its datasets. Uncompressed files report
/// `("raw", 1.0)`.
fn codec_summary(f: &File) -> (String, f64) {
    let mut codec = dasf::Codec::Raw;
    let mut raw = 0u64;
    let mut stored = 0u64;
    for path in f.dataset_paths() {
        if let Ok(meta) = f.dataset(&path) {
            raw += meta.byte_len();
            stored += meta.stored_byte_len();
            if codec == dasf::Codec::Raw {
                codec = meta.codec();
            }
        }
    }
    let ratio = if stored > 0 {
        raw as f64 / stored as f64
    } else {
        1.0
    };
    (codec.label(), ratio)
}

/// Scrub one file: open it, then verify every checksum unit.
pub fn scrub_file(path: &Path) -> FileVerdict {
    let m = metrics();
    m.scanned.inc();
    let count = |status: FileStatus| match status {
        FileStatus::Clean | FileStatus::CleanUnverified => m.clean.inc(),
        FileStatus::Corrupt => m.corrupt.inc(),
        FileStatus::Torn => m.torn.inc(),
        FileStatus::Error => {}
    };
    let f = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            let (status, detail) = match e {
                DasfError::Truncated => (FileStatus::Torn, "truncated before commit record".into()),
                e @ (DasfError::BadMagic
                | DasfError::ChecksumMismatch { .. }
                | DasfError::Corrupt(_)) => (FileStatus::Corrupt, e.to_string()),
                e => (FileStatus::Error, e.to_string()),
            };
            count(status);
            return FileVerdict::without_codec(path, status, detail);
        }
    };
    let (codec, compress_ratio) = codec_summary(&f);
    let verdict = |status: FileStatus, detail: String| {
        count(status);
        FileVerdict {
            path: path.to_path_buf(),
            status,
            detail,
            codec: codec.clone(),
            compress_ratio,
        }
    };
    match f.verify_all() {
        Err(DasfError::Truncated) => verdict(
            FileStatus::Torn,
            "payload ends before dataset extent".into(),
        ),
        Err(e @ (DasfError::ChecksumMismatch { .. } | DasfError::Corrupt(_))) => {
            verdict(FileStatus::Corrupt, e.to_string())
        }
        Err(e) => verdict(FileStatus::Error, e.to_string()),
        Ok(v) if !v.mismatches.is_empty() => {
            let first = &v.mismatches[0];
            verdict(
                FileStatus::Corrupt,
                format!(
                    "{} checksum mismatch(es), first in dataset {} chunk {}",
                    v.mismatches.len(),
                    first.dataset,
                    first.chunk
                ),
            )
        }
        Ok(v) if v.unverified_datasets > 0 && v.chunks_verified == 0 => verdict(
            FileStatus::CleanUnverified,
            format!("v2 file, {} dataset(s) carry no checksums", v.datasets),
        ),
        Ok(v) => verdict(
            FileStatus::Clean,
            format!(
                "{} chunk(s), {} byte(s) verified",
                v.chunks_verified, v.bytes_verified
            ),
        ),
    }
}

/// Expand files and directory trees into the list of `.dasf` files to
/// scrub (sorted, deduplicated). Explicitly named files are taken as-is
/// regardless of extension; directories are walked recursively.
pub fn collect_targets(paths: &[PathBuf]) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<std::io::Result<_>>()?;
        entries.sort();
        for p in entries {
            if p.is_dir() {
                walk(&p, out)?;
            } else if p.extension().and_then(|e| e.to_str()) == Some("dasf") {
                out.push(p);
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    for p in paths {
        if p.is_dir() {
            walk(p, &mut out)?;
        } else {
            out.push(p.clone());
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

/// Scrub `targets` with `threads` worker threads (clamped to ≥ 1) and
/// return the aggregate report, verdicts sorted by path. A shim over
/// [`IoExecutor::run_scrub`](super::plan::IoExecutor::run_scrub), the
/// same engine that runs data reads.
pub fn scrub_paths(targets: &[PathBuf], threads: usize) -> FsckReport {
    super::plan::IoExecutor::serial().run_scrub(targets, threads)
}

/// Move every damaged file in `report` into `dir` (created if needed).
/// Returns the new locations; files that fail to move are reported as
/// errors rather than silently left in place.
pub fn quarantine(report: &FsckReport, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut moved = Vec::new();
    for v in report.damaged() {
        let name = v
            .path
            .file_name()
            .ok_or_else(|| std::io::Error::other("damaged file has no name"))?;
        let dst = dir.join(name);
        std::fs::rename(&v.path, &dst)?;
        moved.push(dst);
    }
    Ok(moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasf::Writer;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dassa-fsck-tests-{tag}"));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_sample(dir: &Path, name: &str) -> PathBuf {
        let p = dir.join(name);
        let mut w = Writer::create(&p).unwrap();
        w.create_group("/Measurement").unwrap();
        let data: Vec<f32> = (0..60).map(|i| i as f32 * 0.25).collect();
        w.write_dataset_f32("/Measurement/data", &[6, 10], &data)
            .unwrap();
        w.finish().unwrap();
        p
    }

    #[test]
    fn clean_corpus_scrubs_clean() {
        let dir = tmpdir("clean");
        for i in 0..4 {
            write_sample(&dir, &format!("f{i}.dasf"));
        }
        let targets = collect_targets(std::slice::from_ref(&dir)).unwrap();
        assert_eq!(targets.len(), 4);
        let report = scrub_paths(&targets, 3);
        assert!(report.is_clean());
        assert_eq!(report.scanned(), 4);
        assert_eq!(report.clean(), 4);
        let json = report.to_json();
        assert!(json.starts_with("{\"scanned\":4,\"clean\":4,\"corrupt\":0,\"torn\":0,"));
    }

    #[test]
    fn corrupt_and_torn_are_distinguished() {
        let dir = tmpdir("mixed");
        write_sample(&dir, "ok.dasf");
        let corrupt = write_sample(&dir, "rot.dasf");
        let torn = write_sample(&dir, "torn.dasf");
        // Flip a payload byte.
        let mut bytes = std::fs::read(&corrupt).unwrap();
        bytes[24] ^= 0x40;
        std::fs::write(&corrupt, &bytes).unwrap();
        // Chop the commit record.
        let bytes = std::fs::read(&torn).unwrap();
        std::fs::write(&torn, &bytes[..bytes.len() - 7]).unwrap();

        let targets = collect_targets(std::slice::from_ref(&dir)).unwrap();
        let report = scrub_paths(&targets, 2);
        assert_eq!(report.scanned(), 3);
        assert_eq!(report.clean(), 1);
        assert_eq!(report.corrupt(), 1);
        assert_eq!(report.torn(), 1);
        assert!(!report.is_clean());
        let by_name: Vec<(String, FileStatus)> = report
            .files
            .iter()
            .map(|v| {
                (
                    v.path.file_name().unwrap().to_str().unwrap().to_string(),
                    v.status,
                )
            })
            .collect();
        assert_eq!(
            by_name,
            vec![
                ("ok.dasf".into(), FileStatus::Clean),
                ("rot.dasf".into(), FileStatus::Corrupt),
                ("torn.dasf".into(), FileStatus::Torn),
            ]
        );
        // The corrupt verdict names the damaged dataset.
        let rot = &report.files[1];
        assert!(
            rot.detail.contains("/Measurement/data"),
            "detail: {}",
            rot.detail
        );

        // Quarantine moves exactly the damaged files.
        let qdir = dir.join("quarantine");
        let moved = quarantine(&report, &qdir).unwrap();
        assert_eq!(moved.len(), 2);
        assert!(!corrupt.exists() && !torn.exists());
        assert!(dir.join("ok.dasf").exists());
        assert!(qdir.join("rot.dasf").exists() && qdir.join("torn.dasf").exists());
    }

    #[test]
    fn missing_file_is_an_error_not_a_panic() {
        let dir = tmpdir("missing");
        let report = scrub_paths(&[dir.join("nope.dasf")], 1);
        assert_eq!(report.errors(), 1);
        assert!(!report.is_clean());
        assert_eq!(report.files[0].status, FileStatus::Error);
    }

    #[test]
    fn json_escapes_and_field_order_survive_the_shared_writer() {
        let report = FsckReport {
            files: vec![FileVerdict {
                path: std::path::PathBuf::from("a\"b.dasf"),
                status: FileStatus::Error,
                detail: "line1\nline2\u{1}".into(),
                codec: "-".into(),
                compress_ratio: 0.0,
            }],
        };
        let json = report.to_json();
        assert_eq!(
            json,
            "{\"scanned\":1,\"clean\":0,\"corrupt\":0,\"torn\":0,\"errors\":1,\
             \"files\":[{\"path\":\"a\\\"b.dasf\",\"status\":\"error\",\
             \"detail\":\"line1\\nline2\\u0001\",\
             \"codec\":\"-\",\"compress_ratio\":\"0.000\"}]}"
        );
        // The shared parser accepts its sibling writer's escapes.
        obs::json::parse(&json).unwrap();
    }

    #[test]
    fn compressed_file_reports_codec_and_ratio() {
        let dir = tmpdir("codec");
        let plain = write_sample(&dir, "plain.dasf");
        let packed = dir.join("packed.dasf");
        let mut w = Writer::create(&packed).unwrap();
        w.set_codec(dasf::Codec::ShuffleLz).unwrap();
        w.create_group("/Measurement").unwrap();
        let data: Vec<f32> = (0..20000).map(|i| (i >> 5) as f32 * 0.25).collect();
        w.write_dataset_f32("/Measurement/data", &[2, 10000], &data)
            .unwrap();
        w.finish().unwrap();

        let v = scrub_file(&packed);
        assert_eq!(v.status, FileStatus::Clean);
        assert_eq!(v.codec, "shuffle-lz");
        assert!(v.compress_ratio > 1.0, "ratio: {}", v.compress_ratio);

        let v = scrub_file(&plain);
        assert_eq!(v.codec, "raw");
        assert!((v.compress_ratio - 1.0).abs() < 1e-9);
    }
}
