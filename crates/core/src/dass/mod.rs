//! DASS — the DAS data Storage engine (paper §IV).
//!
//! DAS acquisitions land as thousands of small per-minute files. DASS
//! provides the machinery to make that practical as analysis input:
//! a metadata schema ([`DasFileMeta`], Figure 4), search over file
//! catalogs ([`FileCatalog`], the `das_search` tool of §IV-A), virtual
//! and real concatenation ([`Vca`], [`create_rca`]), logical subsetting
//! ([`Lav`]), the parallel read strategies of §IV-B
//! ([`read_collective_per_file`] vs the communication-avoiding
//! [`read_comm_avoiding`]), and offline integrity scrubbing
//! ([`scrub_paths`], the `das_fsck` tool).
//!
//! All of those read paths are *plans* executed by one engine: see
//! [`plan`] for the chunk-granular [`IoPlan`] / [`IoExecutor`] split,
//! the shared buffer pool, and zero-copy [`Tile`]s.

pub mod fsck;
mod lav;
mod metadata;
pub mod par_read;
pub mod plan;
mod rca;
// `pub(crate)` so sibling modules (ingest) can borrow the shared
// `search::tests::make_files` corpus helper in their own tests.
pub(crate) mod search;
mod timestamp;
mod vca;

pub use fsck::{collect_targets, quarantine, scrub_file, scrub_paths, FileStatus, FsckReport};
pub use lav::Lav;
pub use metadata::{
    das_file_name, keys, write_das_file, write_das_file_with_codec, write_das_file_with_layout,
    DasFileMeta, DATASET_PATH,
};
pub use par_read::{
    read_collective_per_file, read_collective_per_file_resilient, read_comm_avoiding,
    read_comm_avoiding_resilient, read_vca, read_vca_resilient, ReadReport, ReadStrategy,
};
pub use plan::{choose_strategy_modeled, Exchange, IoExecutor, IoPlan, ReadOp, Resilience, Tile};
pub use rca::{create_rca, create_rca_parallel, read_rca};
pub use search::{FileCatalog, FileEntry};
pub use timestamp::Timestamp;
pub use vca::Vca;
