//! The Logical Array View (paper Fig. 3): a rectangular subset of a VCA,
//! analogous to an HDF5 hyperslab, letting analyses run on "a subset of
//! interested channels" without copying or re-merging.

use super::plan::{IoExecutor, IoPlan};
use super::vca::Vca;
use crate::{DassaError, Result};
use arrayudf::Array2;
use std::ops::Range;

/// A logical view selecting `channels × time` out of a [`Vca`].
#[derive(Debug, Clone, PartialEq)]
pub struct Lav {
    channel_range: Range<u64>,
    time_range: Range<u64>,
}

impl Lav {
    /// A view over the given channel and time ranges.
    pub fn new(channel_range: Range<u64>, time_range: Range<u64>) -> Lav {
        Lav {
            channel_range,
            time_range,
        }
    }

    /// The full extent of `vca` as a view.
    pub fn full(vca: &Vca) -> Lav {
        Lav::new(0..vca.channels(), 0..vca.total_samples())
    }

    /// Restrict to a channel sub-range of this view (relative to the
    /// view, like slicing a slice).
    pub fn select_channels(&self, ch: Range<u64>) -> Result<Lav> {
        let len = self.channel_range.end - self.channel_range.start;
        if ch.end > len || ch.start >= ch.end {
            return Err(DassaError::BadSelection(format!(
                "channel sub-range {ch:?} invalid for view of {len} channels"
            )));
        }
        Ok(Lav::new(
            self.channel_range.start + ch.start..self.channel_range.start + ch.end,
            self.time_range.clone(),
        ))
    }

    /// Restrict to a time sub-range of this view.
    pub fn select_time(&self, t: Range<u64>) -> Result<Lav> {
        let len = self.time_range.end - self.time_range.start;
        if t.end > len || t.start >= t.end {
            return Err(DassaError::BadSelection(format!(
                "time sub-range {t:?} invalid for view of {len} samples"
            )));
        }
        Ok(Lav::new(
            self.channel_range.clone(),
            self.time_range.start + t.start..self.time_range.start + t.end,
        ))
    }

    /// Selected channel range in VCA coordinates.
    pub fn channel_range(&self) -> Range<u64> {
        self.channel_range.clone()
    }

    /// Selected time range in VCA coordinates.
    pub fn time_range(&self) -> Range<u64> {
        self.time_range.clone()
    }

    /// View shape `(channels, samples)`.
    pub fn shape(&self) -> (u64, u64) {
        (
            self.channel_range.end - self.channel_range.start,
            self.time_range.end - self.time_range.start,
        )
    }

    /// The [`IoPlan`] that materializes this view from `vca`.
    pub fn plan(&self, vca: &Vca) -> Result<IoPlan> {
        IoPlan::for_lav(vca, self)
    }

    /// Materialize the view from `vca`.
    pub fn read_f32(&self, vca: &Vca) -> Result<Array2<f32>> {
        Ok(IoExecutor::serial().run(&self.plan(vca)?)?.0)
    }

    /// Materialize widened to `f64`.
    pub fn read_f64(&self, vca: &Vca) -> Result<Array2<f64>> {
        let a = self.read_f32(vca)?;
        let (rows, cols) = (a.rows(), a.cols());
        Ok(Array2::from_vec(
            rows,
            cols,
            a.into_vec().into_iter().map(|v| v as f64).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dass::search::tests::make_files;
    use crate::dass::FileCatalog;

    fn sample_vca(tag: &str) -> Vca {
        let dir = make_files(tag, "170728224510", 2, 6, 30);
        let cat = FileCatalog::scan(&dir).unwrap();
        Vca::from_entries(cat.entries()).unwrap()
    }

    #[test]
    fn full_view_reads_everything() {
        let vca = sample_vca("lav-full");
        let lav = Lav::full(&vca);
        assert_eq!(lav.shape(), (6, 60));
        assert_eq!(lav.read_f32(&vca).unwrap(), vca.read_all_f32().unwrap());
    }

    #[test]
    fn channel_subset_matches_direct_read() {
        let vca = sample_vca("lav-ch");
        let lav = Lav::full(&vca).select_channels(2..5).unwrap();
        assert_eq!(lav.shape(), (3, 60));
        assert_eq!(
            lav.read_f32(&vca).unwrap(),
            vca.read_region_f32(2..5, 0..60).unwrap()
        );
    }

    #[test]
    fn nested_subsetting_composes() {
        let vca = sample_vca("lav-nest");
        let lav = Lav::full(&vca)
            .select_channels(1..5)
            .unwrap()
            .select_time(10..50)
            .unwrap()
            .select_channels(1..3)
            .unwrap()
            .select_time(5..20)
            .unwrap();
        assert_eq!(lav.channel_range(), 2..4);
        assert_eq!(lav.time_range(), 15..30);
        assert_eq!(
            lav.read_f32(&vca).unwrap(),
            vca.read_region_f32(2..4, 15..30).unwrap()
        );
    }

    #[test]
    fn invalid_subsets_rejected() {
        let vca = sample_vca("lav-bad");
        let lav = Lav::full(&vca);
        assert!(lav.select_channels(0..7).is_err());
        assert!(lav.select_channels(3..3).is_err());
        assert!(lav.select_time(0..61).is_err());
    }

    #[test]
    fn f64_read_widens_values() {
        let vca = sample_vca("lav-f64");
        let lav = Lav::full(&vca).select_channels(0..1).unwrap();
        let a32 = lav.read_f32(&vca).unwrap();
        let a64 = lav.read_f64(&vca).unwrap();
        for (x, y) in a32.as_slice().iter().zip(a64.as_slice()) {
            assert_eq!(*x as f64, *y);
        }
    }
}
