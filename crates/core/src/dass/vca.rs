//! The Virtually Concatenated Array (paper §IV): many small DAS files
//! presented as one logical `channel × time` array, without copying data.

use super::metadata::DasFileMeta;
use super::plan::{IoExecutor, IoPlan};
use super::search::{FileCatalog, FileEntry};
use crate::{DassaError, Result};
use arrayudf::Array2;
use dasf::{File, Value, Writer};
use std::ops::Range;
use std::path::Path;

/// A virtually concatenated array over time-ordered DAS files.
///
/// Construction touches only metadata (Figure 6: creating a VCA over
/// 2880 files takes ~0.01 s vs hours for a real concatenation). Reads
/// resolve global coordinates to per-file hyperslabs on the fly.
#[derive(Debug, Clone)]
pub struct Vca {
    entries: Vec<FileEntry>,
    /// Exclusive prefix sum of per-file sample counts; length
    /// `n_files + 1`, last element = total samples.
    time_offsets: Vec<u64>,
    channels: u64,
    sampling_hz: i64,
}

impl Vca {
    /// Build a VCA from catalog entries (e.g. the result of a
    /// `das_search` query). Members must agree on channel count and
    /// sampling rate; they are sorted by timestamp.
    pub fn from_entries(entries: &[FileEntry]) -> Result<Vca> {
        if entries.is_empty() {
            return Err(DassaError::BadSelection(
                "VCA needs at least one file".into(),
            ));
        }
        let mut entries = entries.to_vec();
        entries.sort_by_key(|e| e.meta.timestamp);
        let channels = entries[0].meta.channels;
        let sampling_hz = entries[0].meta.sampling_hz;
        for e in &entries {
            if e.meta.channels != channels {
                return Err(DassaError::Inconsistent(format!(
                    "{}: {} channels, expected {channels}",
                    e.path.display(),
                    e.meta.channels
                )));
            }
            if e.meta.sampling_hz != sampling_hz {
                return Err(DassaError::Inconsistent(format!(
                    "{}: {} Hz, expected {sampling_hz}",
                    e.path.display(),
                    e.meta.sampling_hz
                )));
            }
        }
        let mut time_offsets = Vec::with_capacity(entries.len() + 1);
        let mut acc = 0u64;
        for e in &entries {
            time_offsets.push(acc);
            acc += e.meta.samples;
        }
        time_offsets.push(acc);
        Ok(Vca {
            entries,
            time_offsets,
            channels,
            sampling_hz,
        })
    }

    /// Number of channels (rows of the logical array).
    pub fn channels(&self) -> u64 {
        self.channels
    }

    /// Total time samples across all member files (columns).
    pub fn total_samples(&self) -> u64 {
        *self.time_offsets.last().expect("non-empty")
    }

    /// Sampling rate in Hz.
    pub fn sampling_hz(&self) -> i64 {
        self.sampling_hz
    }

    /// Number of member files.
    pub fn n_files(&self) -> usize {
        self.entries.len()
    }

    /// Member files in time order.
    pub fn entries(&self) -> &[FileEntry] {
        &self.entries
    }

    /// Metadata for a file holding the whole concatenation: the first
    /// member's provenance (timestamp, spatial resolution) with the
    /// merged shape — what RCA creation stamps on its output.
    pub fn merged_meta(&self) -> DasFileMeta {
        let first = &self.entries[0].meta;
        DasFileMeta {
            sampling_hz: self.sampling_hz(),
            spatial_resolution_m: first.spatial_resolution_m,
            timestamp: first.timestamp,
            channels: self.channels(),
            samples: self.total_samples(),
        }
    }

    /// Samples contributed by member `i`.
    pub fn samples_of(&self, i: usize) -> u64 {
        self.time_offsets[i + 1] - self.time_offsets[i]
    }

    /// Global time offset at which member `i` starts.
    pub fn time_offset_of(&self, i: usize) -> u64 {
        self.time_offsets[i]
    }

    /// Are the member timestamps gap-free?
    pub fn is_contiguous(&self) -> bool {
        FileCatalog::is_contiguous(&self.entries)
    }

    /// Decompose a global time range into `(file_index, local_range)`
    /// pieces, in order.
    pub fn map_time_range(&self, t: Range<u64>) -> Vec<(usize, Range<u64>)> {
        let mut out = Vec::new();
        if t.start >= t.end {
            return out;
        }
        for (i, _) in self.entries.iter().enumerate() {
            let f_start = self.time_offsets[i];
            let f_end = self.time_offsets[i + 1];
            let lo = t.start.max(f_start);
            let hi = t.end.min(f_end);
            if lo < hi {
                out.push((i, (lo - f_start)..(hi - f_start)));
            }
        }
        out
    }

    /// Serial read of a rectangular region (channel range × global time
    /// range) as `f32`, the storage type: one hyperslab plan op per
    /// touched member file, run by the serial [`IoExecutor`].
    pub fn read_region_f32(&self, ch: Range<u64>, t: Range<u64>) -> Result<Array2<f32>> {
        let plan = IoPlan::for_region(self, ch, t)?;
        Ok(IoExecutor::serial().run(&plan)?.0)
    }

    /// Read the whole logical array as `f32`.
    pub fn read_all_f32(&self) -> Result<Array2<f32>> {
        self.read_region_f32(0..self.channels, 0..self.total_samples())
    }

    /// Read the whole logical array widened to `f64` for analysis.
    pub fn read_all_f64(&self) -> Result<Array2<f64>> {
        let a = self.read_all_f32()?;
        let (rows, cols) = (a.rows(), a.cols());
        let data = a.into_vec().into_iter().map(|v| v as f64).collect();
        Ok(Array2::from_vec(rows, cols, data))
    }

    /// Persist the VCA as a *logical file*: only member paths and shape
    /// metadata, no data — the paper's "VCA creates a logical file which
    /// only contains the metadata (e.g., name) of all files to merge".
    pub fn save(&self, path: &Path) -> Result<()> {
        let mut w = Writer::create(path)?;
        w.set_attr("/", "vca.members", Value::Int(self.entries.len() as i64))?;
        w.set_attr("/", "vca.channels", Value::Int(self.channels as i64))?;
        w.set_attr("/", "vca.sampling_hz", Value::Int(self.sampling_hz))?;
        for (i, e) in self.entries.iter().enumerate() {
            w.set_attr(
                "/",
                &format!("vca.member.{i}"),
                Value::Str(e.path.display().to_string()),
            )?;
        }
        w.finish()?;
        Ok(())
    }

    /// Load a VCA descriptor saved by [`Vca::save`], re-opening member
    /// metadata (members must still exist on disk).
    pub fn load(path: &Path) -> Result<Vca> {
        let f = File::open(path)?;
        let n = f
            .attr("/", "vca.members")
            .and_then(|v| v.as_int())
            .ok_or_else(|| DassaError::Inconsistent("not a VCA descriptor".into()))?;
        let mut entries = Vec::with_capacity(n as usize);
        for i in 0..n {
            let member = f
                .attr("/", &format!("vca.member.{i}"))
                .and_then(|v| v.as_str())
                .ok_or_else(|| DassaError::Inconsistent(format!("missing member {i}")))?;
            let mf = File::open(member)?;
            let meta = super::metadata::DasFileMeta::from_file(&mf)?;
            entries.push(FileEntry {
                path: member.into(),
                meta,
            });
        }
        Vca::from_entries(&entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dass::search::tests::make_files;
    use crate::dass::FileCatalog;

    fn catalog(tag: &str, n: usize, channels: u64, samples: u64) -> FileCatalog {
        let dir = make_files(tag, "170728224510", n, channels, samples);
        FileCatalog::scan(&dir).unwrap()
    }

    #[test]
    fn shape_is_concatenation() {
        let cat = catalog("vca-shape", 4, 3, 60);
        let vca = Vca::from_entries(cat.entries()).unwrap();
        assert_eq!(vca.channels(), 3);
        assert_eq!(vca.total_samples(), 240);
        assert_eq!(vca.n_files(), 4);
        assert!(vca.is_contiguous());
    }

    #[test]
    fn map_time_range_splits_at_file_boundaries() {
        let cat = catalog("vca-map", 3, 2, 60);
        let vca = Vca::from_entries(cat.entries()).unwrap();
        assert_eq!(vca.map_time_range(0..60), vec![(0, 0..60)]);
        assert_eq!(vca.map_time_range(30..90), vec![(0, 30..60), (1, 0..30)]);
        assert_eq!(
            vca.map_time_range(10..180),
            vec![(0, 10..60), (1, 0..60), (2, 0..60)]
        );
        assert!(vca.map_time_range(5..5).is_empty());
    }

    #[test]
    fn read_region_crosses_files_correctly() {
        // make_files encodes value = file*1e6 + ch*1000 + t.
        let cat = catalog("vca-read", 3, 4, 60);
        let vca = Vca::from_entries(cat.entries()).unwrap();
        let block = vca.read_region_f32(1..3, 50..130).unwrap();
        assert_eq!(block.rows(), 2);
        assert_eq!(block.cols(), 80);
        // Global t=50 is file 0 local 50; t=70 is file 1 local 10 …
        assert_eq!(block.get(0, 0), 1050.0); // ch 1, file 0, t 50
        assert_eq!(block.get(0, 10), 1_001_000.0); // ch 1, file 1, t 0
        assert_eq!(block.get(1, 79), 2_002_009.0); // ch 2, file 2, t 9
    }

    #[test]
    fn read_all_matches_manual_assembly() {
        let cat = catalog("vca-all", 2, 3, 30);
        let vca = Vca::from_entries(cat.entries()).unwrap();
        let all = vca.read_all_f32().unwrap();
        assert_eq!(all.rows(), 3);
        assert_eq!(all.cols(), 60);
        assert_eq!(all.get(2, 0), 2000.0);
        assert_eq!(all.get(2, 30), 1_002_000.0);
    }

    #[test]
    fn invalid_selections_rejected() {
        let cat = catalog("vca-bad", 2, 3, 30);
        let vca = Vca::from_entries(cat.entries()).unwrap();
        assert!(vca.read_region_f32(0..4, 0..10).is_err());
        assert!(vca.read_region_f32(2..2, 0..10).is_err());
        assert!(vca.read_region_f32(0..1, 0..61).is_err());
        assert!(vca.read_region_f32(0..1, 10..10).is_err());
    }

    #[test]
    fn mismatched_members_rejected() {
        let cat_a = catalog("vca-mix-a", 1, 3, 30);
        let cat_b = catalog("vca-mix-b", 1, 5, 30);
        let mut entries = cat_a.entries().to_vec();
        entries.extend(cat_b.entries().to_vec());
        assert!(matches!(
            Vca::from_entries(&entries),
            Err(DassaError::Inconsistent(_))
        ));
    }

    #[test]
    fn empty_vca_rejected() {
        assert!(matches!(
            Vca::from_entries(&[]),
            Err(DassaError::BadSelection(_))
        ));
    }

    #[test]
    fn save_load_round_trip() {
        let cat = catalog("vca-save", 3, 2, 30);
        let vca = Vca::from_entries(cat.entries()).unwrap();
        let desc = std::env::temp_dir().join("dassa-search-vca-save/my.vca.dasf");
        vca.save(&desc).unwrap();
        let back = Vca::load(&desc).unwrap();
        assert_eq!(back.channels(), vca.channels());
        assert_eq!(back.total_samples(), vca.total_samples());
        assert_eq!(back.n_files(), vca.n_files());
        // Descriptor is tiny: metadata only.
        let size = std::fs::metadata(&desc).unwrap().len();
        assert!(size < 4096, "descriptor unexpectedly large: {size} bytes");
    }

    #[test]
    fn load_rejects_non_descriptor() {
        let cat = catalog("vca-notdesc", 1, 2, 30);
        let member = cat.entries()[0].path.clone();
        assert!(matches!(
            Vca::load(&member),
            Err(DassaError::Inconsistent(_))
        ));
    }
}
