//! `yymmddhhmmss` timestamps.
//!
//! The paper's DAS files carry a `TimeStamp(yymmddhhmmss)` attribute
//! (e.g. `170620100545`) and are recorded one per minute; searching a
//! time window therefore needs timestamp parsing and minute arithmetic.
//! Years map to 2000–2099, matching the acquisition's two-digit years.

use crate::DassaError;
use std::fmt;

/// A calendar timestamp with second resolution, stored in the paper's
/// `yymmddhhmmss` convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    year: u16, // full year, 2000..=2099
    month: u8, // 1..=12
    day: u8,   // 1..=31
    hour: u8,
    minute: u8,
    second: u8,
}

fn is_leap(year: u16) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

fn days_in_month(year: u16, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("validated month"),
    }
}

impl Timestamp {
    /// Parse a 12-digit `yymmddhhmmss` string.
    pub fn parse(s: &str) -> crate::Result<Timestamp> {
        let bad = || DassaError::BadTimestamp(s.to_string());
        if s.len() != 12 || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(bad());
        }
        let field =
            |range: std::ops::Range<usize>| -> u8 { s[range].parse().expect("digits checked") };
        let ts = Timestamp {
            year: 2000 + field(0..2) as u16,
            month: field(2..4),
            day: field(4..6),
            hour: field(6..8),
            minute: field(8..10),
            second: field(10..12),
        };
        let valid = (1..=12).contains(&ts.month)
            && ts.day >= 1
            && ts.day <= days_in_month(ts.year, ts.month)
            && ts.hour < 24
            && ts.minute < 60
            && ts.second < 60;
        if valid {
            Ok(ts)
        } else {
            Err(bad())
        }
    }

    /// Parse the numeric form used on the `das_search -s` command line
    /// (e.g. `170728224510`).
    pub fn parse_u64(v: u64) -> crate::Result<Timestamp> {
        Timestamp::parse(&format!("{v:012}"))
    }

    /// Format back to `yymmddhhmmss`.
    pub fn to_compact(&self) -> String {
        format!(
            "{:02}{:02}{:02}{:02}{:02}{:02}",
            self.year - 2000,
            self.month,
            self.day,
            self.hour,
            self.minute,
            self.second
        )
    }

    /// Seconds since 2000-01-01 00:00:00 — a total order usable for
    /// range queries and gap detection.
    pub fn epoch_seconds(&self) -> u64 {
        let mut days: u64 = 0;
        for y in 2000..self.year {
            days += if is_leap(y) { 366 } else { 365 };
        }
        for m in 1..self.month {
            days += days_in_month(self.year, m) as u64;
        }
        days += self.day as u64 - 1;
        ((days * 24 + self.hour as u64) * 60 + self.minute as u64) * 60 + self.second as u64
    }

    /// The timestamp `minutes` later (calendar-aware).
    pub fn add_minutes(&self, minutes: u64) -> Timestamp {
        let mut ts = *self;
        let total = ts.minute as u64 + minutes;
        ts.minute = (total % 60) as u8;
        let mut hours = ts.hour as u64 + total / 60;
        ts.hour = (hours % 24) as u8;
        hours /= 24; // whole days to add
        for _ in 0..hours {
            ts.day += 1;
            if ts.day > days_in_month(ts.year, ts.month) {
                ts.day = 1;
                ts.month += 1;
                if ts.month > 12 {
                    ts.month = 1;
                    ts.year += 1;
                }
            }
        }
        ts
    }

    /// Minutes from `self` to `other` (`other` must not precede `self`).
    pub fn minutes_until(&self, other: &Timestamp) -> u64 {
        (other.epoch_seconds() - self.epoch_seconds()) / 60
    }

    /// Whole minutes since 2000-01-01 00:00:00 — the key space ingest's
    /// minute index and watermark arithmetic live in. Seconds truncate.
    pub fn epoch_minutes(&self) -> u64 {
        self.epoch_seconds() / 60
    }

    /// Inverse of [`Timestamp::epoch_minutes`]: the timestamp at the
    /// start of that minute (seconds = 0). Panics past year 2099, the
    /// format's ceiling.
    pub fn from_epoch_minutes(minutes: u64) -> Timestamp {
        let base = Timestamp {
            year: 2000,
            month: 1,
            day: 1,
            hour: 0,
            minute: 0,
            second: 0,
        };
        let ts = base.add_minutes(minutes);
        assert!(ts.year <= 2099, "epoch minute {minutes} is past year 2099");
        ts
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "20{}-{:02}-{:02} {:02}:{:02}:{:02}",
            &self.to_compact()[..2],
            self.month,
            self.day,
            self.hour,
            self.minute,
            self.second
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_format_round_trip() {
        for s in [
            "170620100545",
            "170728224510",
            "000101000000",
            "991231235959",
        ] {
            let ts = Timestamp::parse(s).unwrap();
            assert_eq!(ts.to_compact(), s);
        }
    }

    #[test]
    fn parse_u64_pads_leading_zeros() {
        let ts = Timestamp::parse_u64(101000000).unwrap(); // 000101000000
        assert_eq!(ts.to_compact(), "000101000000");
    }

    #[test]
    fn rejects_malformed() {
        for s in [
            "",
            "12345",
            "1706201005455",
            "17062010054x",
            "171320100545",
            "170632100545",
            "170620240545",
            "170620106045",
            "170620100560",
        ] {
            assert!(Timestamp::parse(s).is_err(), "{s} should be rejected");
        }
    }

    #[test]
    fn leap_year_february() {
        assert!(Timestamp::parse("200229000000").is_ok(), "2020 is leap");
        assert!(Timestamp::parse("210229000000").is_err(), "2021 is not");
    }

    #[test]
    fn ordering_follows_time() {
        let a = Timestamp::parse("170728224510").unwrap();
        let b = Timestamp::parse("170728224610").unwrap();
        let c = Timestamp::parse("180101000000").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn add_minutes_simple() {
        let ts = Timestamp::parse("170728224510").unwrap();
        assert_eq!(ts.add_minutes(1).to_compact(), "170728224610");
        assert_eq!(ts.add_minutes(15).to_compact(), "170728230010");
    }

    #[test]
    fn add_minutes_rolls_days_months_years() {
        let ts = Timestamp::parse("171231235900").unwrap();
        assert_eq!(ts.add_minutes(1).to_compact(), "180101000000");
        let feb = Timestamp::parse("200228235900").unwrap();
        assert_eq!(feb.add_minutes(1).to_compact(), "200229000000", "leap day");
        let feb21 = Timestamp::parse("210228235900").unwrap();
        assert_eq!(feb21.add_minutes(1).to_compact(), "210301000000");
    }

    #[test]
    fn minutes_until_inverts_add() {
        let ts = Timestamp::parse("170728224510").unwrap();
        for m in [0u64, 1, 59, 60, 1440, 100_000] {
            let later = ts.add_minutes(m);
            assert_eq!(ts.minutes_until(&later), m);
        }
    }

    #[test]
    fn epoch_minutes_round_trip() {
        for s in [
            "000101000000",
            "170728224500",
            "171231235900",
            "200229120000",
            "991231235900",
        ] {
            let ts = Timestamp::parse(s).unwrap();
            let back = Timestamp::from_epoch_minutes(ts.epoch_minutes());
            assert_eq!(back, ts, "{s} should survive the minute round trip");
            assert_eq!(back.epoch_minutes(), ts.epoch_minutes());
        }
        // Seconds truncate: :45 lands on the start of the same minute.
        let ts = Timestamp::parse("170728224545").unwrap();
        let back = Timestamp::from_epoch_minutes(ts.epoch_minutes());
        assert_eq!(back.to_compact(), "170728224500");
    }

    #[test]
    fn epoch_seconds_monotonic_across_boundaries() {
        let pairs = [
            ("170131235959", "170201000000"),
            ("161231235959", "170101000000"),
            ("200229235959", "200301000000"),
        ];
        for (a, b) in pairs {
            let ta = Timestamp::parse(a).unwrap();
            let tb = Timestamp::parse(b).unwrap();
            assert_eq!(tb.epoch_seconds() - ta.epoch_seconds(), 1, "{a} -> {b}");
        }
    }
}
