//! The DAS file schema (paper Figure 4): a 2-D `channel × time` array
//! plus two levels of key-value metadata in a dasf file.

use super::timestamp::Timestamp;
use crate::{DassaError, Result};
use arrayudf::Array2;
use dasf::{File, Value, Writer};
use std::path::Path;

/// Canonical dataset path inside a DAS file.
pub const DATASET_PATH: &str = "/Measurement/data";

/// Attribute keys, verbatim from the paper's Figure 4.
pub mod keys {
    pub const SAMPLING_FREQUENCY: &str = "SamplingFrequency(HZ)";
    pub const SPATIAL_RESOLUTION: &str = "SpatialResolution(m)";
    pub const TIMESTAMP: &str = "TimeStamp(yymmddhhmmss)";
    pub const NUM_CHANNELS: &str = "Number of objects";
    pub const SAMPLES_PER_CHANNEL: &str = "Number of raw data values";
}

/// Parsed global metadata of one DAS file.
#[derive(Debug, Clone, PartialEq)]
pub struct DasFileMeta {
    /// Sampling rate per channel in Hz (paper: 500).
    pub sampling_hz: i64,
    /// Channel spacing along the fiber in metres (paper: 2).
    pub spatial_resolution_m: f64,
    /// Acquisition start time.
    pub timestamp: Timestamp,
    /// Number of channels (paper: 11648).
    pub channels: u64,
    /// Time samples per channel in this file (paper: 30000 per minute).
    pub samples: u64,
}

impl DasFileMeta {
    /// Read and validate the metadata of a DAS file without touching
    /// array data (a metadata-only open).
    pub fn from_file(file: &File) -> Result<DasFileMeta> {
        let path = file.path().display().to_string();
        let need = |key: &'static str| -> Result<&Value> {
            file.attr("/", key).ok_or(DassaError::MissingMetadata {
                path: path.clone(),
                key,
            })
        };
        let ts_str = need(keys::TIMESTAMP)?
            .as_str()
            .ok_or(DassaError::MissingMetadata {
                path: path.clone(),
                key: keys::TIMESTAMP,
            })?
            .to_string();
        let meta = DasFileMeta {
            sampling_hz: need(keys::SAMPLING_FREQUENCY)?.as_int().unwrap_or(0),
            spatial_resolution_m: need(keys::SPATIAL_RESOLUTION)?.as_float().unwrap_or(0.0),
            timestamp: Timestamp::parse(&ts_str)?,
            channels: need(keys::NUM_CHANNELS)?.as_int().unwrap_or(0) as u64,
            samples: need(keys::SAMPLES_PER_CHANNEL)?.as_int().unwrap_or(0) as u64,
        };
        // Cross-check against the dataset extent.
        let ds = file.dataset(DATASET_PATH)?;
        if ds.dims != vec![meta.channels, meta.samples] {
            return Err(DassaError::Inconsistent(format!(
                "{path}: dataset dims {:?} disagree with metadata {}x{}",
                ds.dims, meta.channels, meta.samples
            )));
        }
        Ok(meta)
    }

    /// Duration covered by this file in whole minutes (paper: 1).
    pub fn duration_minutes(&self) -> u64 {
        if self.sampling_hz <= 0 {
            return 0;
        }
        self.samples / (self.sampling_hz as u64 * 60)
    }
}

/// Write one DAS file in the Figure 4 schema: global attributes at the
/// root, per-channel metadata under `/Measurement`, and the 2-D
/// `channel × time` amplitude array at [`DATASET_PATH`].
pub fn write_das_file(path: &Path, meta: &DasFileMeta, data: &Array2<f32>) -> Result<()> {
    write_das_file_with_layout(path, meta, data, None)
}

/// [`write_das_file`] with an explicit storage layout: `Some((ch, t))`
/// stores the amplitude array chunked on a `ch × t` grid (per-channel
/// window reads then touch only intersecting chunks), `None` stores it
/// contiguously.
pub fn write_das_file_with_layout(
    path: &Path,
    meta: &DasFileMeta,
    data: &Array2<f32>,
    chunk: Option<(u64, u64)>,
) -> Result<()> {
    write_das_file_with_codec(path, meta, data, chunk, dasf::Codec::Raw)
}

/// [`write_das_file_with_layout`] with an on-disk codec: the amplitude
/// array is stored through `codec` (checksums cover the stored bytes,
/// so scrub and fsck work unchanged on compressed files).
pub fn write_das_file_with_codec(
    path: &Path,
    meta: &DasFileMeta,
    data: &Array2<f32>,
    chunk: Option<(u64, u64)>,
    codec: dasf::Codec,
) -> Result<()> {
    assert_eq!(data.rows() as u64, meta.channels, "channel count mismatch");
    assert_eq!(data.cols() as u64, meta.samples, "sample count mismatch");
    let mut w = Writer::create(path)?;
    w.set_codec(codec)?;
    w.set_attr("/", keys::SAMPLING_FREQUENCY, Value::Int(meta.sampling_hz))?;
    w.set_attr(
        "/",
        keys::SPATIAL_RESOLUTION,
        Value::Float(meta.spatial_resolution_m),
    )?;
    w.set_attr(
        "/",
        keys::TIMESTAMP,
        Value::Str(meta.timestamp.to_compact()),
    )?;
    w.set_attr("/", keys::NUM_CHANNELS, Value::Int(meta.channels as i64))?;
    w.set_attr(
        "/",
        keys::SAMPLES_PER_CHANNEL,
        Value::Int(meta.samples as i64),
    )?;
    w.create_group("/Measurement")?;
    match chunk {
        None => w.write_dataset_f32(
            DATASET_PATH,
            &[meta.channels, meta.samples],
            data.as_slice(),
        )?,
        Some((ch, t)) => w.write_dataset_chunked(
            DATASET_PATH,
            &[meta.channels, meta.samples],
            &[ch.max(1), t.max(1)],
            data.as_slice(),
        )?,
    }
    w.finish()?;
    Ok(())
}

/// Conventional DAS file name for a timestamp, mirroring the
/// `westSac_<yymmddhhmmss>.dasf` pattern of the acquisition in the paper.
pub fn das_file_name(ts: &Timestamp) -> String {
    format!("westSac_{}.dasf", ts.to_compact())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join("dassa-meta-tests");
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_meta() -> DasFileMeta {
        DasFileMeta {
            sampling_hz: 500,
            spatial_resolution_m: 2.0,
            timestamp: Timestamp::parse("170620100545").unwrap(),
            channels: 4,
            samples: 30,
        }
    }

    #[test]
    fn write_read_round_trip() {
        let meta = sample_meta();
        let data = Array2::from_fn(4, 30, |r, c| (r * 100 + c) as f32);
        let path = tmpdir().join(das_file_name(&meta.timestamp));
        write_das_file(&path, &meta, &data).unwrap();

        let f = File::open(&path).unwrap();
        let back = DasFileMeta::from_file(&f).unwrap();
        assert_eq!(back, meta);
        let raw = f.read_f32(DATASET_PATH).unwrap();
        assert_eq!(raw, data.as_slice());
    }

    #[test]
    fn chunked_das_file_reads_identically() {
        let meta = sample_meta();
        let data = Array2::from_fn(4, 30, |r, c| (r * 100 + c) as f32);
        let dir = tmpdir();
        let contiguous = dir.join("layout-cont.dasf");
        let chunked = dir.join("layout-chunk.dasf");
        write_das_file(&contiguous, &meta, &data).unwrap();
        write_das_file_with_layout(&chunked, &meta, &data, Some((2, 8))).unwrap();
        let fc = File::open(&contiguous).unwrap();
        let fk = File::open(&chunked).unwrap();
        assert_eq!(DasFileMeta::from_file(&fk).unwrap(), meta);
        assert_eq!(
            fc.read_f32(DATASET_PATH).unwrap(),
            fk.read_f32(DATASET_PATH).unwrap()
        );
        assert_eq!(
            fc.read_hyperslab_f32(DATASET_PATH, &[(1, 2), (5, 13)])
                .unwrap(),
            fk.read_hyperslab_f32(DATASET_PATH, &[(1, 2), (5, 13)])
                .unwrap()
        );
    }

    #[test]
    fn missing_metadata_detected() {
        let path = tmpdir().join("bare.dasf");
        let mut w = Writer::create(&path).unwrap();
        w.create_group("/Measurement").unwrap();
        w.write_dataset_f32(DATASET_PATH, &[1, 2], &[0.0, 1.0])
            .unwrap();
        w.finish().unwrap();
        let f = File::open(&path).unwrap();
        match DasFileMeta::from_file(&f) {
            Err(DassaError::MissingMetadata { key, .. }) => {
                // The timestamp is validated first (it gates parsing).
                assert_eq!(key, keys::TIMESTAMP);
            }
            other => panic!("expected MissingMetadata, got {other:?}"),
        }
    }

    #[test]
    fn dims_metadata_disagreement_detected() {
        let meta = sample_meta();
        let path = tmpdir().join("lies.dasf");
        let mut w = Writer::create(&path).unwrap();
        w.set_attr("/", keys::SAMPLING_FREQUENCY, Value::Int(meta.sampling_hz))
            .unwrap();
        w.set_attr("/", keys::SPATIAL_RESOLUTION, Value::Float(2.0))
            .unwrap();
        w.set_attr(
            "/",
            keys::TIMESTAMP,
            Value::Str(meta.timestamp.to_compact()),
        )
        .unwrap();
        w.set_attr("/", keys::NUM_CHANNELS, Value::Int(99)).unwrap(); // lie
        w.set_attr("/", keys::SAMPLES_PER_CHANNEL, Value::Int(30))
            .unwrap();
        w.create_group("/Measurement").unwrap();
        w.write_dataset_f32(DATASET_PATH, &[4, 30], &[0.0; 120])
            .unwrap();
        w.finish().unwrap();
        let f = File::open(&path).unwrap();
        assert!(matches!(
            DasFileMeta::from_file(&f),
            Err(DassaError::Inconsistent(_))
        ));
    }

    #[test]
    fn duration_minutes_from_sampling() {
        let mut meta = sample_meta();
        meta.samples = 30000;
        meta.sampling_hz = 500;
        assert_eq!(meta.duration_minutes(), 1);
        meta.samples = 60000;
        assert_eq!(meta.duration_minutes(), 2);
        meta.sampling_hz = 0;
        assert_eq!(meta.duration_minutes(), 0);
    }

    #[test]
    fn file_name_convention() {
        let ts = Timestamp::parse("170728224510").unwrap();
        assert_eq!(das_file_name(&ts), "westSac_170728224510.dasf");
    }
}
