//! The one engine that runs every [`IoPlan`].
//!
//! The executor is deliberately a *transliteration* of the four legacy
//! read loops (plain and resilient × collective-per-file and
//! communication-avoiding) plus the serial region reader: it issues the
//! same dasf calls in the same order, the same collectives with the
//! same headers, takes the same fault-injection decisions at the same
//! sites, and records the same spans and histograms — so traces, chaos
//! digests and communication statistics are bit-identical to the
//! pre-planner code. What changed underneath: samples live in pooled
//! buffers ([`dasf::pool`]) wrapped in zero-copy [`Tile`]s, and the
//! exchange moves tile handles (an `Arc` bump per hop) instead of
//! packing per-destination `Vec`s.

use super::super::fsck::{scrub_file, FsckReport};
use super::super::par_read::{metric_names, ReadReport, MAX_READ_ATTEMPTS};
use super::tile::Tile;
use super::{Exchange, IoPlan, ReadOp};
use crate::Result;
use arrayudf::dist::partition;
use arrayudf::Array2;
use dasf::File;
use minimpi::Comm;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// What the executor does when a member read keeps failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resilience {
    /// Propagate the first error — the legacy plain readers.
    FailFast,
    /// Retry up to [`MAX_READ_ATTEMPTS`], then quarantine the file and
    /// zero-fill its span — the legacy resilient readers.
    Quarantine,
}

/// Executes [`IoPlan`]s: serial or collective, fail-fast or
/// retry/quarantine.
pub struct IoExecutor<'a> {
    comm: Option<&'a Comm>,
    resilience: Resilience,
}

/// What one retried member read observed.
struct MemberRead {
    /// The tile, or `None` after [`MAX_READ_ATTEMPTS`] failures
    /// (⇒ quarantine).
    tile: Option<Tile>,
    /// Repeated attempts (first attempt is free).
    retries: u64,
    /// Attempts that failed with a checksum mismatch — the file's bytes
    /// were readable but rotten.
    mismatches: u64,
}

impl IoExecutor<'static> {
    /// A serial executor: the calling thread performs every op.
    pub fn serial() -> IoExecutor<'static> {
        IoExecutor {
            comm: None,
            resilience: Resilience::FailFast,
        }
    }
}

impl<'a> IoExecutor<'a> {
    /// A fail-fast executor over `comm` — semantics of the legacy plain
    /// parallel readers.
    pub fn new(comm: &'a Comm) -> IoExecutor<'a> {
        IoExecutor {
            comm: Some(comm),
            resilience: Resilience::FailFast,
        }
    }

    /// A retry/quarantine executor over `comm` — semantics of the
    /// legacy resilient readers.
    pub fn resilient(comm: &'a Comm) -> IoExecutor<'a> {
        IoExecutor {
            comm: Some(comm),
            resilience: Resilience::Quarantine,
        }
    }

    fn registry(&self) -> &Arc<obs::Registry> {
        match self.comm {
            Some(comm) => comm.registry(),
            None => obs::global(),
        }
    }

    /// Run `plan`, returning this rank's channel block (rows
    /// `partition(plan.rows, size, rank)` for distributed plans, all
    /// `plan.rows` for serial ones) and the read report (always clean
    /// under [`Resilience::FailFast`]).
    pub fn run(&self, plan: &IoPlan) -> Result<(Array2<f32>, ReadReport)> {
        match plan.exchange {
            Exchange::None => self.run_serial(plan),
            Exchange::BcastPerFile => match self.resilience {
                Resilience::FailFast => self
                    .run_collective(plan)
                    .map(|a| (a, ReadReport::default())),
                Resilience::Quarantine => self.run_collective_resilient(plan),
            },
            Exchange::AllToAll => match self.resilience {
                Resilience::FailFast => self.run_ca(plan).map(|a| (a, ReadReport::default())),
                Resilience::Quarantine => self.run_ca_resilient(plan),
            },
        }
    }

    /// One op: open the file, read the selection into a pooled buffer,
    /// wrap it as a whole tile.
    fn read_op(dataset: &str, op: &ReadOp) -> Result<Tile> {
        let f = File::open(&op.path)?;
        let mut buf = super::pool::f32s().acquire(op.rows * op.cols);
        let n = match &op.selection {
            Some(sel) => f.read_hyperslab_into(dataset, sel, &mut buf)?,
            None => f.read_into(dataset, &mut buf)?,
        };
        debug_assert_eq!(n, op.rows * op.cols, "op shape mismatch for {:?}", op.path);
        Ok(Tile::whole(buf, op.rows, op.cols, op.file_index, op.t0))
    }

    /// Read one op with bounded retries.
    ///
    /// Failures come from two places, both deterministic under a
    /// [`faultline`] plan: real `dasf` errors (fault sites keyed by file
    /// *name* — a "bad sector", failing every attempt identically; this
    /// includes `dasf.read.corrupt` bit-rot, which the v3 checksum layer
    /// turns into `ChecksumMismatch`) and transient injected failures at
    /// `par_read.file` (keyed by file *index*; the failure count is
    /// capped below the budget, so a purely transient fault retries and
    /// then succeeds, never quarantines).
    fn read_op_with_retries(&self, dataset: &str, op: &ReadOp) -> MemberRead {
        let transient = match faultline::current() {
            Some(plan) if plan.fires(faultline::site::PAR_READ_FILE, op.file_index as u64) => {
                1 + plan.value_below(
                    faultline::site::PAR_READ_FILE,
                    op.file_index as u64,
                    MAX_READ_ATTEMPTS as u64 - 1,
                ) as u32
            }
            _ => 0,
        };
        let reg = self.registry();
        let mut retries = 0u64;
        let mut mismatches = 0u64;
        for attempt in 0..MAX_READ_ATTEMPTS {
            let result: Result<Tile> = if attempt < transient {
                Err(crate::DassaError::Io(std::io::Error::other(
                    "faultline: injected member-file read failure (par_read.file)",
                )))
            } else {
                Self::read_op(dataset, op)
            };
            match result {
                Ok(tile) => {
                    return MemberRead {
                        tile: Some(tile),
                        retries,
                        mismatches,
                    }
                }
                Err(e) => {
                    if matches!(
                        e,
                        crate::DassaError::Dasf(dasf::DasfError::ChecksumMismatch { .. })
                    ) {
                        mismatches += 1;
                        reg.counter(metric_names::CHECKSUM_MISMATCH).inc();
                    }
                    if attempt + 1 < MAX_READ_ATTEMPTS {
                        retries += 1;
                        reg.counter(metric_names::RETRIES).inc();
                    }
                }
            }
        }
        reg.counter(metric_names::QUARANTINED).inc();
        MemberRead {
            tile: None,
            retries,
            mismatches,
        }
    }

    /// The global zero-filled sample count implied by a quarantine set.
    fn zero_samples_of(plan: &IoPlan, quarantined: &[usize]) -> u64 {
        plan.ops
            .iter()
            .filter(|op| quarantined.binary_search(&op.file_index).is_ok())
            .map(ReadOp::bytes)
            .sum::<u64>()
            / std::mem::size_of::<f32>() as u64
    }

    /// Serial execution: every op on the calling thread, tiles pasted
    /// straight into the output (the legacy region reader).
    fn run_serial(&self, plan: &IoPlan) -> Result<(Array2<f32>, ReadReport)> {
        let mut local = Array2::<f32>::zeroed(plan.rows, plan.cols);
        let mut quarantined = Vec::new();
        let mut io_retries = 0u64;
        let mut checksum_mismatches = 0u64;
        for op in &plan.ops {
            match self.resilience {
                Resilience::FailFast => {
                    let tile = Self::read_op(&plan.dataset, op)?;
                    local.paste(0, op.t0, tile.view());
                }
                Resilience::Quarantine => {
                    let member = self.read_op_with_retries(&plan.dataset, op);
                    io_retries += member.retries;
                    checksum_mismatches += member.mismatches;
                    match member.tile {
                        Some(tile) => local.paste(0, op.t0, tile.view()),
                        None => quarantined.push(op.file_index),
                    }
                }
            }
        }
        let zero_samples = Self::zero_samples_of(plan, &quarantined);
        Ok((
            local,
            ReadReport {
                quarantined,
                io_retries,
                checksum_mismatches,
                zero_samples,
            },
        ))
    }

    /// "Collective-per-file" (Figure 5a): for each op, the aggregator
    /// rank `file_index % size` reads the whole file and broadcasts the
    /// tile; every rank keeps its channel rows.
    fn run_collective(&self, plan: &IoPlan) -> Result<Array2<f32>> {
        let comm = self.comm.expect("collective plan needs a Comm");
        let _trace = obs::trace::scope_in(comm.registry(), "par_read.collective");
        let (rank, size) = (comm.rank(), comm.size());
        let my_rows = partition(plan.rows, size, rank);
        let total_cols = plan.cols;
        let mut local = Array2::<f32>::zeroed(my_rows.len(), total_cols);
        let mut read_ns = std::time::Duration::ZERO;
        let mut exchange_ns = std::time::Duration::ZERO;
        let mut copy_ns = std::time::Duration::ZERO;

        for op in &plan.ops {
            let root = op.file_index % size;
            // Aggregator reads the entire file with one I/O call …
            let t = std::time::Instant::now();
            let payload: Option<Tile> = if rank == root {
                let _s = obs::trace::scope_in(comm.registry(), "par_read.read");
                Some(Self::read_op(&plan.dataset, op)?)
            } else {
                None
            };
            read_ns += t.elapsed();
            // … and broadcasts it whole — the expensive step this
            // strategy pays once per file. The transfer is an `Arc`
            // bump per tree edge; the counters see the full tile bytes.
            let t = std::time::Instant::now();
            let tile = comm.bcast_payload(root, payload);
            exchange_ns += t.elapsed();
            let _copy = obs::trace::scope_in(comm.registry(), "par_read.copy");
            let t = std::time::Instant::now();
            local.paste(0, op.t0, tile.restrict(my_rows.clone()).view());
            copy_ns += t.elapsed();
        }
        let reg = comm.registry();
        reg.histogram(metric_names::COLLECTIVE_READ_NS)
            .record_duration(read_ns);
        reg.histogram(metric_names::COLLECTIVE_EXCHANGE_NS)
            .record_duration(exchange_ns);
        reg.histogram(metric_names::COLLECTIVE_COPY_NS)
            .record_duration(copy_ns);
        Ok(local)
    }

    /// Communication-avoiding (Figure 5b): each rank reads the whole
    /// files assigned to it round-robin (`file_index % size == rank`),
    /// restricts each tile to per-destination channel rows (an `Arc`
    /// bump, not a pack copy), and one `alltoallv` delivers every block
    /// to its owner.
    fn run_ca(&self, plan: &IoPlan) -> Result<Array2<f32>> {
        let comm = self.comm.expect("all-to-all plan needs a Comm");
        let _trace = obs::trace::scope_in(comm.registry(), "par_read.ca");
        let (rank, size) = (comm.rank(), comm.size());
        let my_rows = partition(plan.rows, size, rank);
        let total_cols = plan.cols;

        // 1. Independent contiguous reads of my round-robin files.
        let read_trace = obs::trace::scope_in(comm.registry(), "par_read.read");
        let t = std::time::Instant::now();
        let mut my_tiles: Vec<Tile> = Vec::new();
        for op in &plan.ops {
            if op.file_index % size == rank {
                my_tiles.push(Self::read_op(&plan.dataset, op)?);
            }
        }
        let read_ns = t.elapsed();
        drop(read_trace);

        // 2. Per-destination blocks: for each of my files (ascending
        //    file index), the destination's channel rows as a zero-copy
        //    row restriction of the whole-file tile.
        let t = std::time::Instant::now();
        let mut blocks: Vec<Vec<Tile>> = (0..size)
            .map(|_| Vec::with_capacity(my_tiles.len()))
            .collect();
        for tile in &my_tiles {
            for (dst, block) in blocks.iter_mut().enumerate() {
                block.push(tile.restrict(partition(plan.rows, size, dst)));
            }
        }
        let mut copy_ns = t.elapsed();

        // 3. One all-to-all exchange (concurrent pairwise transfers).
        let t = std::time::Instant::now();
        let received = comm.alltoallv_payload(blocks);
        let exchange_ns = t.elapsed();

        // 4. Assemble: tiles carry their own file index and column
        //    offset, so placement is direct.
        let _copy = obs::trace::scope_in(comm.registry(), "par_read.copy");
        let t = std::time::Instant::now();
        let mut local = Array2::<f32>::zeroed(my_rows.len(), total_cols);
        for block in received {
            for tile in block {
                debug_assert_eq!(tile.row_range(), my_rows, "exchange layout mismatch");
                local.paste(0, tile.t0(), tile.view());
            }
        }
        copy_ns += t.elapsed();
        let reg = comm.registry();
        reg.histogram(metric_names::CA_READ_NS)
            .record_duration(read_ns);
        reg.histogram(metric_names::CA_EXCHANGE_NS)
            .record_duration(exchange_ns);
        reg.histogram(metric_names::CA_COPY_NS)
            .record_duration(copy_ns);
        Ok(local)
    }

    /// [`IoExecutor::run_collective`] with retry/quarantine: before each
    /// data broadcast the aggregator broadcasts a small header (did the
    /// read succeed, and after how many retries), so every rank tracks
    /// the same quarantine set and retry total without extra
    /// collectives.
    fn run_collective_resilient(&self, plan: &IoPlan) -> Result<(Array2<f32>, ReadReport)> {
        let comm = self.comm.expect("collective plan needs a Comm");
        let _trace = obs::trace::scope_in(comm.registry(), "par_read.collective");
        let (rank, size) = (comm.rank(), comm.size());
        let my_rows = partition(plan.rows, size, rank);
        let total_cols = plan.cols;
        let mut local = Array2::<f32>::zeroed(my_rows.len(), total_cols);
        let mut quarantined = Vec::new();
        let mut io_retries = 0u64;
        let mut checksum_mismatches = 0u64;

        for op in &plan.ops {
            let root = op.file_index % size;
            let member = if rank == root {
                let _s = obs::trace::scope_in(comm.registry(), "par_read.read");
                self.read_op_with_retries(&plan.dataset, op)
            } else {
                MemberRead {
                    tile: None,
                    retries: 0,
                    mismatches: 0,
                }
            };
            let MemberRead {
                tile: payload,
                retries: my_retries,
                mismatches: my_mismatches,
            } = member;
            let (ok, retries, mismatches) = comm.try_bcast(
                root,
                (rank == root).then(|| (payload.is_some(), my_retries, my_mismatches)),
            )?;
            io_retries += retries;
            checksum_mismatches += mismatches;
            if !ok {
                // Quarantined: no data broadcast; the span stays zero.
                quarantined.push(op.file_index);
                continue;
            }
            let tile = comm.try_bcast_payload(root, payload)?;
            local.paste(0, op.t0, tile.restrict(my_rows.clone()).view());
        }
        let zero_samples = Self::zero_samples_of(plan, &quarantined);
        Ok((
            local,
            ReadReport {
                quarantined,
                io_retries,
                checksum_mismatches,
                zero_samples,
            },
        ))
    }

    /// [`IoExecutor::run_ca`] with retry/quarantine: after the local
    /// reads, one extra allgather merges every rank's quarantine list
    /// and retry count, so all ranks agree on which blocks the
    /// `alltoallv` will *not* carry; quarantined spans stay zero-filled.
    fn run_ca_resilient(&self, plan: &IoPlan) -> Result<(Array2<f32>, ReadReport)> {
        let comm = self.comm.expect("all-to-all plan needs a Comm");
        let _trace = obs::trace::scope_in(comm.registry(), "par_read.ca");
        let (rank, size) = (comm.rank(), comm.size());
        let my_rows = partition(plan.rows, size, rank);
        let total_cols = plan.cols;

        // 1. Independent contiguous reads of my round-robin files, with
        //    bounded retries; failures become local quarantine entries.
        let read_trace = obs::trace::scope_in(comm.registry(), "par_read.read");
        let mut my_tiles: Vec<Tile> = Vec::new();
        let mut my_quarantined: Vec<u64> = Vec::new();
        let mut my_retries = 0u64;
        let mut my_mismatches = 0u64;
        for op in &plan.ops {
            if op.file_index % size != rank {
                continue;
            }
            let member = self.read_op_with_retries(&plan.dataset, op);
            my_retries += member.retries;
            my_mismatches += member.mismatches;
            match member.tile {
                Some(tile) => my_tiles.push(tile),
                None => my_quarantined.push(op.file_index as u64),
            }
        }
        drop(read_trace);

        // 2. Agree on the global quarantine set and the retry/mismatch
        //    totals before the exchange, so receivers know which blocks
        //    will not arrive.
        let merged = comm.try_allgather((my_quarantined, my_retries, my_mismatches))?;
        let mut quarantined: Vec<usize> = merged
            .iter()
            .flat_map(|(q, _, _)| q.iter().map(|&fi| fi as usize))
            .collect();
        quarantined.sort_unstable();
        let io_retries: u64 = merged.iter().map(|(_, r, _)| r).sum();
        let checksum_mismatches: u64 = merged.iter().map(|(_, _, m)| m).sum();

        // 3. Per-destination blocks from the tiles that survived
        //    (quarantined files are simply absent from `my_tiles`).
        let mut blocks: Vec<Vec<Tile>> = (0..size)
            .map(|_| Vec::with_capacity(my_tiles.len()))
            .collect();
        for tile in &my_tiles {
            for (dst, block) in blocks.iter_mut().enumerate() {
                block.push(tile.restrict(partition(plan.rows, size, dst)));
            }
        }

        // 4. One all-to-all exchange (concurrent pairwise transfers).
        let received = comm.try_alltoallv_payload(blocks)?;

        // 5. Assemble; quarantined spans stay zero because their tiles
        //    were never read or sent.
        let _copy = obs::trace::scope_in(comm.registry(), "par_read.copy");
        let mut local = Array2::<f32>::zeroed(my_rows.len(), total_cols);
        for block in received {
            for tile in block {
                debug_assert_eq!(tile.row_range(), my_rows, "exchange layout mismatch");
                local.paste(0, tile.t0(), tile.view());
            }
        }
        let zero_samples = Self::zero_samples_of(plan, &quarantined);
        Ok((
            local,
            ReadReport {
                quarantined,
                io_retries,
                checksum_mismatches,
                zero_samples,
            },
        ))
    }

    /// Scrub `targets` with `threads` worker threads (clamped to ≥ 1):
    /// the `das_fsck` verification path, run through the same engine as
    /// the data reads. Returns the aggregate report, verdicts sorted by
    /// path.
    pub fn run_scrub(&self, targets: &[PathBuf], threads: usize) -> FsckReport {
        let threads = threads.clamp(1, targets.len().max(1));
        let next = AtomicUsize::new(0);
        let verdicts = Mutex::new(Vec::with_capacity(targets.len()));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(path) = targets.get(i) else { break };
                    let v = scrub_file(path);
                    verdicts.lock().unwrap().push(v);
                });
            }
        });
        let mut files = verdicts.into_inner().unwrap();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        FsckReport { files }
    }
}
