//! Zero-copy tiles: the unit of data the I/O executor moves.
//!
//! A [`Tile`] is a row range of one member file's `channel × time`
//! block, backed by a shared pooled buffer. Restricting a tile to a
//! destination's channel rows is an `Arc` bump plus a range — no pack
//! copy — and sending it through a `minimpi` collective moves the
//! handle while the byte counters account for the sample bytes the
//! handle references (see [`minimpi::WirePayload`]), so communication
//! statistics stay identical to the old deep-copy exchange.

use arrayudf::TileView;
use dasf::PooledBuf;
use std::ops::Range;
use std::sync::Arc;

/// A view of `rows` channel rows of one member file's data, destined
/// for global column offset `t0`.
#[derive(Clone, Debug)]
pub struct Tile {
    buf: Arc<PooledBuf<f32>>,
    /// Rows of the full backing buffer (the file's channel count).
    buf_rows: usize,
    /// Columns of the backing buffer (the file's sample count).
    buf_cols: usize,
    /// The channel rows this tile covers, in buffer coordinates.
    rows: Range<usize>,
    /// Index of the member file this tile came from.
    file_index: usize,
    /// Global column (time) offset where this tile lands.
    t0: usize,
}

impl Tile {
    /// Wrap a freshly read `buf_rows × buf_cols` buffer as a whole-file
    /// tile.
    ///
    /// # Panics
    /// Panics when `buf.len() != buf_rows * buf_cols`.
    pub fn whole(
        buf: PooledBuf<f32>,
        buf_rows: usize,
        buf_cols: usize,
        file_index: usize,
        t0: usize,
    ) -> Tile {
        assert_eq!(
            buf.len(),
            buf_rows * buf_cols,
            "tile buffer length does not match {buf_rows}x{buf_cols}"
        );
        Tile {
            buf: Arc::new(buf),
            buf_rows,
            buf_cols,
            rows: 0..buf_rows,
            file_index,
            t0,
        }
    }

    /// The same backing buffer restricted to `rows` (buffer
    /// coordinates) — an `Arc` clone, no copy.
    ///
    /// # Panics
    /// Panics when `rows` is not contained in this tile's row range.
    pub fn restrict(&self, rows: Range<usize>) -> Tile {
        assert!(
            rows.start >= self.rows.start && rows.end <= self.rows.end,
            "row restriction {rows:?} outside tile rows {:?}",
            self.rows
        );
        Tile {
            buf: Arc::clone(&self.buf),
            buf_rows: self.buf_rows,
            buf_cols: self.buf_cols,
            rows,
            file_index: self.file_index,
            t0: self.t0,
        }
    }

    /// The channel rows this tile covers, in buffer coordinates.
    pub fn row_range(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// Number of rows in the tile.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns in the tile (the member file's sample count).
    pub fn cols(&self) -> usize {
        self.buf_cols
    }

    /// Index of the member file this tile came from.
    pub fn file_index(&self) -> usize {
        self.file_index
    }

    /// Global column offset where this tile lands.
    pub fn t0(&self) -> usize {
        self.t0
    }

    /// Borrow the tile's samples as a (possibly strided) 2-D view,
    /// ready for [`arrayudf::Array2::paste`].
    pub fn view(&self) -> TileView<'_, f32> {
        let data = &self.buf[self.rows.start * self.buf_cols..self.rows.end * self.buf_cols];
        TileView::with_stride(self.rows.len(), self.buf_cols, self.buf_cols, data)
    }
}

/// Collectives moving tiles count the referenced sample bytes, exactly
/// what shipping the rows as a packed `Vec<f32>` would have counted.
impl minimpi::WirePayload for Tile {
    fn wire_bytes(&self) -> usize {
        self.rows.len() * self.buf_cols * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayudf::Array2;
    use minimpi::WirePayload;

    fn sample_tile(rows: usize, cols: usize) -> Tile {
        let mut buf = dasf::pool::f32s().acquire(rows * cols);
        buf.extend((0..rows * cols).map(|i| i as f32));
        Tile::whole(buf, rows, cols, 3, 7)
    }

    #[test]
    fn restrict_is_zero_copy_and_counts_referenced_bytes() {
        let tile = sample_tile(6, 5);
        assert_eq!(tile.wire_bytes(), 6 * 5 * 4);
        let sub = tile.restrict(2..4);
        assert_eq!(sub.wire_bytes(), 2 * 5 * 4);
        assert_eq!(sub.file_index(), 3);
        assert_eq!(sub.t0(), 7);
        // The view exposes exactly the restricted rows.
        assert_eq!(sub.view().row(0)[0], 10.0);
        assert_eq!(sub.view().row(1)[4], 19.0);
    }

    #[test]
    fn paste_from_restricted_tile_matches_manual_copy() {
        let tile = sample_tile(4, 3);
        let mut out = Array2::<f32>::zeroed(2, 5);
        out.paste(0, 2, tile.restrict(1..3).view());
        assert_eq!(out.get(0, 2), 3.0);
        assert_eq!(out.get(1, 4), 8.0);
        assert_eq!(out.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside tile rows")]
    fn restrict_outside_rows_panics() {
        sample_tile(4, 3).restrict(2..5);
    }
}
