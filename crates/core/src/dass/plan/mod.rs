//! The chunk-granular I/O planner: every DASS read is a plan, executed
//! by one engine.
//!
//! Historically each read path — serial region reads, the two §IV-B
//! parallel strategies, their resilient variants, RCA materialization —
//! carried its own loop over files, its own buffers, and its own copy
//! of the retry/quarantine policy. This module splits all of them into
//! two halves:
//!
//! 1. **Plan** ([`IoPlan`]): a description of *what* to read — one
//!    [`ReadOp`] per `(file, dataset, hyperslab)` producing a
//!    [`Tile`], plus the [`Exchange`] step that moves tiles to their
//!    owner ranks. Plans are built from a [`Vca`], a [`Lav`] region, or
//!    a single merged file, and are pure metadata: building one does no
//!    I/O.
//! 2. **Execute** ([`IoExecutor`]): the one engine that runs any plan —
//!    serial or collective, fail-fast or retry/quarantine
//!    ([`Resilience`]) — reading into pooled buffers
//!    ([`dasf::pool`]) and assembling zero-copy [`Tile`]s into the
//!    caller's `Array2`.
//!
//! The legacy entry points (`read_vca`, `read_region_f32`, …) survive
//! as one-line shims that build a plan and run it, so both §IV-B
//! strategies, the resilient readers, LAV/RCA materialization and the
//! `das_fsck` scrub all funnel through this module.

mod exec;
mod tile;

pub use dasf::pool;
pub use exec::{IoExecutor, Resilience};
pub use tile::Tile;

use super::lav::Lav;
use super::metadata::{DasFileMeta, DATASET_PATH};
use super::par_read::ReadStrategy;
use super::vca::Vca;
use crate::{DassaError, Result};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// One chunk-granular read: open `path`, read `selection` (or the whole
/// dataset) as a `rows × cols` tile destined for global column `t0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOp {
    /// Index of the member file (drives owner-rank assignment and
    /// quarantine bookkeeping; both strategies give file `i` to rank
    /// `i % size`).
    pub file_index: usize,
    /// The file to open.
    pub path: PathBuf,
    /// Channel rows this op produces.
    pub rows: usize,
    /// Time samples this op produces.
    pub cols: usize,
    /// Hyperslab `[(row_offset, rows), (col_offset, cols)]`, or `None`
    /// for the whole dataset (one contiguous I/O call).
    pub selection: Option<[(u64, u64); 2]>,
    /// Global column (time) offset where the tile lands.
    pub t0: usize,
}

impl ReadOp {
    /// Payload bytes this op reads.
    pub fn bytes(&self) -> u64 {
        (self.rows * self.cols * std::mem::size_of::<f32>()) as u64
    }
}

/// How tiles travel from the rank that read them to the rank that owns
/// their channel rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exchange {
    /// No exchange: the executing rank performs every op itself
    /// (serial region reads, single-file reads).
    None,
    /// Collective-per-file (Figure 5a): op `i` is read by rank
    /// `i % size` and broadcast whole; every rank keeps its rows.
    BcastPerFile,
    /// Communication-avoiding (Figure 5b): ops are dealt round-robin,
    /// then a single `alltoallv` of row-restricted tiles delivers every
    /// channel block to its owner.
    AllToAll,
}

impl Exchange {
    /// The exchange step implementing a *resolved* [`ReadStrategy`].
    ///
    /// # Panics
    /// Panics on [`ReadStrategy::Auto`] — resolve it first.
    pub fn for_strategy(strategy: ReadStrategy) -> Exchange {
        match strategy {
            ReadStrategy::CollectivePerFile => Exchange::BcastPerFile,
            ReadStrategy::CommAvoiding => Exchange::AllToAll,
            ReadStrategy::Auto => unreachable!("resolve the strategy before planning"),
        }
    }
}

/// A complete read plan: the DAG of [`ReadOp`]s (all independent),
/// followed by one [`Exchange`] step, producing a `rows × cols` logical
/// array (of which each rank owns `partition(rows, size, rank)` when
/// the plan is distributed).
#[derive(Debug, Clone)]
pub struct IoPlan {
    /// Dataset path inside each member file.
    pub dataset: String,
    /// Channel rows of the logical output.
    pub rows: usize,
    /// Time samples of the logical output.
    pub cols: usize,
    /// The reads, ascending by `file_index`.
    pub ops: Vec<ReadOp>,
    /// How tiles reach their owner ranks.
    pub exchange: Exchange,
}

impl IoPlan {
    /// Plan a full-extent parallel read of `vca` for a world of
    /// `ranks`, with `strategy` resolved per [`ReadStrategy::resolve`].
    pub fn for_vca(vca: &Vca, strategy: ReadStrategy, ranks: usize) -> IoPlan {
        let resolved = strategy.resolve(ranks, vca.n_files());
        let channels = vca.channels() as usize;
        let ops = vca
            .entries()
            .iter()
            .enumerate()
            .map(|(fi, entry)| ReadOp {
                file_index: fi,
                path: entry.path.clone(),
                rows: channels,
                cols: vca.samples_of(fi) as usize,
                selection: None,
                t0: vca.time_offset_of(fi) as usize,
            })
            .collect();
        IoPlan {
            dataset: DATASET_PATH.to_string(),
            rows: channels,
            cols: vca.total_samples() as usize,
            ops,
            exchange: Exchange::for_strategy(resolved),
        }
    }

    /// Plan a serial read of a rectangular region (channel range ×
    /// global time range) of `vca`: one hyperslab op per member file
    /// the time range touches.
    pub fn for_region(vca: &Vca, ch: Range<u64>, t: Range<u64>) -> Result<IoPlan> {
        if ch.end > vca.channels() || ch.start >= ch.end {
            return Err(DassaError::BadSelection(format!(
                "channel range {ch:?} invalid for {} channels",
                vca.channels()
            )));
        }
        if t.end > vca.total_samples() || t.start >= t.end {
            return Err(DassaError::BadSelection(format!(
                "time range {t:?} invalid for {} samples",
                vca.total_samples()
            )));
        }
        let rows = (ch.end - ch.start) as usize;
        let cols = (t.end - t.start) as usize;
        let mut ops = Vec::new();
        let mut col_cursor = 0usize;
        for (fi, local) in vca.map_time_range(t) {
            let width = (local.end - local.start) as usize;
            ops.push(ReadOp {
                file_index: fi,
                path: vca.entries()[fi].path.clone(),
                rows,
                cols: width,
                selection: Some([
                    (ch.start, ch.end - ch.start),
                    (local.start, local.end - local.start),
                ]),
                t0: col_cursor,
            });
            col_cursor += width;
        }
        Ok(IoPlan {
            dataset: DATASET_PATH.to_string(),
            rows,
            cols,
            ops,
            exchange: Exchange::None,
        })
    }

    /// Plan the serial materialization of a [`Lav`] over `vca`.
    pub fn for_lav(vca: &Vca, lav: &Lav) -> Result<IoPlan> {
        IoPlan::for_region(vca, lav.channel_range(), lav.time_range())
    }

    /// Lower a compiled `dasl` `load(...)` clause into a plan — how the
    /// pipeline language's front end meets this planner.
    ///
    /// The clause's time window is in **seconds**; it converts to sample
    /// columns with the corpus' sampling rate, clamped to the corpus
    /// extent (asking for `0..3600` of a 60 s corpus reads all of it).
    /// Windowed loads plan serial region reads ([`IoPlan::for_region`],
    /// the same path as `Vca::read_all_f64`); full-extent loads on more
    /// than one rank plan a §IV-B parallel read with the clause's
    /// strategy — `auto` resolves heuristically, `modeled` prices both
    /// strategies on [`perfmodel::Machine::cori_haswell`].
    pub fn for_load(vca: &Vca, spec: &dasl::LoadSpec, ranks: usize) -> Result<IoPlan> {
        let hz = vca.sampling_hz().max(1) as u64;
        let windowed = spec.time.is_some() || spec.channels.is_some();
        if windowed && ranks > 1 {
            return Err(DassaError::BadSelection(
                "a windowed load (t=/ch=) plans a serial region read; drop --ranks or load \
                 the full extent"
                    .to_string(),
            ));
        }
        if ranks > 1 {
            return Ok(match spec.strategy {
                dasl::Strategy::Auto => IoPlan::for_vca(vca, ReadStrategy::Auto, ranks),
                dasl::Strategy::Collective => {
                    IoPlan::for_vca(vca, ReadStrategy::CollectivePerFile, ranks)
                }
                dasl::Strategy::CommAvoiding => {
                    IoPlan::for_vca(vca, ReadStrategy::CommAvoiding, ranks)
                }
                dasl::Strategy::Modeled => {
                    for_vca_modeled(vca, &perfmodel::Machine::cori_haswell(), ranks)
                }
            });
        }
        let ch = match spec.channels {
            Some((a, b)) => a..b,
            None => 0..vca.channels(),
        };
        let t = match spec.time {
            Some((t0, t1)) => {
                let start = t0 * hz;
                let end = (t1 * hz).min(vca.total_samples());
                if start >= vca.total_samples() {
                    return Err(DassaError::BadSelection(format!(
                        "load time window {t0}..{t1} s starts past the corpus ({} s)",
                        vca.total_samples() / hz
                    )));
                }
                start..end
            }
            None => 0..vca.total_samples(),
        };
        IoPlan::for_region(vca, ch, t)
    }

    /// Plan a whole-file read of one merged (RCA) file with the given
    /// shape.
    pub fn for_file(path: &Path, meta: &DasFileMeta) -> IoPlan {
        IoPlan {
            dataset: DATASET_PATH.to_string(),
            rows: meta.channels as usize,
            cols: meta.samples as usize,
            ops: vec![ReadOp {
                file_index: 0,
                path: path.to_path_buf(),
                rows: meta.channels as usize,
                cols: meta.samples as usize,
                selection: None,
                t0: 0,
            }],
            exchange: Exchange::None,
        }
    }

    /// Total payload bytes the plan reads.
    pub fn total_bytes(&self) -> u64 {
        self.ops.iter().map(ReadOp::bytes).sum()
    }
}

/// Model-driven strategy choice: price both §IV-B strategies on a
/// [`perfmodel::Machine`] and take the cheaper.
///
/// Additive to the heuristic [`ReadStrategy::resolve`] (which stays the
/// default): collective-per-file serializes `files` reads on one
/// aggregator at a time and broadcasts every file whole, while
/// communication-avoiding spreads reads across ranks and pays a single
/// all-to-all of `total/ranks` bytes per rank.
///
/// Codec-aware (DASF v4): `stored_bytes_per_file` is what actually
/// leaves the disks, so I/O is priced on it, while broadcast and
/// all-to-all move *decoded* granules and are priced on
/// `raw_bytes_per_file`. When the files are compressed
/// (`stored < raw`), decode CPU time is charged where decoding happens:
/// the collective aggregator decodes every file serially before
/// broadcasting, whereas communication-avoiding readers each decode
/// only their own share — a cranked-up decode rate therefore pushes the
/// model toward [`ReadStrategy::CommAvoiding`].
pub fn choose_strategy_modeled(
    machine: &perfmodel::Machine,
    ranks: usize,
    files: usize,
    raw_bytes_per_file: u64,
    stored_bytes_per_file: u64,
) -> ReadStrategy {
    if ranks <= 1 || files == 0 {
        return ReadStrategy::CollectivePerFile;
    }
    let n = files as u64;
    let raw_total = n * raw_bytes_per_file;
    let stored_total = n * stored_bytes_per_file;
    let per_rank_files = files.div_ceil(ranks) as u64;
    // Per-unit raw fallback means stored == raw is effectively an
    // uncompressed dataset: no decode stage to pay for.
    let decode_per_file = if stored_bytes_per_file < raw_bytes_per_file {
        machine.decode_time(raw_bytes_per_file)
    } else {
        0.0
    };
    let collective = machine.open_time(n)
        + machine.read_time(1, 1, n, stored_total)
        + n as f64 * decode_per_file
        + files as f64 * machine.bcast_time(ranks, raw_bytes_per_file);
    let readers = ranks.min(files);
    let comm_avoiding = machine.open_time(per_rank_files)
        + machine.read_time(
            1,
            readers,
            per_rank_files,
            per_rank_files * stored_bytes_per_file,
        )
        + per_rank_files as f64 * decode_per_file
        + machine.alltoallv_time(ranks, raw_total / ranks as u64);
    if comm_avoiding <= collective {
        ReadStrategy::CommAvoiding
    } else {
        ReadStrategy::CollectivePerFile
    }
}

/// [`IoPlan::for_vca`] with the strategy chosen by
/// [`choose_strategy_modeled`] instead of the heuristic.
///
/// The stored (on-disk) size is sampled from the first member's
/// metadata — one cheap metadata-only open. Files written raw, v3
/// files, and files that cannot be opened here all price as
/// uncompressed (`stored == raw`).
pub fn for_vca_modeled(vca: &Vca, machine: &perfmodel::Machine, ranks: usize) -> IoPlan {
    let raw_bytes_per_file = if vca.n_files() == 0 {
        0
    } else {
        vca.channels() * vca.samples_of(0) * std::mem::size_of::<f32>() as u64
    };
    let stored_bytes_per_file = vca
        .entries()
        .first()
        .and_then(|e| dasf::File::open(&e.path).ok())
        .and_then(|f| {
            f.dataset(DATASET_PATH)
                .ok()
                .filter(|m| m.is_compressed())
                .map(|m| m.stored_byte_len())
        })
        .unwrap_or(raw_bytes_per_file);
    let strategy = choose_strategy_modeled(
        machine,
        ranks,
        vca.n_files(),
        raw_bytes_per_file,
        stored_bytes_per_file,
    );
    IoPlan::for_vca(vca, strategy, ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dass::search::tests::make_files;
    use crate::dass::FileCatalog;

    fn sample_vca(tag: &str, files: usize, channels: u64, samples: u64) -> Vca {
        let dir = make_files(tag, "170728224510", files, channels, samples);
        let cat = FileCatalog::scan(&dir).unwrap();
        Vca::from_entries(cat.entries()).unwrap()
    }

    #[test]
    fn vca_plan_covers_every_file_in_order() {
        let vca = sample_vca("plan-vca", 4, 6, 30);
        let plan = IoPlan::for_vca(&vca, ReadStrategy::CommAvoiding, 2);
        assert_eq!(plan.exchange, Exchange::AllToAll);
        assert_eq!(plan.rows, 6);
        assert_eq!(plan.cols, 120);
        assert_eq!(plan.ops.len(), 4);
        for (i, op) in plan.ops.iter().enumerate() {
            assert_eq!(op.file_index, i);
            assert_eq!(op.rows, 6);
            assert_eq!(op.cols, 30);
            assert_eq!(op.t0, i * 30);
            assert_eq!(op.selection, None);
        }
        assert_eq!(plan.total_bytes(), 4 * 6 * 30 * 4);
    }

    #[test]
    fn auto_resolution_matches_read_strategy_resolve() {
        let vca = sample_vca("plan-auto", 4, 4, 10);
        // 4 files ≥ 2 ranks → communication-avoiding.
        let plan = IoPlan::for_vca(&vca, ReadStrategy::Auto, 2);
        assert_eq!(plan.exchange, Exchange::AllToAll);
        // Single rank → collective-per-file.
        let plan = IoPlan::for_vca(&vca, ReadStrategy::Auto, 1);
        assert_eq!(plan.exchange, Exchange::BcastPerFile);
        // More ranks than files → collective-per-file.
        let plan = IoPlan::for_vca(&vca, ReadStrategy::Auto, 9);
        assert_eq!(plan.exchange, Exchange::BcastPerFile);
    }

    #[test]
    fn region_plan_splits_at_file_boundaries() {
        let vca = sample_vca("plan-region", 3, 4, 60);
        let plan = IoPlan::for_region(&vca, 1..3, 50..130).unwrap();
        assert_eq!(plan.exchange, Exchange::None);
        assert_eq!((plan.rows, plan.cols), (2, 80));
        let shapes: Vec<(usize, usize, usize)> = plan
            .ops
            .iter()
            .map(|op| (op.file_index, op.cols, op.t0))
            .collect();
        assert_eq!(shapes, vec![(0, 10, 0), (1, 60, 10), (2, 10, 70)]);
        assert_eq!(plan.ops[1].selection, Some([(1, 2), (0, 60)]));
    }

    #[test]
    fn region_plan_validates_like_the_reader() {
        let vca = sample_vca("plan-bad", 2, 3, 30);
        assert!(IoPlan::for_region(&vca, 0..4, 0..10).is_err());
        assert!(IoPlan::for_region(&vca, 2..2, 0..10).is_err());
        assert!(IoPlan::for_region(&vca, 0..1, 0..61).is_err());
        assert!(IoPlan::for_region(&vca, 0..1, 10..10).is_err());
    }

    #[test]
    fn modeled_choice_prefers_comm_avoiding_at_scale() {
        let m = perfmodel::Machine::cori_haswell();
        // Many files across many ranks: the paper's Figure 7 regime.
        // Uncompressed corpus: stored == raw.
        assert_eq!(
            choose_strategy_modeled(&m, 8, 64, 30 << 20, 30 << 20),
            ReadStrategy::CommAvoiding
        );
        // Degenerate single-rank world: nothing to exchange.
        assert_eq!(
            choose_strategy_modeled(&m, 1, 64, 30 << 20, 30 << 20),
            ReadStrategy::CollectivePerFile
        );
    }

    #[test]
    fn modeled_choice_flips_when_decode_dominates() {
        // Perfmodel honesty check: the decode term must be able to
        // change the answer, not just nudge the totals. Few small
        // compressed files across many ranks, free opens, fat message
        // latency: broadcasting 4 files costs 4·⌈log₂ 64⌉ = 24 latency
        // rounds against the all-to-all's 63, so collective-per-file
        // wins while decode is free. Crank the decode rate and the
        // aggregator pays it 4× (once per file, serially) against a
        // comm-avoiding reader's 1× — the choice must flip.
        let m = perfmodel::Machine {
            file_open_s: 0.0,
            net_latency: 1e-3,
            decode_ns_per_byte: 0.0,
            ..perfmodel::Machine::cori_haswell()
        };
        let (ranks, files) = (64, 4);
        let raw = 1u64 << 20;
        let stored = raw / 2;
        assert_eq!(
            choose_strategy_modeled(&m, ranks, files, raw, stored),
            ReadStrategy::CollectivePerFile
        );
        let slow_decode = perfmodel::Machine {
            decode_ns_per_byte: 50.0,
            ..m.clone()
        };
        assert_eq!(
            choose_strategy_modeled(&slow_decode, ranks, files, raw, stored),
            ReadStrategy::CommAvoiding
        );
        // Uncompressed files (stored == raw) never pay decode, so the
        // cranked rate must not leak into their pricing.
        assert_eq!(
            choose_strategy_modeled(&slow_decode, ranks, files, raw, raw),
            ReadStrategy::CollectivePerFile
        );
    }
}
