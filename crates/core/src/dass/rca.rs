//! The Really Concatenated Array: physically merge DAS files into one.
//!
//! The paper's Table I / Figure 6 comparison point: RCA doubles storage
//! during construction and must move every byte, but yields a single
//! large file that parallel I/O handles well. DASSA supports it mainly
//! as a baseline; VCA is the recommended path.

use super::metadata::{write_das_file, DasFileMeta};
use super::par_read::ReadStrategy;
use super::plan::{IoExecutor, IoPlan};
use super::search::FileEntry;
use super::vca::Vca;
use crate::Result;
use arrayudf::Array2;
use dasf::File;
use minimpi::Comm;
use std::path::Path;

/// Physically concatenate `entries` into a single DAS file at `out`.
///
/// Reads every member's full data (this is what makes RCA construction
/// ~70,000× slower than VCA construction in the paper's Figure 6) and
/// writes one merged `channel × (Σ samples)` dataset carrying the first
/// member's acquisition metadata.
///
/// Returns the merged file's metadata.
pub fn create_rca(entries: &[FileEntry], out: &Path) -> Result<DasFileMeta> {
    let vca = Vca::from_entries(entries)?;
    let data = vca.read_all_f32()?;
    let meta = vca.merged_meta();
    write_das_file(out, &meta, &data)?;
    Ok(meta)
}

/// Parallel RCA construction: ranks read the VCA with the
/// communication-avoiding strategy, gather channel blocks to rank 0,
/// and rank 0 writes the merged file (the paper notes that *reading* a
/// single large file in parallel is well supported; writing one from
/// many ranks without MPI-IO is not, so the write is funnelled).
///
/// Call from inside a `minimpi::run` world; returns the merged metadata
/// on rank 0, `None` elsewhere.
pub fn create_rca_parallel(
    comm: &Comm,
    entries: &[FileEntry],
    out: &Path,
) -> Result<Option<DasFileMeta>> {
    let vca = Vca::from_entries(entries)?;
    let plan = IoPlan::for_vca(&vca, ReadStrategy::CommAvoiding, comm.size());
    let (local, _) = IoExecutor::new(comm).run(&plan)?;
    let blocks = comm.gather(0, local.into_vec());
    if comm.rank() != 0 {
        return Ok(None);
    }
    let cols = vca.total_samples() as usize;
    let arrays: Vec<Array2<f32>> = blocks
        .expect("rank 0 gathers")
        .into_iter()
        .map(|v| {
            let rows = v.len().checked_div(cols).unwrap_or(0);
            Array2::from_vec(rows, cols, v)
        })
        .collect();
    let data = Array2::vstack(&arrays);
    let meta = vca.merged_meta();
    write_das_file(out, &meta, &data)?;
    Ok(Some(meta))
}

/// Read a previously created RCA back as `(metadata, data)`: a
/// single-op whole-file plan run by the serial executor.
pub fn read_rca(path: &Path) -> Result<(DasFileMeta, Array2<f32>)> {
    let meta = {
        let f = File::open(path)?;
        DasFileMeta::from_file(&f)?
    };
    let plan = IoPlan::for_file(path, &meta);
    let (data, _) = IoExecutor::serial().run(&plan)?;
    Ok((meta, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dass::search::tests::make_files;
    use crate::dass::FileCatalog;

    #[test]
    fn rca_equals_vca_read() {
        let dir = make_files("rca-eq", "170728224510", 3, 4, 30);
        let cat = FileCatalog::scan(&dir).unwrap();
        let vca = Vca::from_entries(cat.entries()).unwrap();

        let out = dir.join("merged.rca.dasf");
        let meta = create_rca(cat.entries(), &out).unwrap();
        assert_eq!(meta.channels, 4);
        assert_eq!(meta.samples, 90);

        let (meta2, data) = read_rca(&out).unwrap();
        assert_eq!(meta2, meta);
        assert_eq!(data, vca.read_all_f32().unwrap());
    }

    #[test]
    fn parallel_rca_equals_serial_rca() {
        let dir = make_files("rca-par", "170728224510", 4, 6, 30);
        let cat = FileCatalog::scan(&dir).unwrap();
        let serial_path = dir.join("serial.rca.dasf");
        create_rca(cat.entries(), &serial_path).unwrap();
        let (_, serial_data) = read_rca(&serial_path).unwrap();

        for ranks in [1usize, 2, 3] {
            let par_path = dir.join(format!("par{ranks}.rca.dasf"));
            let entries = cat.entries().to_vec();
            let metas = minimpi::run(ranks, |comm| {
                create_rca_parallel(comm, &entries, &par_path).unwrap()
            });
            assert!(metas[0].is_some(), "rank 0 returns metadata");
            assert!(metas[1..].iter().all(Option::is_none));
            let (_, par_data) = read_rca(&par_path).unwrap();
            assert_eq!(par_data, serial_data, "ranks={ranks}");
        }
    }

    #[test]
    fn rca_takes_first_timestamp() {
        let dir = make_files("rca-ts", "170728224510", 2, 2, 30);
        let cat = FileCatalog::scan(&dir).unwrap();
        let out = dir.join("merged.rca.dasf");
        let meta = create_rca(cat.entries(), &out).unwrap();
        assert_eq!(meta.timestamp.to_compact(), "170728224510");
    }

    #[test]
    fn rca_output_is_checksummed_and_verifies_clean() {
        // The RCA writer goes through dasf::Writer, so the merged file
        // inherits the v3 integrity layer: a full scrub passes, and a
        // flipped byte in the merged payload is detected.
        let dir = make_files("rca-verify", "170728224510", 3, 4, 30);
        let cat = FileCatalog::scan(&dir).unwrap();
        let out = dir.join("merged.rca.dasf");
        create_rca(cat.entries(), &out).unwrap();

        let f = File::open(&out).unwrap();
        assert_eq!(f.version(), dasf::Version::V4);
        let v = f.verify_all().unwrap();
        assert!(v.is_clean());
        assert_eq!(v.unverified_datasets, 0);
        drop(f);

        let mut bytes = std::fs::read(&out).unwrap();
        bytes[30] ^= 0x10; // inside the merged payload
        std::fs::write(&out, &bytes).unwrap();
        assert!(matches!(
            read_rca(&out),
            Err(crate::DassaError::Dasf(
                dasf::DasfError::ChecksumMismatch { .. }
            ))
        ));
    }

    #[test]
    fn failed_rca_write_leaves_no_partial_file() {
        // Crash-consistency inherited from dasf::Writer: when the
        // injected write fault kills RCA construction, neither the final
        // path nor its temp staging file survives.
        use faultline::{site, FaultPlan};
        use std::sync::Arc;
        let dir = make_files("rca-abort", "170728224510", 2, 3, 20);
        let cat = FileCatalog::scan(&dir).unwrap();
        let out = dir.join("aborted.rca.dasf");
        let plan = Arc::new(FaultPlan::new(11).with(site::DASF_WRITE_ERR, 1.0));
        faultline::with_plan(plan, || {
            assert!(create_rca(cat.entries(), &out).is_err());
        });
        assert!(!out.exists(), "no torn RCA at the final path");
        let tmp = {
            let mut os = out.clone().into_os_string();
            os.push(".tmp");
            std::path::PathBuf::from(os)
        };
        assert!(!tmp.exists(), "staging file cleaned up");
    }

    #[test]
    fn rca_file_is_larger_than_vca_descriptor() {
        // Table I: RCA needs ~100% extra space, VCA ~0%.
        let dir = make_files("rca-size", "170728224510", 3, 4, 60);
        let cat = FileCatalog::scan(&dir).unwrap();
        let vca = Vca::from_entries(cat.entries()).unwrap();
        let rca_path = dir.join("merged.rca.dasf");
        let vca_path = dir.join("merged.vca.dasf");
        create_rca(cat.entries(), &rca_path).unwrap();
        vca.save(&vca_path).unwrap();
        let rca_size = std::fs::metadata(&rca_path).unwrap().len();
        let vca_size = std::fs::metadata(&vca_path).unwrap().len();
        let data_size: u64 = 3 * 4 * 60 * 4; // files × ch × samples × f32
        assert!(rca_size >= data_size, "RCA must duplicate all data");
        assert!(vca_size < data_size / 4, "VCA must stay metadata-sized");
    }
}
