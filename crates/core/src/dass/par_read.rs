//! Parallel VCA readers (paper §IV-B, Figure 5).
//!
//! Both strategies deliver to each rank its contiguous *channel block*
//! of the VCA's full time extent — the decomposition every DASSA
//! analysis uses — but differ in how bytes travel:
//!
//! * **collective-per-file**: all ranks share each file in turn. One
//!   aggregator rank reads the file and *broadcasts* it; every rank then
//!   keeps its channel rows. That is the "merge-read-broadcast" pattern
//!   of collective I/O: O(n) broadcasts for n files, each moving the
//!   whole file to every rank.
//!
//! * **communication-avoiding** (the paper's contribution): files are
//!   dealt round-robin; each rank reads *whole files* with one contiguous
//!   I/O call each, then a single all-to-all exchange redistributes
//!   channel blocks. Communication drops to O(n/p) exchange steps of
//!   exactly the needed bytes, and reads are contiguous and concurrent.
//!
//! Both return bit-identical arrays (property-tested), so callers choose
//! purely on performance — Figure 7 measures ~37× in favour of
//! communication-avoiding.
//!
//! Since the planner refactor, every function here is a thin shim:
//! it builds an [`IoPlan`](super::plan::IoPlan) describing the read and
//! hands it to the one [`IoExecutor`](super::plan::IoExecutor), which
//! reproduces the legacy collective sequences, fault handling and
//! instrumentation exactly (see `dass::plan`).

use super::plan::{IoExecutor, IoPlan};
use super::vca::Vca;
use crate::Result;
use arrayudf::Array2;
use minimpi::Comm;

/// Which §IV-B strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStrategy {
    /// "Collective-per-file": one broadcast per member file.
    CollectivePerFile,
    /// The paper's communication-avoiding method.
    CommAvoiding,
    /// Pick per Figure 7: communication-avoiding when it can spread whole
    /// files across ranks (`ranks > 1 && files >= ranks`), else
    /// collective-per-file (single rank, or ranks that would sit idle in
    /// the round-robin deal).
    Auto,
}

impl ReadStrategy {
    /// The concrete strategy [`ReadStrategy::Auto`] resolves to for a
    /// world of `ranks` reading `files` member files.
    pub fn resolve(self, ranks: usize, files: usize) -> ReadStrategy {
        match self {
            ReadStrategy::Auto => {
                if ranks > 1 && files >= ranks {
                    ReadStrategy::CommAvoiding
                } else {
                    ReadStrategy::CollectivePerFile
                }
            }
            other => other,
        }
    }
}

/// Metric names recorded by the parallel readers, in the world's
/// registry (see [`minimpi::Comm::registry`]) and aggregated globally.
pub mod metric_names {
    /// File-read time (ns) inside the collective-per-file reader.
    pub const COLLECTIVE_READ_NS: &str = "dass.par_read.collective.read_ns";
    /// Broadcast time (ns) inside the collective-per-file reader.
    pub const COLLECTIVE_EXCHANGE_NS: &str = "dass.par_read.collective.exchange_ns";
    /// Row-copy/assembly time (ns) inside the collective-per-file reader.
    pub const COLLECTIVE_COPY_NS: &str = "dass.par_read.collective.copy_ns";
    /// File-read time (ns) inside the communication-avoiding reader.
    pub const CA_READ_NS: &str = "dass.par_read.comm_avoiding.read_ns";
    /// All-to-all exchange time (ns) inside the communication-avoiding reader.
    pub const CA_EXCHANGE_NS: &str = "dass.par_read.comm_avoiding.exchange_ns";
    /// Pack/assembly time (ns) inside the communication-avoiding reader.
    pub const CA_COPY_NS: &str = "dass.par_read.comm_avoiding.copy_ns";
    /// Member files quarantined by the resilient readers (counted once,
    /// on the owner rank, when the retry budget is exhausted).
    pub const QUARANTINED: &str = "par_read.quarantined";
    /// Repeated member-file read attempts in the resilient readers
    /// (counted once per repeat, on the owner rank).
    pub const RETRIES: &str = "par_read.retries";
    /// Member-file read attempts that failed with a dasf checksum
    /// mismatch (real bit-rot detected by the v3 integrity layer).
    pub const CHECKSUM_MISMATCH: &str = "par_read.checksum_mismatch";
}

/// Read attempts per member file in the resilient readers before the
/// file is quarantined.
pub const MAX_READ_ATTEMPTS: u32 = 3;

/// What a resilient read survived: which member files were quarantined
/// (skipped, their span zero-filled), and how hard the world worked to
/// avoid quarantining more.
///
/// The report is **identical on every rank and across both read
/// strategies** for a given (VCA, world size, fault plan): quarantine
/// decisions depend only on per-file fault schedules keyed by file name
/// and index, and both strategies give file `fi` to owner rank
/// `fi % size`. Communication-level retries are deliberately *not* in
/// here — the two strategies issue different collective sequences, so
/// their `minimpi.retries` legitimately differ.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadReport {
    /// Indices (into [`Vca::entries`]) of quarantined member files,
    /// ascending.
    pub quarantined: Vec<usize>,
    /// World-total repeated read attempts (sum over all ranks).
    pub io_retries: u64,
    /// World-total member-read attempts that failed with a
    /// [`dasf::DasfError::ChecksumMismatch`] — detected bit-rot, as
    /// opposed to I/O errors or truncation.
    pub checksum_mismatches: u64,
    /// Total f32 samples zero-filled across the full VCA extent
    /// (`channels × samples` summed over quarantined files).
    pub zero_samples: u64,
}

impl ReadReport {
    /// True when every member file was read cleanly on the first try.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.io_retries == 0 && self.checksum_mismatches == 0
    }
}

/// Read `vca` in parallel with the chosen strategy; returns this rank's
/// channel block (rows `partition(channels, size, rank)`, all samples).
pub fn read_vca(comm: &Comm, vca: &Vca, strategy: ReadStrategy) -> Result<Array2<f32>> {
    let plan = IoPlan::for_vca(vca, strategy, comm.size());
    Ok(IoExecutor::new(comm).run(&plan)?.0)
}

/// "Collective-per-file" (Figure 5a): for each member file, the
/// aggregator rank `file_index % size` reads the whole file and
/// broadcasts it; every rank copies out its channel rows.
pub fn read_collective_per_file(comm: &Comm, vca: &Vca) -> Result<Array2<f32>> {
    read_vca(comm, vca, ReadStrategy::CollectivePerFile)
}

/// Communication-avoiding (Figure 5b): each rank reads the whole files
/// assigned to it round-robin (`fi % size == rank`), restricts them
/// into per-destination channel-row tiles, and one `alltoallv` delivers
/// every block to its owner.
pub fn read_comm_avoiding(comm: &Comm, vca: &Vca) -> Result<Array2<f32>> {
    read_vca(comm, vca, ReadStrategy::CommAvoiding)
}

/// Resilient variant of [`read_vca`]: unreadable member files are retried
/// up to [`MAX_READ_ATTEMPTS`] times, then *quarantined* — skipped, their
/// span zero-filled — instead of failing the whole read. Returns this
/// rank's channel block plus a [`ReadReport`] that is identical on every
/// rank.
///
/// Communication failures (a dead rank in a [`minimpi::run_chaos`]
/// world) still return `Err` — resilience covers data, not the world.
pub fn read_vca_resilient(
    comm: &Comm,
    vca: &Vca,
    strategy: ReadStrategy,
) -> Result<(Array2<f32>, ReadReport)> {
    let plan = IoPlan::for_vca(vca, strategy, comm.size());
    IoExecutor::resilient(comm).run(&plan)
}

/// [`read_collective_per_file`] with retry/quarantine: before each data
/// broadcast the aggregator broadcasts a small header (did the read
/// succeed, and after how many retries), so every rank tracks the same
/// quarantine set and retry total without extra collectives.
pub fn read_collective_per_file_resilient(
    comm: &Comm,
    vca: &Vca,
) -> Result<(Array2<f32>, ReadReport)> {
    read_vca_resilient(comm, vca, ReadStrategy::CollectivePerFile)
}

/// [`read_comm_avoiding`] with retry/quarantine: after the local reads,
/// one extra allgather merges every rank's quarantine list and retry
/// count, so all ranks agree on which blocks the `alltoallv` will *not*
/// carry; quarantined spans stay zero-filled.
pub fn read_comm_avoiding_resilient(comm: &Comm, vca: &Vca) -> Result<(Array2<f32>, ReadReport)> {
    read_vca_resilient(comm, vca, ReadStrategy::CommAvoiding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dass::search::tests::make_files;
    use crate::dass::FileCatalog;
    use faultline::{site, FaultPlan};
    use minimpi::{run_chaos, RetryPolicy};
    use std::sync::Arc;

    fn sample_vca(tag: &str, files: usize, channels: u64, samples: u64) -> Vca {
        let dir = make_files(tag, "170728224510", files, channels, samples);
        let cat = FileCatalog::scan(&dir).unwrap();
        Vca::from_entries(cat.entries()).unwrap()
    }

    fn run_and_gather(vca: &Vca, ranks: usize, strategy: ReadStrategy) -> Array2<f32> {
        let blocks = minimpi::run(ranks, |comm| {
            read_vca(comm, vca, strategy).expect("parallel read")
        });
        Array2::vstack(&blocks)
    }

    #[test]
    fn collective_per_file_matches_serial() {
        let vca = sample_vca("par-coll", 4, 6, 30);
        let serial = vca.read_all_f32().unwrap();
        for ranks in [1usize, 2, 3, 6] {
            let out = run_and_gather(&vca, ranks, ReadStrategy::CollectivePerFile);
            assert_eq!(out, serial, "ranks={ranks}");
        }
    }

    #[test]
    fn comm_avoiding_matches_serial() {
        let vca = sample_vca("par-ca", 5, 6, 30);
        let serial = vca.read_all_f32().unwrap();
        for ranks in [1usize, 2, 3, 4, 7] {
            let out = run_and_gather(&vca, ranks, ReadStrategy::CommAvoiding);
            assert_eq!(out, serial, "ranks={ranks}");
        }
    }

    #[test]
    fn strategies_agree_with_more_ranks_than_files() {
        let vca = sample_vca("par-more", 2, 8, 20);
        let a = run_and_gather(&vca, 5, ReadStrategy::CollectivePerFile);
        let b = run_and_gather(&vca, 5, ReadStrategy::CommAvoiding);
        assert_eq!(a, b);
    }

    #[test]
    fn broadcast_count_scales_with_files() {
        // The paper's complexity claim: collective-per-file needs O(n)
        // broadcasts; communication-avoiding none at all.
        let vca = sample_vca("par-count", 6, 4, 10);
        let (_, coll) =
            minimpi::run_with_stats(2, |comm| read_collective_per_file(comm, &vca).unwrap());
        assert_eq!(coll.bcasts, 6 * 2, "one bcast per file per rank");

        let (_, ca) = minimpi::run_with_stats(2, |comm| read_comm_avoiding(comm, &vca).unwrap());
        assert_eq!(ca.bcasts, 0);
        assert_eq!(ca.alltoallvs, 2, "a single alltoallv per rank");
    }

    #[test]
    fn comm_avoiding_moves_fewer_bytes() {
        // Collective-per-file broadcasts whole files to everyone;
        // communication-avoiding ships each byte to exactly one owner.
        let vca = sample_vca("par-bytes", 8, 8, 25);
        let (_, coll) =
            minimpi::run_with_stats(4, |comm| read_collective_per_file(comm, &vca).unwrap());
        let (_, ca) = minimpi::run_with_stats(4, |comm| read_comm_avoiding(comm, &vca).unwrap());
        assert!(
            ca.p2p_bytes < coll.p2p_bytes,
            "comm-avoiding {} bytes vs collective {} bytes",
            ca.p2p_bytes,
            coll.p2p_bytes
        );
    }

    /// A plan injecting permanent (file-name-keyed) read errors at
    /// `rate`, plus the quarantine set it implies for `vca` — computed
    /// independently of the reader, straight from the plan.
    fn quarantine_plan(vca: &Vca, seed: u64, rate: f64) -> (Arc<FaultPlan>, Vec<usize>) {
        let plan = FaultPlan::new(seed).with(site::DASF_READ_ERR, rate);
        let expected: Vec<usize> = vca
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                let name = e.path.file_name().expect("member file name");
                plan.fires(
                    site::DASF_READ_ERR,
                    faultline::key_of(name.as_encoded_bytes()),
                )
            })
            .map(|(fi, _)| fi)
            .collect();
        (Arc::new(plan), expected)
    }

    #[test]
    fn resilient_clean_run_matches_plain_reader() {
        let vca = sample_vca("par-res-clean", 4, 6, 30);
        let serial = vca.read_all_f32().unwrap();
        for strat in [ReadStrategy::CollectivePerFile, ReadStrategy::CommAvoiding] {
            let results = minimpi::run(3, |comm| {
                read_vca_resilient(comm, &vca, strat).expect("resilient read")
            });
            let (blocks, reports): (Vec<_>, Vec<_>) = results.into_iter().unzip();
            assert_eq!(Array2::vstack(&blocks), serial, "{strat:?}");
            for r in &reports {
                assert!(r.is_clean(), "{strat:?}: {r:?}");
            }
        }
    }

    #[test]
    fn quarantine_zero_fills_and_strategies_agree() {
        let vca = sample_vca("par-res-quar", 6, 5, 20);
        let serial = vca.read_all_f32().unwrap();
        let (plan, expected) = quarantine_plan(&vca, 33, 0.5);
        assert!(
            !expected.is_empty() && expected.len() < vca.n_files(),
            "seed 33 should quarantine some but not all of {} files (got {expected:?})",
            vca.n_files()
        );
        let mut per_strategy = Vec::new();
        for strat in [ReadStrategy::CollectivePerFile, ReadStrategy::CommAvoiding] {
            let (results, _) = run_chaos(3, Arc::clone(&plan), RetryPolicy::default(), |comm| {
                read_vca_resilient(comm, &vca, strat).expect("resilient read")
            });
            let (blocks, reports): (Vec<_>, Vec<_>) = results.into_iter().unzip();
            let full = Array2::vstack(&blocks);
            // Every rank reports the same thing, and it matches the
            // plan-derived expectation.
            for r in &reports {
                assert_eq!(r.quarantined, expected, "{strat:?}");
                assert_eq!(
                    r.zero_samples,
                    expected
                        .iter()
                        .map(|&fi| vca.channels() * vca.samples_of(fi))
                        .sum::<u64>()
                );
            }
            // Quarantined spans are zero; everything else matches the
            // clean serial read.
            for fi in 0..vca.n_files() {
                let t0 = vca.time_offset_of(fi) as usize;
                let cols = vca.samples_of(fi) as usize;
                let quarantined = expected.contains(&fi);
                for ch in 0..vca.channels() as usize {
                    for c in t0..t0 + cols {
                        let got = full.get(ch, c);
                        let want = if quarantined { 0.0 } else { serial.get(ch, c) };
                        assert_eq!(got, want, "{strat:?} file {fi} ch {ch} col {c}");
                    }
                }
            }
            per_strategy.push(full);
        }
        assert_eq!(per_strategy[0], per_strategy[1], "strategies agree");
    }

    #[test]
    fn bitrot_quarantines_with_attributed_mismatches() {
        // `dasf.read.corrupt` now flips real bytes; the v3 checksum
        // layer turns every attempt into a ChecksumMismatch, so the
        // file quarantines after MAX_READ_ATTEMPTS detected mismatches.
        let vca = sample_vca("par-res-rot", 6, 5, 20);
        let serial = vca.read_all_f32().unwrap();
        let plan = FaultPlan::new(5).with(site::DASF_READ_CORRUPT, 0.5);
        let expected: Vec<usize> = vca
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                let name = e.path.file_name().expect("member file name");
                plan.fires(
                    site::DASF_READ_CORRUPT,
                    faultline::key_of(name.as_encoded_bytes()),
                )
            })
            .map(|(fi, _)| fi)
            .collect();
        assert!(
            !expected.is_empty() && expected.len() < vca.n_files(),
            "seed 5 should rot some but not all of {} files (got {expected:?})",
            vca.n_files()
        );
        let plan = Arc::new(plan);
        let mut per_strategy = Vec::new();
        for strat in [ReadStrategy::CollectivePerFile, ReadStrategy::CommAvoiding] {
            let (results, _) = run_chaos(3, Arc::clone(&plan), RetryPolicy::default(), |comm| {
                read_vca_resilient(comm, &vca, strat).expect("resilient read")
            });
            let (blocks, reports): (Vec<_>, Vec<_>) = results.into_iter().unzip();
            for r in &reports {
                assert_eq!(r.quarantined, expected, "{strat:?}");
                assert_eq!(
                    r.checksum_mismatches,
                    expected.len() as u64 * MAX_READ_ATTEMPTS as u64,
                    "{strat:?}: every attempt on a rotten file detects the rot"
                );
                assert!(!r.is_clean());
            }
            let full = Array2::vstack(&blocks);
            for fi in 0..vca.n_files() {
                let t0 = vca.time_offset_of(fi) as usize;
                let cols = vca.samples_of(fi) as usize;
                let rotten = expected.contains(&fi);
                for ch in 0..vca.channels() as usize {
                    for c in t0..t0 + cols {
                        let want = if rotten { 0.0 } else { serial.get(ch, c) };
                        assert_eq!(full.get(ch, c), want, "{strat:?} file {fi}");
                    }
                }
            }
            per_strategy.push((full, reports.into_iter().next().unwrap()));
        }
        assert_eq!(per_strategy[0], per_strategy[1], "strategies agree");
    }

    #[test]
    fn transient_faults_retry_and_recover() {
        // `par_read.file` failures are capped below the retry budget:
        // every file eventually reads, the report only shows effort.
        let vca = sample_vca("par-res-transient", 5, 4, 16);
        let serial = vca.read_all_f32().unwrap();
        let plan = Arc::new(FaultPlan::new(9).with(site::PAR_READ_FILE, 1.0));
        let mut reports = Vec::new();
        for _ in 0..2 {
            let (results, _) = run_chaos(2, Arc::clone(&plan), RetryPolicy::default(), |comm| {
                read_vca_resilient(comm, &vca, ReadStrategy::CommAvoiding).expect("resilient read")
            });
            let (blocks, mut rep): (Vec<_>, Vec<_>) = results.into_iter().unzip();
            assert_eq!(Array2::vstack(&blocks), serial);
            assert!(rep[0].quarantined.is_empty());
            assert!(rep[0].io_retries >= vca.n_files() as u64);
            reports.push(rep.remove(0));
        }
        assert_eq!(reports[0], reports[1], "retry counts are deterministic");
    }

    #[test]
    fn uneven_channels_and_ranks() {
        let vca = sample_vca("par-uneven", 3, 7, 15);
        let serial = vca.read_all_f32().unwrap();
        for ranks in [2usize, 3, 5] {
            for strat in [ReadStrategy::CollectivePerFile, ReadStrategy::CommAvoiding] {
                assert_eq!(
                    run_and_gather(&vca, ranks, strat),
                    serial,
                    "{strat:?}/{ranks}"
                );
            }
        }
    }
}
