//! Parallel VCA readers (paper §IV-B, Figure 5).
//!
//! Both strategies deliver to each rank its contiguous *channel block*
//! of the VCA's full time extent — the decomposition every DASSA
//! analysis uses — but differ in how bytes travel:
//!
//! * **collective-per-file**: all ranks share each file in turn. One
//!   aggregator rank reads the file and *broadcasts* it; every rank then
//!   keeps its channel rows. That is the "merge-read-broadcast" pattern
//!   of collective I/O: O(n) broadcasts for n files, each moving the
//!   whole file to every rank.
//!
//! * **communication-avoiding** (the paper's contribution): files are
//!   dealt round-robin; each rank reads *whole files* with one contiguous
//!   I/O call each, then a single all-to-all exchange redistributes
//!   channel blocks. Communication drops to O(n/p) exchange steps of
//!   exactly the needed bytes, and reads are contiguous and concurrent.
//!
//! Both return bit-identical arrays (property-tested), so callers choose
//! purely on performance — Figure 7 measures ~37× in favour of
//! communication-avoiding.

use super::metadata::DATASET_PATH;
use super::vca::Vca;
use crate::Result;
use arrayudf::dist::partition;
use arrayudf::Array2;
use dasf::File;
use minimpi::Comm;

/// Which §IV-B strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStrategy {
    /// "Collective-per-file": one broadcast per member file.
    CollectivePerFile,
    /// The paper's communication-avoiding method.
    CommAvoiding,
    /// Pick per Figure 7: communication-avoiding when it can spread whole
    /// files across ranks (`ranks > 1 && files >= ranks`), else
    /// collective-per-file (single rank, or ranks that would sit idle in
    /// the round-robin deal).
    Auto,
}

impl ReadStrategy {
    /// The concrete strategy [`ReadStrategy::Auto`] resolves to for a
    /// world of `ranks` reading `files` member files.
    pub fn resolve(self, ranks: usize, files: usize) -> ReadStrategy {
        match self {
            ReadStrategy::Auto => {
                if ranks > 1 && files >= ranks {
                    ReadStrategy::CommAvoiding
                } else {
                    ReadStrategy::CollectivePerFile
                }
            }
            other => other,
        }
    }
}

/// Metric names recorded by the parallel readers, in the world's
/// registry (see [`minimpi::Comm::registry`]) and aggregated globally.
pub mod metric_names {
    /// File-read time (ns) inside the collective-per-file reader.
    pub const COLLECTIVE_READ_NS: &str = "dass.par_read.collective.read_ns";
    /// Broadcast time (ns) inside the collective-per-file reader.
    pub const COLLECTIVE_EXCHANGE_NS: &str = "dass.par_read.collective.exchange_ns";
    /// Row-copy/assembly time (ns) inside the collective-per-file reader.
    pub const COLLECTIVE_COPY_NS: &str = "dass.par_read.collective.copy_ns";
    /// File-read time (ns) inside the communication-avoiding reader.
    pub const CA_READ_NS: &str = "dass.par_read.comm_avoiding.read_ns";
    /// All-to-all exchange time (ns) inside the communication-avoiding reader.
    pub const CA_EXCHANGE_NS: &str = "dass.par_read.comm_avoiding.exchange_ns";
    /// Pack/assembly time (ns) inside the communication-avoiding reader.
    pub const CA_COPY_NS: &str = "dass.par_read.comm_avoiding.copy_ns";
}

/// Read `vca` in parallel with the chosen strategy; returns this rank's
/// channel block (rows `partition(channels, size, rank)`, all samples).
pub fn read_vca(comm: &Comm, vca: &Vca, strategy: ReadStrategy) -> Result<Array2<f32>> {
    match strategy.resolve(comm.size(), vca.n_files()) {
        ReadStrategy::CollectivePerFile => read_collective_per_file(comm, vca),
        ReadStrategy::CommAvoiding => read_comm_avoiding(comm, vca),
        ReadStrategy::Auto => unreachable!("resolve never returns Auto"),
    }
}

/// "Collective-per-file" (Figure 5a): for each member file, the
/// aggregator rank `file_index % size` reads the whole file and
/// broadcasts it; every rank copies out its channel rows.
pub fn read_collective_per_file(comm: &Comm, vca: &Vca) -> Result<Array2<f32>> {
    let (rank, size) = (comm.rank(), comm.size());
    let channels = vca.channels() as usize;
    let my_rows = partition(channels, size, rank);
    let total_cols = vca.total_samples() as usize;
    let mut local = Array2::<f32>::zeroed(my_rows.len(), total_cols);
    let mut read_ns = std::time::Duration::ZERO;
    let mut exchange_ns = std::time::Duration::ZERO;
    let mut copy_ns = std::time::Duration::ZERO;

    for (fi, entry) in vca.entries().iter().enumerate() {
        let cols = vca.samples_of(fi) as usize;
        let root = fi % size;
        // Aggregator reads the entire file with one I/O call …
        let t = std::time::Instant::now();
        let payload: Option<Vec<f32>> = if rank == root {
            let f = File::open(&entry.path)?;
            Some(f.read_f32(DATASET_PATH)?)
        } else {
            None
        };
        read_ns += t.elapsed();
        // … and broadcasts it whole — the expensive step this strategy
        // pays once per file.
        let t = std::time::Instant::now();
        let data = comm.bcast_vec(root, payload);
        exchange_ns += t.elapsed();
        let t = std::time::Instant::now();
        let t0 = vca.time_offset_of(fi) as usize;
        for (li, g) in my_rows.clone().enumerate() {
            let src = &data[g * cols..(g + 1) * cols];
            let dst_row = li;
            let dst = &mut local.as_mut_slice()
                [dst_row * total_cols + t0..dst_row * total_cols + t0 + cols];
            dst.copy_from_slice(src);
        }
        copy_ns += t.elapsed();
    }
    let reg = comm.registry();
    reg.histogram(metric_names::COLLECTIVE_READ_NS)
        .record_duration(read_ns);
    reg.histogram(metric_names::COLLECTIVE_EXCHANGE_NS)
        .record_duration(exchange_ns);
    reg.histogram(metric_names::COLLECTIVE_COPY_NS)
        .record_duration(copy_ns);
    Ok(local)
}

/// Communication-avoiding (Figure 5b): each rank reads the whole files
/// assigned to it round-robin (`fi % size == rank`), carves them into
/// per-destination channel blocks, and one `alltoallv` delivers every
/// block to its owner.
pub fn read_comm_avoiding(comm: &Comm, vca: &Vca) -> Result<Array2<f32>> {
    let (rank, size) = (comm.rank(), comm.size());
    let channels = vca.channels() as usize;
    let my_rows = partition(channels, size, rank);
    let total_cols = vca.total_samples() as usize;

    // 1. Independent contiguous reads of my round-robin files.
    let t = std::time::Instant::now();
    let mut my_file_data: Vec<(usize, Vec<f32>)> = Vec::new();
    for (fi, entry) in vca.entries().iter().enumerate() {
        if fi % size == rank {
            let f = File::open(&entry.path)?;
            my_file_data.push((fi, f.read_f32(DATASET_PATH)?));
        }
    }
    let read_ns = t.elapsed();

    // 2. Build per-destination buffers: for each of my files (ascending
    //    file index), the destination's channel rows back to back. The
    //    layout is deterministic, so receivers decode without framing.
    let t = std::time::Instant::now();
    let mut buffers: Vec<Vec<f32>> = (0..size).map(|_| Vec::new()).collect();
    for (fi, data) in &my_file_data {
        let cols = vca.samples_of(*fi) as usize;
        for (dst, buf) in buffers.iter_mut().enumerate() {
            let rows = partition(channels, size, dst);
            buf.reserve(rows.len() * cols);
            for g in rows {
                buf.extend_from_slice(&data[g * cols..(g + 1) * cols]);
            }
        }
    }
    let mut copy_ns = t.elapsed();

    // 3. One all-to-all exchange (concurrent pairwise transfers).
    let t = std::time::Instant::now();
    let received = comm.alltoallv(buffers);
    let exchange_ns = t.elapsed();

    // 4. Assemble: block from src rank carries files fi ≡ src (mod size)
    //    in ascending order, each holding my channel rows.
    let t = std::time::Instant::now();
    let mut local = Array2::<f32>::zeroed(my_rows.len(), total_cols);
    for (src, buf) in received.into_iter().enumerate() {
        let mut cursor = 0usize;
        for fi in (src..vca.n_files()).step_by(size.max(1)) {
            if fi % size != src {
                continue;
            }
            let cols = vca.samples_of(fi) as usize;
            let t0 = vca.time_offset_of(fi) as usize;
            for li in 0..my_rows.len() {
                let src_slice = &buf[cursor..cursor + cols];
                let dst =
                    &mut local.as_mut_slice()[li * total_cols + t0..li * total_cols + t0 + cols];
                dst.copy_from_slice(src_slice);
                cursor += cols;
            }
        }
        debug_assert_eq!(cursor, buf.len(), "exchange layout mismatch");
    }
    copy_ns += t.elapsed();
    let reg = comm.registry();
    reg.histogram(metric_names::CA_READ_NS)
        .record_duration(read_ns);
    reg.histogram(metric_names::CA_EXCHANGE_NS)
        .record_duration(exchange_ns);
    reg.histogram(metric_names::CA_COPY_NS)
        .record_duration(copy_ns);
    Ok(local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dass::search::tests::make_files;
    use crate::dass::FileCatalog;

    fn sample_vca(tag: &str, files: usize, channels: u64, samples: u64) -> Vca {
        let dir = make_files(tag, "170728224510", files, channels, samples);
        let cat = FileCatalog::scan(&dir).unwrap();
        Vca::from_entries(cat.entries()).unwrap()
    }

    fn run_and_gather(vca: &Vca, ranks: usize, strategy: ReadStrategy) -> Array2<f32> {
        let blocks = minimpi::run(ranks, |comm| {
            read_vca(comm, vca, strategy).expect("parallel read")
        });
        Array2::vstack(&blocks)
    }

    #[test]
    fn collective_per_file_matches_serial() {
        let vca = sample_vca("par-coll", 4, 6, 30);
        let serial = vca.read_all_f32().unwrap();
        for ranks in [1usize, 2, 3, 6] {
            let out = run_and_gather(&vca, ranks, ReadStrategy::CollectivePerFile);
            assert_eq!(out, serial, "ranks={ranks}");
        }
    }

    #[test]
    fn comm_avoiding_matches_serial() {
        let vca = sample_vca("par-ca", 5, 6, 30);
        let serial = vca.read_all_f32().unwrap();
        for ranks in [1usize, 2, 3, 4, 7] {
            let out = run_and_gather(&vca, ranks, ReadStrategy::CommAvoiding);
            assert_eq!(out, serial, "ranks={ranks}");
        }
    }

    #[test]
    fn strategies_agree_with_more_ranks_than_files() {
        let vca = sample_vca("par-more", 2, 8, 20);
        let a = run_and_gather(&vca, 5, ReadStrategy::CollectivePerFile);
        let b = run_and_gather(&vca, 5, ReadStrategy::CommAvoiding);
        assert_eq!(a, b);
    }

    #[test]
    fn broadcast_count_scales_with_files() {
        // The paper's complexity claim: collective-per-file needs O(n)
        // broadcasts; communication-avoiding none at all.
        let vca = sample_vca("par-count", 6, 4, 10);
        let (_, coll) =
            minimpi::run_with_stats(2, |comm| read_collective_per_file(comm, &vca).unwrap());
        assert_eq!(coll.bcasts, 6 * 2, "one bcast per file per rank");

        let (_, ca) = minimpi::run_with_stats(2, |comm| read_comm_avoiding(comm, &vca).unwrap());
        assert_eq!(ca.bcasts, 0);
        assert_eq!(ca.alltoallvs, 2, "a single alltoallv per rank");
    }

    #[test]
    fn comm_avoiding_moves_fewer_bytes() {
        // Collective-per-file broadcasts whole files to everyone;
        // communication-avoiding ships each byte to exactly one owner.
        let vca = sample_vca("par-bytes", 8, 8, 25);
        let (_, coll) =
            minimpi::run_with_stats(4, |comm| read_collective_per_file(comm, &vca).unwrap());
        let (_, ca) = minimpi::run_with_stats(4, |comm| read_comm_avoiding(comm, &vca).unwrap());
        assert!(
            ca.p2p_bytes < coll.p2p_bytes,
            "comm-avoiding {} bytes vs collective {} bytes",
            ca.p2p_bytes,
            coll.p2p_bytes
        );
    }

    #[test]
    fn uneven_channels_and_ranks() {
        let vca = sample_vca("par-uneven", 3, 7, 15);
        let serial = vca.read_all_f32().unwrap();
        for ranks in [2usize, 3, 5] {
            for strat in [ReadStrategy::CollectivePerFile, ReadStrategy::CommAvoiding] {
                assert_eq!(
                    run_and_gather(&vca, ranks, strat),
                    serial,
                    "{strat:?}/{ranks}"
                );
            }
        }
    }
}
