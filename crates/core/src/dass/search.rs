//! `das_search` (paper §IV-A): find DAS files by timestamp range or by
//! regular expression over the file catalog's metadata.

use super::metadata::DasFileMeta;
use super::timestamp::Timestamp;
use crate::{DassaError, Result};
use dasf::File;
use regexlite::Regex;
use std::path::{Path, PathBuf};

/// One searchable DAS file: its path plus the parsed metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FileEntry {
    /// Absolute or catalog-relative path of the dasf file.
    pub path: PathBuf,
    /// Global metadata parsed at scan time.
    pub meta: DasFileMeta,
}

/// An in-memory catalog of DAS files, sorted by timestamp.
///
/// Scanning opens each file *metadata-only* — this is the operation
/// Figure 6 measures: searching 2880 files takes milliseconds because no
/// array data moves.
#[derive(Debug, Clone, Default)]
pub struct FileCatalog {
    entries: Vec<FileEntry>,
}

impl FileCatalog {
    /// Scan `dir` (non-recursively) for `.dasf` files and parse their
    /// metadata. Files that fail to open or lack metadata are an error —
    /// a corrupt acquisition should be loud, not silently skipped.
    pub fn scan<P: AsRef<Path>>(dir: P) -> Result<FileCatalog> {
        let mut entries = Vec::new();
        for entry in std::fs::read_dir(dir.as_ref())? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("dasf") {
                continue;
            }
            let file = File::open(&path)?;
            let meta = DasFileMeta::from_file(&file)?;
            entries.push(FileEntry { path, meta });
        }
        entries.sort_by_key(|e| e.meta.timestamp);
        Ok(FileCatalog { entries })
    }

    /// Build a catalog from pre-parsed entries (sorted on construction).
    pub fn from_entries(mut entries: Vec<FileEntry>) -> FileCatalog {
        entries.sort_by_key(|e| e.meta.timestamp);
        FileCatalog { entries }
    }

    /// All entries, in timestamp order.
    pub fn entries(&self) -> &[FileEntry] {
        &self.entries
    }

    /// Number of files in the catalog.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the catalog holds no files.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Type-1 query (`das_search -s <ts> -c <n>`): the file at timestamp
    /// `start` plus the next `count` files. The paper's example
    /// `-s 170728224510 -c 2` returns three files.
    ///
    /// `start` is the numeric `yymmddhhmmss` timestamp.
    pub fn search_range(&self, start: u64, count: usize) -> Result<Vec<FileEntry>> {
        let start_ts = Timestamp::parse_u64(start)?;
        let begin = self
            .entries
            .partition_point(|e| e.meta.timestamp < start_ts);
        if begin == self.entries.len() {
            return Err(DassaError::BadSelection(format!(
                "no file at or after timestamp {start}"
            )));
        }
        let end = (begin + count + 1).min(self.entries.len());
        Ok(self.entries[begin..end].to_vec())
    }

    /// Type-2 query (`das_search -e <regex>`): entries whose file name
    /// (or compact timestamp) matches the pattern. The paper's example:
    /// `das_search -e 170728224[567]10`.
    pub fn search_regex(&self, pattern: &str) -> Result<Vec<FileEntry>> {
        let re = Regex::new(pattern)?;
        Ok(self
            .entries
            .iter()
            .filter(|e| {
                let name = e
                    .path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default();
                re.is_match(name) || re.is_match(&e.meta.timestamp.to_compact())
            })
            .cloned()
            .collect())
    }

    /// Are the entries' timestamps contiguous (each file starts exactly
    /// where the previous one ends)? VCA construction checks this.
    pub fn is_contiguous(entries: &[FileEntry]) -> bool {
        entries.windows(2).all(|w| {
            let dur = w[0].meta.duration_minutes().max(1);
            w[0].meta.timestamp.add_minutes(dur) == w[1].meta.timestamp
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::dass::metadata::{das_file_name, write_das_file};
    use arrayudf::Array2;

    /// Create `n` one-minute DAS files starting at `start` in a fresh
    /// temp dir; returns the dir.
    pub(crate) fn make_files(
        tag: &str,
        start: &str,
        n: usize,
        channels: u64,
        samples: u64,
    ) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dassa-search-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let t0 = Timestamp::parse(start).unwrap();
        for i in 0..n {
            let ts = t0.add_minutes(i as u64);
            let meta = DasFileMeta {
                sampling_hz: (samples / 60).max(1) as i64,
                spatial_resolution_m: 2.0,
                timestamp: ts,
                channels,
                samples,
            };
            let data = Array2::from_fn(channels as usize, samples as usize, |r, c| {
                (i * 1_000_000 + r * 1000 + c) as f32
            });
            write_das_file(&dir.join(das_file_name(&ts)), &meta, &data).unwrap();
        }
        dir
    }

    #[test]
    fn scan_sorts_by_timestamp() {
        let dir = make_files("scan", "170728224510", 5, 3, 60);
        let cat = FileCatalog::scan(&dir).unwrap();
        assert_eq!(cat.len(), 5);
        for w in cat.entries().windows(2) {
            assert!(w[0].meta.timestamp < w[1].meta.timestamp);
        }
    }

    #[test]
    fn range_query_matches_paper_example() {
        let dir = make_files("range", "170728224510", 6, 2, 60);
        let cat = FileCatalog::scan(&dir).unwrap();
        // -s 170728224510 -c 2 → three files
        let hits = cat.search_range(170728224510, 2).unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].meta.timestamp.to_compact(), "170728224510");
        assert_eq!(hits[2].meta.timestamp.to_compact(), "170728224710");
    }

    #[test]
    fn range_query_clamps_at_catalog_end() {
        let dir = make_files("clamp", "170728224510", 3, 2, 60);
        let cat = FileCatalog::scan(&dir).unwrap();
        let hits = cat.search_range(170728224510, 100).unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn range_query_start_between_files() {
        let dir = make_files("between", "170728224510", 3, 2, 60);
        let cat = FileCatalog::scan(&dir).unwrap();
        // 170728224530 is mid-minute; the next file starts at ...4610.
        let hits = cat.search_range(170728224530, 0).unwrap();
        assert_eq!(hits[0].meta.timestamp.to_compact(), "170728224610");
    }

    #[test]
    fn range_query_past_end_errors() {
        let dir = make_files("pastend", "170728224510", 2, 2, 60);
        let cat = FileCatalog::scan(&dir).unwrap();
        assert!(matches!(
            cat.search_range(180101000000, 1),
            Err(DassaError::BadSelection(_))
        ));
    }

    #[test]
    fn regex_query_matches_paper_example() {
        let dir = make_files("regex", "170728224510", 6, 2, 60);
        let cat = FileCatalog::scan(&dir).unwrap();
        // das_search -e 170728224[567]10
        let hits = cat.search_regex("170728224[567]10").unwrap();
        let stamps: Vec<String> = hits.iter().map(|e| e.meta.timestamp.to_compact()).collect();
        assert_eq!(stamps, vec!["170728224510", "170728224610", "170728224710"]);
    }

    #[test]
    fn regex_rejects_bad_pattern() {
        let cat = FileCatalog::default();
        assert!(matches!(cat.search_regex("(["), Err(DassaError::Regex(_))));
    }

    #[test]
    fn contiguity_check() {
        let dir = make_files("contig", "170728235810", 4, 2, 60);
        let cat = FileCatalog::scan(&dir).unwrap();
        assert!(FileCatalog::is_contiguous(cat.entries()));
        // Drop the middle file → gap.
        let gappy: Vec<FileEntry> = cat
            .entries()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(_, e)| e.clone())
            .collect();
        assert!(!FileCatalog::is_contiguous(&gappy));
    }

    #[test]
    fn scan_ignores_non_dasf_files() {
        let dir = make_files("mixed", "170728224510", 2, 2, 60);
        std::fs::write(dir.join("notes.txt"), "hello").unwrap();
        let cat = FileCatalog::scan(&dir).unwrap();
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn scan_errors_on_corrupt_dasf() {
        let dir = make_files("corrupt", "170728224510", 1, 2, 60);
        std::fs::write(dir.join("bad.dasf"), b"not a dasf file").unwrap();
        assert!(FileCatalog::scan(&dir).is_err());
    }
}
