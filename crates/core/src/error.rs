//! Framework-level error type.

use std::fmt;

/// Errors surfaced by the DASSA framework.
#[derive(Debug)]
pub enum DassaError {
    /// Storage-format error from the dasf substrate.
    Dasf(dasf::DasfError),
    /// Filesystem error while scanning or creating files.
    Io(std::io::Error),
    /// A regex query failed to parse.
    Regex(regexlite::ParseError),
    /// A timestamp string is not `yymmddhhmmss`.
    BadTimestamp(String),
    /// VCA members disagree on shape or sampling.
    Inconsistent(String),
    /// The requested selection is empty or out of range.
    BadSelection(String),
    /// A DAS file lacks required metadata.
    MissingMetadata { path: String, key: &'static str },
    /// A collective gave up in a bounded-retry (chaos) world.
    Comm(minimpi::CommError),
}

impl fmt::Display for DassaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DassaError::Dasf(e) => write!(f, "storage error: {e}"),
            DassaError::Io(e) => write!(f, "I/O error: {e}"),
            DassaError::Regex(e) => write!(f, "regex error: {e}"),
            DassaError::BadTimestamp(s) => write!(f, "bad timestamp (want yymmddhhmmss): {s}"),
            DassaError::Inconsistent(msg) => write!(f, "inconsistent VCA members: {msg}"),
            DassaError::BadSelection(msg) => write!(f, "bad selection: {msg}"),
            DassaError::MissingMetadata { path, key } => {
                write!(f, "file {path} lacks required metadata key {key:?}")
            }
            DassaError::Comm(e) => write!(f, "communication error: {e}"),
        }
    }
}

impl std::error::Error for DassaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DassaError::Dasf(e) => Some(e),
            DassaError::Io(e) => Some(e),
            DassaError::Regex(e) => Some(e),
            DassaError::Comm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dasf::DasfError> for DassaError {
    fn from(e: dasf::DasfError) -> Self {
        DassaError::Dasf(e)
    }
}

impl From<std::io::Error> for DassaError {
    fn from(e: std::io::Error) -> Self {
        DassaError::Io(e)
    }
}

impl From<regexlite::ParseError> for DassaError {
    fn from(e: regexlite::ParseError) -> Self {
        DassaError::Regex(e)
    }
}

impl From<minimpi::CommError> for DassaError {
    fn from(e: minimpi::CommError) -> Self {
        DassaError::Comm(e)
    }
}
