//! `dassa` — Parallel DAS Data Storage and Analysis.
//!
//! Rust reproduction of **"DASSA: Parallel DAS Data Storage and Analysis
//! for Subsurface Event Detection"** (Dong et al., IEEE IPDPS 2020).
//! DASSA makes terabyte-scale distributed-acoustic-sensing (DAS) analysis
//! practical on parallel machines by pairing a storage engine tuned for
//! thousands-of-small-files datasets with a hybrid process/thread
//! execution engine for user-defined analysis functions.
//!
//! The framework has two halves, mirrored by the two top-level modules:
//!
//! * [`dass`] — the **DAS data Storage engine**:
//!   [`dass::DasFileMeta`] (the paper's Figure 4 metadata schema),
//!   [`dass::FileCatalog`] + [`dass::search`] (the `das_search` tool:
//!   timestamp-range and regex queries), [`dass::Vca`] (virtually
//!   concatenated array), [`dass::create_rca`] (really concatenated
//!   array), [`dass::Lav`] (logical array view), and the two parallel
//!   VCA readers — [`dass::read_collective_per_file`] and the paper's
//!   communication-avoiding [`dass::read_comm_avoiding`].
//!
//! * [`dasa`] — the **DAS data Analysis engine**: the hybrid ArrayUDF
//!   execution engine ([`dasa::Haee`]) and the two flagship pipelines,
//!   [`dasa::local_similarity`] (earthquake detection, Algorithm 2) and
//!   [`dasa::interferometry`] (traffic-noise interferometry,
//!   Algorithm 3), built on DasLib kernels from the [`dsp`] crate.
//!
//! A third module, [`dassd`], wraps both engines in a long-running TCP
//! server (the `das_serve` binary) with a shared chunk cache, admission
//! control, and a blocking [`dassd::Client`] — DAS analytics as a
//! service rather than a batch run.
//!
//! A fourth, [`ingest`], is the streaming half (the `das_ingest`
//! binary): an always-on daemon that validates minute files as they
//! land in a spool directory, admits them into an incremental minute
//! index, and runs a detection job over every completed window — with
//! a crash-consistent checkpoint journal, watermark/late-file
//! handling, retry-then-quarantine validation, and bounded in-flight
//! memory.
//!
//! # Quickstart
//!
//! ```no_run
//! use dassa::dass::{FileCatalog, Vca};
//! use dassa::dasa::{run, Analysis, Haee, LocalSimiParams};
//!
//! // Find one hour of DAS files and merge them virtually.
//! let catalog = FileCatalog::scan("/data/das")?;
//! let hits = catalog.search_range(170728224510, 59)?;
//! let vca = Vca::from_entries(&hits)?;
//!
//! // Detect events with local similarity on 8 threads. Every analysis
//! // goes through the same dispatcher; the engine comes from a builder.
//! let data = vca.read_all_f64()?;
//! let haee = Haee::builder().threads(8).build();
//! let out = run(&Analysis::LocalSimilarity(LocalSimiParams::default()), &data, &haee)?;
//! let simi = out.as_map().expect("local similarity yields a channel × time map");
//! # Ok::<(), dassa::DassaError>(())
//! ```
//!
//! Every pipeline and I/O layer reports into the [`obs`] metrics
//! registry (span timers, byte counters); run `das_pipeline --metrics`
//! or snapshot [`obs::global`] to see where time went.

pub mod dasa;
pub mod dass;
pub mod dassd;
mod error;
pub mod ingest;
pub mod prelude;

pub use error::DassaError;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, DassaError>;
