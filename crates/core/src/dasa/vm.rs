//! The register VM that executes compiled `dasl` programs.
//!
//! The [`dasl`] crate is a pure front end — lexer, typechecker, bytecode
//! compiler — with no I/O and no kernels. This module is its back end:
//! a small register machine whose instructions map one-to-one onto the
//! engine's existing building blocks, so a compiled program and the
//! equivalent hand-wired pipeline run *the same* code:
//!
//! * `load` binds the caller-provided `channel × time` array (the I/O
//!   already happened through the lowered `IoPlan`, same planner and
//!   executor as every other read path);
//! * `apply` runs its fused kernel list over every channel row in one
//!   thread-parallel pass — `detrend | bandpass(..) | resample(..)`
//!   touches each row once, issuing exactly the [`dsp`] calls that
//!   [`preprocess_channel`](super::interferometry::preprocess_channel)
//!   would, so results are bit-identical to the hand-wired pipeline;
//! * `xcorr` / `localsim` / `stack` delegate to the flagship analyses.
//!
//! Each `apply` with `k > 1` kernels bumps the `dasl.fused_stages`
//! counter by `k - 1` — the whole-array passes fusion eliminated — which
//! CI gates on.

use super::haee::Haee;
use super::local_similarity::{local_similarity, LocalSimiParams};
use super::run::{AnalysisOutput, Job};
use super::stacking::{stacked_interferometry, StackingParams};
use crate::{DassaError, Result};
use arrayudf::Array2;
use dasl::{Const, Instr, Kernel, Program};
use dsp::{
    abscorr_complex, butter, detrend, detrend_constant, fft_real, filtfilt, one_bit, resample,
    FilterBand,
};
use omp::SharedSlice;
use std::borrow::Cow;

/// A [`Program`] bound to the sampling rate of the corpus it will run
/// over — needed to normalize `bandpass` corners (written in Hz) by the
/// Nyquist frequency. Construct one with [`Program::bind`] via the
/// [`BindProgram`] extension, or directly.
#[derive(Debug, Clone, Copy)]
pub struct BoundProgram<'a> {
    /// The compiled program.
    pub program: &'a Program,
    /// Sampling rate of the data, in Hz.
    pub sampling_hz: f64,
}

/// Extension trait adding [`bind`](BindProgram::bind) to
/// [`dasl::Program`].
pub trait BindProgram {
    /// Bind this program to a corpus sampling rate.
    fn bind(&self, sampling_hz: f64) -> BoundProgram<'_>;
}

impl BindProgram for Program {
    fn bind(&self, sampling_hz: f64) -> BoundProgram<'_> {
        BoundProgram {
            program: self,
            sampling_hz,
        }
    }
}

impl Job for BoundProgram<'_> {
    fn name(&self) -> &'static str {
        "dasl"
    }

    fn run(&self, data: &Array2<f64>, haee: &Haee) -> Result<AnalysisOutput> {
        execute(self.program, self.sampling_hz, data, haee)
    }
}

/// A kernel with its compile-once state (filter coefficients) ready for
/// per-row application.
enum PreparedKernel {
    Detrend,
    Demean,
    OneBit,
    Filtfilt { b: Vec<f64>, a: Vec<f64> },
    Resample { p: usize, q: usize },
}

impl PreparedKernel {
    fn apply(&self, x: Vec<f64>) -> Vec<f64> {
        match self {
            PreparedKernel::Detrend => detrend(&x),
            PreparedKernel::Demean => detrend_constant(&x),
            PreparedKernel::OneBit => one_bit(&x),
            PreparedKernel::Filtfilt { b, a } => filtfilt(b, a, &x),
            PreparedKernel::Resample { p, q } => resample(&x, *p, *q),
        }
    }
}

/// Normalize and validate a kernel against the sampling rate: bandpass
/// corners, written in Hz, become fractions of Nyquist; the Butterworth
/// design runs once per `apply`, not once per row.
fn prepare_kernel(k: &Kernel, sampling_hz: f64) -> Result<PreparedKernel> {
    match k {
        Kernel::Detrend => Ok(PreparedKernel::Detrend),
        Kernel::Demean => Ok(PreparedKernel::Demean),
        Kernel::OneBit => Ok(PreparedKernel::OneBit),
        Kernel::Bandpass {
            lo_hz,
            hi_hz,
            order,
        } => {
            let nyquist = sampling_hz / 2.0;
            let (lo, hi) = (lo_hz / nyquist, hi_hz / nyquist);
            if !(lo > 0.0 && lo < hi && hi < 1.0) {
                return Err(DassaError::BadSelection(format!(
                    "bandpass({lo_hz}, {hi_hz}) Hz does not fit inside (0, {nyquist}) Hz \
                     (the corpus Nyquist frequency)"
                )));
            }
            let (b, a) = butter(*order, FilterBand::Bandpass(lo, hi));
            Ok(PreparedKernel::Filtfilt { b, a })
        }
        Kernel::Resample { p, q } => Ok(PreparedKernel::Resample { p: *p, q: *q }),
    }
}

/// One register slot.
#[derive(Debug, Clone)]
enum Value<'a> {
    Wave(Cow<'a, Array2<f64>>),
    Done(AnalysisOutput),
}

impl<'a> Value<'a> {
    fn wave(&self, what: &str) -> Result<&Array2<f64>> {
        match self {
            Value::Wave(w) => Ok(w),
            Value::Done(_) => Err(DassaError::BadSelection(format!(
                "`{what}` expects waveforms (compiler invariant broken)"
            ))),
        }
    }
}

fn const_at<'p>(program: &'p Program, idx: u8, what: &str) -> Result<&'p Const> {
    program
        .consts
        .get(idx as usize)
        .ok_or_else(|| DassaError::BadSelection(format!("{what}: constant c{idx} out of range")))
}

/// Execute a compiled program over a merged `channel × time` array.
///
/// `sampling_hz` must be the corpus' sampling rate (it normalizes
/// `bandpass` corners). The array is whatever the lowered `IoPlan`
/// produced — full extent or the `load` clause's window.
pub fn execute(
    program: &Program,
    sampling_hz: f64,
    data: &Array2<f64>,
    haee: &Haee,
) -> Result<AnalysisOutput> {
    let _root = obs::span("dasl");
    let mut regs: Vec<Option<Value>> = vec![None; program.n_regs as usize];
    let mut result = None;
    for (_, instr) in program.decode() {
        match instr {
            Instr::Load { dst, spec } => {
                // The I/O already happened: the caller lowered the load
                // clause into an IoPlan and ran it. Binding is free.
                let Const::Load(_) = const_at(program, spec, "load")? else {
                    return Err(bad_const("load", spec));
                };
                regs[dst as usize] = Some(Value::Wave(Cow::Borrowed(data)));
            }
            Instr::Apply { dst, src, kernels } => {
                let _span = obs::span("dasl.apply");
                let input = take(&mut regs, src)?;
                let wave = input.wave("apply")?;
                let chain: Vec<Kernel> = kernels
                    .iter()
                    .map(|&k| match const_at(program, k, "apply")? {
                        Const::Kernel(kernel) => Ok(kernel.clone()),
                        _ => Err(bad_const("apply", k)),
                    })
                    .collect::<Result<_>>()?;
                let prepared: Vec<PreparedKernel> = chain
                    .iter()
                    .map(|k| prepare_kernel(k, sampling_hz))
                    .collect::<Result<_>>()?;
                if chain.len() > 1 {
                    obs::global()
                        .counter("dasl.fused_stages")
                        .add(chain.len() as u64 - 1);
                }
                let out = fused_pass(wave, &prepared, &chain, haee)?;
                regs[dst as usize] = Some(Value::Wave(Cow::Owned(out)));
            }
            Instr::Xcorr { dst, src, master } => {
                let _span = obs::span("dasl.xcorr");
                let input = take(&mut regs, src)?;
                let wave = input.wave("xcorr")?;
                let Const::Chan(k) = const_at(program, master, "xcorr")? else {
                    return Err(bad_const("xcorr", master));
                };
                let scores = xcorr(wave, *k as usize, haee)?;
                regs[dst as usize] = Some(Value::Done(AnalysisOutput::Scores(scores)));
            }
            Instr::LocalSim { dst, src, params } => {
                let _span = obs::span("dasl.localsim");
                let input = take(&mut regs, src)?;
                let wave = input.wave("localsim")?;
                let Const::LocalSim(p) = const_at(program, params, "localsim")? else {
                    return Err(bad_const("localsim", params));
                };
                let p = LocalSimiParams {
                    half_window: p.half_window as usize,
                    channel_offset: p.channel_offset as usize,
                    search_half: p.search_half as usize,
                    time_stride: p.time_stride as usize,
                };
                let map = local_similarity(wave, &p, haee);
                regs[dst as usize] = Some(Value::Done(AnalysisOutput::Map(map)));
            }
            Instr::Stack { dst, src, params } => {
                let _span = obs::span("dasl.stack");
                let input = take(&mut regs, src)?;
                let wave = input.wave("stack")?;
                let Const::Stack(p) = const_at(program, params, "stack")? else {
                    return Err(bad_const("stack", params));
                };
                let p = StackingParams {
                    window: p.window as usize,
                    hop: p.hop as usize,
                    master_channel: p.master as usize,
                    ..Default::default()
                };
                let stacks = stacked_interferometry(wave, &p, haee)?;
                regs[dst as usize] = Some(Value::Done(AnalysisOutput::Stacks(stacks)));
            }
            Instr::Ret { src } => {
                result = Some(match take(&mut regs, src)? {
                    Value::Wave(w) => AnalysisOutput::Map(w.into_owned()),
                    Value::Done(out) => out,
                });
            }
        }
    }
    result.ok_or_else(|| DassaError::BadSelection("program has no `ret` instruction".to_string()))
}

fn take<'a>(regs: &mut [Option<Value<'a>>], r: u8) -> Result<Value<'a>> {
    regs.get_mut(r as usize)
        .and_then(Option::take)
        .ok_or_else(|| DassaError::BadSelection(format!("register r{r} read before write")))
}

fn bad_const(what: &str, idx: u8) -> DassaError {
    DassaError::BadSelection(format!("`{what}`: constant c{idx} has the wrong kind"))
}

/// Run the fused kernel chain over every channel row in one
/// thread-parallel pass. The output row length is computed analytically
/// from [`Kernel::out_len`], so the output array is allocated once and
/// rows are written in place.
fn fused_pass(
    wave: &Array2<f64>,
    prepared: &[PreparedKernel],
    kernels: &[Kernel],
    haee: &Haee,
) -> Result<Array2<f64>> {
    let n_in = wave.cols();
    let n_out = kernels.iter().fold(n_in, |n, k| k.out_len(n));
    let rows = wave.rows();
    let flat: SharedSlice<f64> = SharedSlice::zeroed(rows * n_out);
    let first_err: SharedSlice<usize> = SharedSlice::zeroed(1);
    omp::parallel(haee.threads_per_process, |ctx| {
        ctx.for_static(0..rows, |ch| {
            let mut x = wave.row(ch).to_vec();
            for k in prepared {
                x = k.apply(x);
            }
            if x.len() == n_out {
                // SAFETY: static schedule gives each row range to exactly
                // one thread.
                unsafe { flat.write_slice(ch * n_out, &x) };
            } else {
                // SAFETY: last-writer-wins on a diagnostic flag is fine.
                unsafe { first_err.write(0, ch + 1) };
            }
        });
    });
    let bad = unsafe { first_err.read(0) };
    if bad != 0 {
        return Err(DassaError::BadSelection(format!(
            "kernel chain produced an unexpected row length on channel {} \
             (expected {n_out} samples)",
            bad - 1
        )));
    }
    Ok(Array2::from_vec(rows, n_out, flat.into_vec()))
}

/// Per-channel spectral correlation against the master channel — the
/// back half of Algorithm 3, applied to rows that the preceding `apply`
/// already pre-processed.
fn xcorr(wave: &Array2<f64>, master: usize, haee: &Haee) -> Result<Vec<f64>> {
    if master >= wave.rows() {
        return Err(DassaError::BadSelection(format!(
            "master channel {master} out of range for {} channels",
            wave.rows()
        )));
    }
    let master_spectrum = fft_real(wave.row(master));
    let out: SharedSlice<f64> = SharedSlice::zeroed(wave.rows());
    omp::parallel(haee.threads_per_process, |ctx| {
        ctx.for_static(0..wave.rows(), |ch| {
            let spectrum = fft_real(wave.row(ch));
            let v = abscorr_complex(&spectrum, &master_spectrum);
            // SAFETY: static schedule gives each channel to one thread.
            unsafe { out.write(ch, v) };
        });
    });
    Ok(out.into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dasa::interferometry::{interferometry, InterferometryParams};

    fn signal(channels: usize, n: usize) -> Array2<f64> {
        Array2::from_fn(channels, n, |c, t| {
            ((t as f64 - c as f64 * 2.0) * 0.07).sin() + 0.2 * ((t * 7 + c * 3) % 13) as f64 / 13.0
        })
    }

    /// The tentpole guarantee: a compiled program computes bit-identical
    /// results to the hand-wired interferometry pipeline when the staged
    /// kernels match its parameters.
    #[test]
    fn program_matches_hand_wired_interferometry() {
        let hz = 500.0;
        let data = signal(6, 2000);
        let haee = Haee::builder().threads(2).build();

        // 0.5–24 Hz on 500 Hz data == the hand-wired defaults
        // (0.002, 0.096) of Nyquist; resample(2) == resample_q 2.
        let program = dasl::compile(
            "load(\"corpus\") | detrend | bandpass(0.5, 24) | resample(2) \
             | xcorr(master=ch[0])",
        )
        .unwrap();
        let out = execute(&program, hz, &data, &haee).unwrap();

        let expected = interferometry(&data, &InterferometryParams::default(), &haee).unwrap();
        assert_eq!(out.as_scores().unwrap(), expected.as_slice());
    }

    #[test]
    fn fused_pass_length_matches_kernel_out_len() {
        let data = signal(3, 999);
        let haee = Haee::builder().threads(2).build();
        let program =
            dasl::compile("load(\"c\") | detrend | bandpass(1, 8) | resample(4) | demean").unwrap();
        let out = execute(&program, 100.0, &data, &haee).unwrap();
        // Waveform-typed result comes back as a map: 999 → ceil(999/4).
        let map = out.as_map().unwrap();
        assert_eq!((map.rows(), map.cols()), (3, 250));
    }

    #[test]
    fn fusion_counter_accumulates() {
        let data = signal(2, 400);
        let haee = Haee::builder().threads(1).build();
        let before = obs::global().snapshot().counter("dasl.fused_stages");
        let program =
            dasl::compile("load(\"c\") | detrend | demean | onebit | xcorr(master=ch[0])").unwrap();
        execute(&program, 100.0, &data, &haee).unwrap();
        let after = obs::global().snapshot().counter("dasl.fused_stages");
        assert_eq!(after - before, 2);
    }

    #[test]
    fn bandpass_outside_nyquist_rejected() {
        let data = signal(2, 200);
        let haee = Haee::builder().threads(1).build();
        let program = dasl::compile("load(\"c\") | bandpass(0.5, 80)").unwrap();
        // 80 Hz corner on 100 Hz data (Nyquist 50) must fail.
        let err = execute(&program, 100.0, &data, &haee).unwrap_err();
        assert!(err.to_string().contains("Nyquist"), "{err}");
    }

    #[test]
    fn localsim_and_stack_delegate_to_the_flagship_analyses() {
        let data = signal(5, 600);
        let haee = Haee::builder().threads(2).build();

        let program = dasl::compile(
            "load(\"c\") | localsim(half_window=4, channel_offset=1, search_half=2, \
             time_stride=8)",
        )
        .unwrap();
        let out = execute(&program, 100.0, &data, &haee).unwrap();
        let p = LocalSimiParams {
            half_window: 4,
            channel_offset: 1,
            search_half: 2,
            time_stride: 8,
        };
        assert_eq!(out.as_map().unwrap(), &local_similarity(&data, &p, &haee));

        let program = dasl::compile("load(\"c\") | stack(window=128, hop=128)").unwrap();
        let out = execute(&program, 100.0, &data, &haee).unwrap();
        let p = StackingParams {
            window: 128,
            hop: 128,
            ..Default::default()
        };
        assert_eq!(
            out.as_stacks().unwrap(),
            stacked_interferometry(&data, &p, &haee).unwrap().as_slice()
        );
    }

    #[test]
    fn master_out_of_range_fails_at_runtime() {
        let data = signal(3, 200);
        let haee = Haee::builder().threads(1).build();
        let program = dasl::compile("load(\"c\") | xcorr(master=ch[7])").unwrap();
        assert!(execute(&program, 100.0, &data, &haee).is_err());
    }
}
