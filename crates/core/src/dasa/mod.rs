//! DASA — the DAS data Analysis engine (paper §V).
//!
//! Couples DasLib kernels (the [`dsp`] crate) with the Hybrid ArrayUDF
//! Execution Engine ([`Haee`]) and ships the paper's two case-study
//! pipelines: [`local_similarity`] (earthquake detection via Algorithm 2)
//! and [`interferometry`] (traffic-noise interferometry via Algorithm 3).

mod haee;
mod interferometry;
mod local_similarity;
pub mod qc;
mod run;
mod stacking;
mod vm;

pub use haee::{Haee, HaeeBuilder, MemoryModel};
pub use interferometry::{
    cross_correlation_with_master, interferometry, interferometry_dist, prepare_master,
    preprocess_channel, InterferometryParams, MasterSpectrum,
};
pub use local_similarity::{local_similarity, local_similarity_dist, LocalSimiParams};
pub use qc::{channel_metrics, channel_qc, ChannelHealth, ChannelMetrics, QcParams, QcReport};
pub use run::{run, Analysis, AnalysisOutput, Job};
pub use stacking::{
    prepare_master_windows, stack_channel, stacked_interferometry, stacked_interferometry_3d,
    MasterWindows, StackedCorrelation, StackingParams, TimeNorm,
};
pub use vm::{execute, BindProgram, BoundProgram};
