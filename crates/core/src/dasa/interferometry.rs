//! Traffic-noise interferometry (paper Algorithm 3).
//!
//! Ambient-noise interferometry turns incoherent traffic noise into
//! empirical Green's functions between channel pairs. The paper's UDF
//! runs per channel:
//!
//! ```text
//! W₁ = Das_detrend(W₀)
//! W₂ = Das_filtfilt(Das_butter(n, fc), W₁)
//! W₃ = Das_resample(W₂)
//! Wfft = Das_fft(W₃)
//! return Das_abscorr(Wfft, Mfft)        // vs the master channel
//! ```
//!
//! The master channel's spectrum `Mfft` is computed once per process and
//! shared by all threads — the memory asymmetry between pure-MPI and
//! hybrid execution that Figure 8 measures.

use super::haee::Haee;
use crate::{DassaError, Result};
use arrayudf::{dist, Array2};
use dsp::{
    abscorr_complex, butter, detrend, fft_real, filtfilt, ifft, resample, Complex, FilterBand,
};
use minimpi::Comm;
use omp::SharedSlice;

/// Pipeline parameters for Algorithm 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferometryParams {
    /// Butterworth order (`n` in `Das_butter(n, fc)`).
    pub filter_order: usize,
    /// Normalized bandpass corners `(low, high)` in `(0, 1)` of Nyquist.
    pub band: (f64, f64),
    /// Resampling ratio `p/q` (paper resamples with `Das_resample(X,1,R)`).
    pub resample_p: usize,
    /// Denominator of the resampling ratio.
    pub resample_q: usize,
    /// Index of the master channel to correlate everything against.
    pub master_channel: usize,
}

impl Default for InterferometryParams {
    fn default() -> Self {
        InterferometryParams {
            filter_order: 4,
            // 0.5–24 Hz band on 500 Hz data, normalized to Nyquist=250 Hz:
            band: (0.002, 0.096),
            resample_p: 1,
            resample_q: 2,
            master_channel: 0,
        }
    }
}

/// The master channel, fully pre-processed and transformed — `Mfft`.
#[derive(Debug, Clone)]
pub struct MasterSpectrum {
    /// Complex spectrum of the pre-processed master channel.
    pub spectrum: Vec<Complex>,
}

impl MasterSpectrum {
    /// Resident size in bytes — the quantity duplicated per process in
    /// pure-MPI mode (Figure 8's memory accounting).
    pub fn bytes(&self) -> u64 {
        (self.spectrum.len() * std::mem::size_of::<Complex>()) as u64
    }
}

/// Pre-processing stages shared by master and ordinary channels:
/// detrend → zero-phase bandpass → resample.
pub fn preprocess_channel(x: &[f64], p: &InterferometryParams) -> Vec<f64> {
    let detrended = detrend(x);
    let (b, a) = butter(p.filter_order, FilterBand::Bandpass(p.band.0, p.band.1));
    let filtered = filtfilt(&b, &a, &detrended);
    resample(&filtered, p.resample_p, p.resample_q)
}

/// Compute `Mfft` from the master channel's raw time series.
pub fn prepare_master(raw_master: &[f64], p: &InterferometryParams) -> MasterSpectrum {
    MasterSpectrum {
        spectrum: fft_real(&preprocess_channel(raw_master, p)),
    }
}

/// Algorithm 3's per-channel UDF: pre-process, FFT, correlate with the
/// master spectrum. Returns `|cos θ|` between the two spectra.
pub fn interferometry_udf(raw: &[f64], master: &MasterSpectrum, p: &InterferometryParams) -> f64 {
    let spectrum = fft_real(&preprocess_channel(raw, p));
    abscorr_complex(&spectrum, &master.spectrum)
}

/// Run the interferometry pipeline over every channel with the hybrid
/// engine's threads. Returns one correlation score per channel.
///
/// The master spectrum is computed **once** and shared by all threads —
/// the paper's hybrid-execution advantage.
pub fn interferometry(
    data: &Array2<f64>,
    params: &InterferometryParams,
    haee: &Haee,
) -> Result<Vec<f64>> {
    if params.master_channel >= data.rows() {
        return Err(DassaError::BadSelection(format!(
            "master channel {} out of range for {} channels",
            params.master_channel,
            data.rows()
        )));
    }
    let _root = obs::span("interferometry");
    let master = {
        let _span = obs::span("prepare_master");
        prepare_master(data.row(params.master_channel), params)
    };
    let _span = obs::span("apply");
    let out: SharedSlice<f64> = SharedSlice::zeroed(data.rows());
    omp::parallel(haee.threads_per_process, |ctx| {
        ctx.for_static(0..data.rows(), |ch| {
            let v = interferometry_udf(data.row(ch), &master, params);
            // SAFETY: static schedule gives each channel to one thread.
            unsafe { out.write(ch, v) };
        });
    });
    Ok(out.into_vec())
}

/// Distributed variant. The master channel lives on the rank that owns
/// it; it is broadcast once (its *spectrum*), then each rank processes
/// its channel block. In pure-MPI mode every rank holds a master copy
/// (`processes × master.bytes()` per node); hybrid holds one.
///
/// Returns this rank's per-channel scores.
pub fn interferometry_dist(
    comm: &Comm,
    local: &Array2<f64>,
    total_channels: usize,
    params: &InterferometryParams,
    haee: &Haee,
) -> Result<Vec<f64>> {
    let own = dist::partition(total_channels, comm.size(), comm.rank());
    // Which rank owns the master channel?
    let owner = (0..comm.size())
        .find(|&r| dist::partition(total_channels, comm.size(), r).contains(&params.master_channel))
        .ok_or_else(|| {
            DassaError::BadSelection(format!(
                "master channel {} outside the {total_channels}-channel array",
                params.master_channel
            ))
        })?;
    let payload = if comm.rank() == owner {
        let local_row = params.master_channel - own.start;
        Some(prepare_master(local.row(local_row), params).spectrum)
    } else {
        None
    };
    let master = MasterSpectrum {
        spectrum: comm.bcast(owner, payload),
    };

    let out: SharedSlice<f64> = SharedSlice::zeroed(local.rows());
    omp::parallel(haee.threads_per_process, |ctx| {
        ctx.for_static(0..local.rows(), |ch| {
            let v = interferometry_udf(local.row(ch), &master, params);
            // SAFETY: static schedule assigns each channel to one thread.
            unsafe { out.write(ch, v) };
        });
    });
    Ok(out.into_vec())
}

/// Time-domain cross-correlation of a channel with the master — the
/// empirical Green's function estimate the interferometry workflow
/// ultimately stacks. Returned with zero lag at the centre.
pub fn cross_correlation_with_master(
    raw: &[f64],
    master: &MasterSpectrum,
    p: &InterferometryParams,
) -> Vec<f64> {
    let spectrum = fft_real(&preprocess_channel(raw, p));
    let n = spectrum.len().min(master.spectrum.len());
    let prod: Vec<Complex> = (0..n)
        .map(|k| master.spectrum[k].conj() * spectrum[k])
        .collect();
    let corr = ifft(&prod);
    // fftshift so lag 0 sits in the middle.
    let mut out: Vec<f64> = corr.iter().map(|z| z.re).collect();
    out.rotate_right(n / 2);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Band-limited deterministic test signal with per-channel phase.
    fn channel_signal(ch: usize, n: usize, coherent: bool) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let tt = t as f64;
                if coherent {
                    // Same waveform, small channel-dependent delay.
                    (0.05 * (tt - ch as f64 * 2.0)).sin() + 0.3 * (0.023 * tt).sin()
                } else {
                    // Channel-unique frequencies.
                    (0.05 * tt * (1.0 + ch as f64 * 0.21)).sin()
                }
            })
            .collect()
    }

    fn array(channels: usize, n: usize, coherent: bool) -> Array2<f64> {
        let mut data = Vec::with_capacity(channels * n);
        for ch in 0..channels {
            data.extend(channel_signal(ch, n, coherent));
        }
        Array2::from_vec(channels, n, data)
    }

    fn params() -> InterferometryParams {
        InterferometryParams {
            filter_order: 3,
            band: (0.005, 0.2),
            resample_p: 1,
            resample_q: 2,
            master_channel: 0,
        }
    }

    #[test]
    fn preprocess_output_length() {
        let p = params();
        let x = channel_signal(0, 400, true);
        let y = preprocess_channel(&x, &p);
        assert_eq!(y.len(), 200);
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn master_self_correlation_is_one() {
        let p = params();
        let x = channel_signal(0, 600, true);
        let master = prepare_master(&x, &p);
        let c = interferometry_udf(&x, &master, &p);
        assert!((c - 1.0).abs() < 1e-9, "self-correlation = {c}");
    }

    #[test]
    fn scores_lie_in_unit_interval() {
        let p = params();
        let data = array(6, 500, false);
        let scores = interferometry(&data, &p, &Haee::builder().threads(2).build()).unwrap();
        assert_eq!(scores.len(), 6);
        for &s in &scores {
            assert!((0.0..=1.0 + 1e-9).contains(&s), "score {s}");
        }
        assert!((scores[0] - 1.0).abs() < 1e-9, "master scores 1 vs itself");
    }

    #[test]
    fn coherent_channels_score_higher() {
        let p = params();
        let coh = interferometry(
            &array(5, 600, true),
            &p,
            &Haee::builder().threads(2).build(),
        )
        .unwrap();
        let inc = interferometry(
            &array(5, 600, false),
            &p,
            &Haee::builder().threads(2).build(),
        )
        .unwrap();
        let mean = |v: &[f64]| v[1..].iter().sum::<f64>() / (v.len() - 1) as f64;
        assert!(
            mean(&coh) > mean(&inc),
            "coherent {:.3} vs incoherent {:.3}",
            mean(&coh),
            mean(&inc)
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let p = params();
        let data = array(7, 400, true);
        let one = interferometry(&data, &p, &Haee::builder().threads(1).build()).unwrap();
        let four = interferometry(&data, &p, &Haee::builder().threads(4).build()).unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn dist_matches_single_process() {
        let p = params();
        let total = 9;
        let data = array(total, 400, true);
        let expected = interferometry(&data, &p, &Haee::builder().threads(1).build()).unwrap();
        let blocks = minimpi::run(3, |comm| {
            let own = dist::partition(total, comm.size(), comm.rank());
            let local = data.row_block(own.start, own.end);
            interferometry_dist(comm, &local, total, &p, &Haee::builder().threads(2).build())
                .unwrap()
        });
        let gathered: Vec<f64> = blocks.into_iter().flatten().collect();
        for (a, b) in gathered.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn dist_master_on_nonzero_rank() {
        let mut p = params();
        let total = 8;
        p.master_channel = 6; // owned by the last rank when size=2
        let data = array(total, 400, true);
        let expected = interferometry(&data, &p, &Haee::builder().threads(1).build()).unwrap();
        let blocks = minimpi::run(2, |comm| {
            let own = dist::partition(total, comm.size(), comm.rank());
            let local = data.row_block(own.start, own.end);
            interferometry_dist(comm, &local, total, &p, &Haee::builder().threads(1).build())
                .unwrap()
        });
        let gathered: Vec<f64> = blocks.into_iter().flatten().collect();
        for (a, b) in gathered.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn master_out_of_range_rejected() {
        let mut p = params();
        p.master_channel = 99;
        let data = array(3, 400, true);
        assert!(matches!(
            interferometry(&data, &p, &Haee::builder().threads(1).build()),
            Err(DassaError::BadSelection(_))
        ));
    }

    #[test]
    fn cross_correlation_peak_reflects_delay() {
        // Channel delayed vs master → correlation peak off centre, on the
        // correct side.
        let p = InterferometryParams {
            filter_order: 3,
            band: (0.01, 0.4),
            resample_p: 1,
            resample_q: 1,
            master_channel: 0,
        };
        let n = 512;
        let base: Vec<f64> = (0..n)
            .map(|t| ((t as f64) * 0.11).sin() + 0.5 * ((t as f64) * 0.053).sin())
            .collect();
        let master = prepare_master(&base, &p);
        let self_corr = cross_correlation_with_master(&base, &master, &p);
        let peak_self = self_corr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let mid = self_corr.len() / 2;
        assert_eq!(peak_self, mid, "self-correlation peaks at zero lag");

        let delayed: Vec<f64> = (0..n)
            .map(|t| if t >= 9 { base[t - 9] } else { 0.0 })
            .collect();
        let corr = cross_correlation_with_master(&delayed, &master, &p);
        let peak = corr
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            (peak as isize - mid as isize - 9).abs() <= 2,
            "peak at {peak}, expected near {}",
            mid + 9
        );
    }

    #[test]
    fn master_bytes_accounting() {
        let p = params();
        let master = prepare_master(&channel_signal(0, 400, true), &p);
        assert_eq!(master.bytes(), (200 * 16) as u64);
    }
}
