//! Earthquake detection via local similarity (paper Algorithm 2).
//!
//! The local-similarity method (Li et al. 2018) scores each point of the
//! DAS array by how well a window around it correlates with windows on
//! the two neighbouring channels, searching over small time lags —
//! coherent wavefronts (vehicles, earthquakes) score high, incoherent
//! noise scores low. Figure 10 of the paper is exactly this map.

use super::haee::Haee;
use arrayudf::{apply_mt, dist, Array2, Ghost, Stencil, Stride};
use dsp::abscorr;
use minimpi::Comm;

/// Parameters of Algorithm 2.
///
/// Window width is `2·half_window + 1` (the paper's `2M+1`); neighbours
/// sit at channel offsets `±channel_offset` (`±K`); `2·search_half + 1`
/// lagged windows are scanned per neighbour (`2L+1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSimiParams {
    /// `M`: half the comparison window, in samples.
    pub half_window: usize,
    /// `K`: channel offset of the two neighbours.
    pub channel_offset: usize,
    /// `L`: half the lag-search range, in samples.
    pub search_half: usize,
    /// Output decimation along time: evaluate every `time_stride`-th
    /// sample (1 = every sample, as in the paper's dense map).
    pub time_stride: usize,
}

impl Default for LocalSimiParams {
    fn default() -> Self {
        LocalSimiParams {
            half_window: 25,
            channel_offset: 1,
            search_half: 10,
            time_stride: 25,
        }
    }
}

impl LocalSimiParams {
    /// Ghost reach the UDF needs: `M + L` in time, `K` in channel.
    pub fn ghost(&self) -> Ghost {
        Ghost::both(self.half_window + self.search_half, self.channel_offset)
    }

    fn stride(&self) -> Stride {
        Stride {
            time: self.time_stride.max(1),
            channel: 1,
        }
    }
}

/// Algorithm 2, verbatim: the UDF evaluated at one stencil position.
///
/// ```text
/// W = S(−M:M, 0)
/// for l = −L..L:
///     C+K = max(C+K, abscorr(W, S(l−M : l+M, +K)))
///     C−K = max(C−K, abscorr(W, S(l−M : l+M, −K)))
/// return (C+K + C−K) / 2
/// ```
pub fn local_simi_udf(s: &Stencil<f64>, p: &LocalSimiParams) -> f64 {
    let m = p.half_window as isize;
    let k = p.channel_offset as isize;
    let l_half = p.search_half as isize;
    let w = s.window(-m, m, 0);
    let mut c_plus = 0.0f64;
    let mut c_minus = 0.0f64;
    for l in -l_half..=l_half {
        let w1 = s.window(l - m, l + m, k);
        let w2 = s.window(l - m, l + m, -k);
        c_plus = c_plus.max(abscorr(&w, &w1));
        c_minus = c_minus.max(abscorr(&w, &w2));
    }
    0.5 * (c_plus + c_minus)
}

/// Run local similarity over a full `channel × time` array with the
/// hybrid engine's threads (ApplyMT). Output shape:
/// `channels × ceil(time / time_stride)`, values in `[0, 1]`.
pub fn local_similarity(data: &Array2<f64>, params: &LocalSimiParams, haee: &Haee) -> Array2<f64> {
    let _root = obs::span("local_similarity");
    let _span = obs::span("apply");
    apply_mt(
        data,
        params.ghost(),
        params.stride(),
        haee.threads_per_process,
        |s| local_simi_udf(s, params),
    )
}

/// Distributed variant: each rank processes its channel block of a
/// `total_channels`-row global array (ghost channels exchanged
/// automatically); returns the rank's block of the similarity map.
pub fn local_similarity_dist(
    comm: &Comm,
    local: &Array2<f64>,
    total_channels: usize,
    params: &LocalSimiParams,
    haee: &Haee,
) -> Array2<f64> {
    dist::apply_dist(
        comm,
        local,
        total_channels,
        params.ghost(),
        params.stride(),
        haee.threads_per_process,
        |s| local_simi_udf(s, params),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use arrayudf::apply;

    fn params_small() -> LocalSimiParams {
        LocalSimiParams {
            half_window: 4,
            channel_offset: 1,
            search_half: 2,
            time_stride: 1,
        }
    }

    /// Coherent plane wave: same waveform on every channel with a small
    /// per-channel delay.
    fn coherent(channels: usize, time: usize) -> Array2<f64> {
        Array2::from_fn(channels, time, |c, t| {
            ((t as f64 - c as f64) * 0.7).sin() + 0.1 * ((t * 13 + c * 7) % 11) as f64 / 11.0
        })
    }

    /// Independent per-channel pseudo-noise (splitmix-style mixer, so no
    /// periodic structure survives along time or channel).
    fn incoherent(channels: usize, time: usize) -> Array2<f64> {
        Array2::from_fn(channels, time, |c, t| {
            let mut z = (c as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((t as u64).wrapping_mul(0xBF58476D1CE4E5B9))
                .wrapping_add(0x2545F4914F6CDD1D);
            z ^= z >> 30;
            z = z.wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 27;
            (z % 2_000_000) as f64 / 1_000_000.0 - 1.0
        })
    }

    #[test]
    fn output_shape_and_range() {
        let data = coherent(6, 120);
        let p = params_small();
        let out = local_similarity(&data, &p, &Haee::builder().threads(2).build());
        assert_eq!(out.rows(), 6);
        assert_eq!(out.cols(), 120);
        for &v in out.as_slice() {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&v),
                "similarity {v} out of range"
            );
        }
    }

    #[test]
    fn coherent_scores_higher_than_incoherent() {
        let p = params_small();
        let hi = local_similarity(&coherent(8, 200), &p, &Haee::builder().threads(2).build());
        let lo = local_similarity(&incoherent(8, 200), &p, &Haee::builder().threads(2).build());
        let mean = |a: &Array2<f64>| a.as_slice().iter().sum::<f64>() / a.len() as f64;
        let (m_hi, m_lo) = (mean(&hi), mean(&lo));
        assert!(
            m_hi > m_lo + 0.2,
            "coherent {m_hi:.3} should beat incoherent {m_lo:.3}"
        );
        assert!(
            m_hi > 0.9,
            "plane wave should be near-perfectly similar: {m_hi:.3}"
        );
    }

    #[test]
    fn time_stride_decimates_output() {
        let data = coherent(4, 100);
        let mut p = params_small();
        p.time_stride = 10;
        let out = local_similarity(&data, &p, &Haee::builder().threads(1).build());
        assert_eq!(out.cols(), 10);
    }

    #[test]
    fn udf_matches_sequential_apply() {
        let data = coherent(5, 80);
        let p = params_small();
        let serial = apply(
            &data,
            p.ghost(),
            Stride {
                time: 1,
                channel: 1,
            },
            |s| local_simi_udf(s, &p),
        );
        let mt = local_similarity(&data, &p, &Haee::builder().threads(4).build());
        assert_eq!(serial, mt);
    }

    #[test]
    fn dist_matches_local() {
        let data = coherent(12, 90);
        let p = params_small();
        let expected = local_similarity(&data, &p, &Haee::builder().threads(1).build());
        let blocks = minimpi::run(3, |comm| {
            let own = dist::partition(12, comm.size(), comm.rank());
            let local = data.row_block(own.start, own.end);
            local_similarity_dist(comm, &local, 12, &p, &Haee::builder().threads(2).build())
        });
        assert_eq!(Array2::vstack(&blocks), expected);
    }

    #[test]
    fn default_params_are_sane() {
        let p = LocalSimiParams::default();
        assert!(p.half_window > 0 && p.search_half > 0 && p.channel_offset > 0);
        let g = p.ghost();
        assert_eq!(g.time, p.half_window + p.search_half);
        assert_eq!(g.channel, p.channel_offset);
    }
}
