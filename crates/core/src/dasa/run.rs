//! One entry point for every DASA analysis.
//!
//! The paper's pipelines share a shape — merged `channel × time` array
//! in, per-channel (or per-cell) result out, hybrid engine underneath —
//! but the seed grew three differently-shaped functions. [`run`] unifies
//! them behind [`Analysis`] so callers (the `das_pipeline` tool, the
//! MATLAB bridge, benchmarks) dispatch on data, not on code, and every
//! pipeline gets the same observability: each one times itself as a
//! `span.<name>` root with named child spans for its stages.

use super::haee::Haee;
use super::interferometry::{interferometry, InterferometryParams};
use super::local_similarity::{local_similarity, LocalSimiParams};
use super::stacking::{stacked_interferometry, StackedCorrelation, StackingParams};
use crate::Result;
use arrayudf::Array2;

/// A DASA analysis and its parameters — the unit [`run`] dispatches on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Analysis {
    /// Earthquake detection via local similarity (Algorithm 2).
    LocalSimilarity(LocalSimiParams),
    /// Traffic-noise interferometry vs a master channel (Algorithm 3).
    Interferometry(InterferometryParams),
    /// Window-stacked cross-correlation (the full Dou et al. workflow).
    Stacking(StackingParams),
}

impl Analysis {
    /// Stable short name, used for span names and CLI matching.
    pub fn name(&self) -> &'static str {
        match self {
            Analysis::LocalSimilarity(_) => "local_similarity",
            Analysis::Interferometry(_) => "interferometry",
            Analysis::Stacking(_) => "stacking",
        }
    }
}

/// What an [`Analysis`] produces.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisOutput {
    /// `channels × time` similarity map (local similarity).
    Map(Array2<f64>),
    /// One score per channel (interferometry).
    Scores(Vec<f64>),
    /// One stacked correlation per channel (stacking).
    Stacks(Vec<StackedCorrelation>),
}

impl AnalysisOutput {
    /// Flatten to `(dims, values)` for writing as a dasf dataset.
    pub fn to_dataset(&self) -> (Vec<u64>, Vec<f64>) {
        match self {
            AnalysisOutput::Map(m) => (
                vec![m.rows() as u64, m.cols() as u64],
                m.as_slice().to_vec(),
            ),
            AnalysisOutput::Scores(s) => (vec![s.len() as u64], s.clone()),
            AnalysisOutput::Stacks(stacks) => {
                let lag = stacks.first().map_or(0, |s| s.stack.len());
                let flat: Vec<f64> = stacks.iter().flat_map(|s| s.stack.clone()).collect();
                (vec![stacks.len() as u64, lag as u64], flat)
            }
        }
    }

    /// The map, if this is a [`AnalysisOutput::Map`].
    pub fn as_map(&self) -> Option<&Array2<f64>> {
        match self {
            AnalysisOutput::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The per-channel scores, if this is a [`AnalysisOutput::Scores`].
    pub fn as_scores(&self) -> Option<&[f64]> {
        match self {
            AnalysisOutput::Scores(s) => Some(s),
            _ => None,
        }
    }

    /// The stacked correlations, if this is a [`AnalysisOutput::Stacks`].
    pub fn as_stacks(&self) -> Option<&[StackedCorrelation]> {
        match self {
            AnalysisOutput::Stacks(s) => Some(s),
            _ => None,
        }
    }
}

/// Anything [`run`] can execute over a merged `channel × time` array:
/// a parameterized [`Analysis`], a compiled [`dasl::Program`], or a
/// [`BoundProgram`](super::vm::BoundProgram) (a program bound to its
/// corpus' sampling rate). One execution API for both the builder-
/// assembled and the compiled form.
pub trait Job {
    /// Stable short name, used for span names and logging.
    fn name(&self) -> &'static str;

    /// Execute over `data` with the hybrid engine.
    fn run(&self, data: &Array2<f64>, haee: &Haee) -> Result<AnalysisOutput>;
}

impl Job for Analysis {
    fn name(&self) -> &'static str {
        Analysis::name(self)
    }

    fn run(&self, data: &Array2<f64>, haee: &Haee) -> Result<AnalysisOutput> {
        match self {
            Analysis::LocalSimilarity(p) => {
                Ok(AnalysisOutput::Map(local_similarity(data, p, haee)))
            }
            Analysis::Interferometry(p) => {
                Ok(AnalysisOutput::Scores(interferometry(data, p, haee)?))
            }
            Analysis::Stacking(p) => Ok(AnalysisOutput::Stacks(stacked_interferometry(
                data, p, haee,
            )?)),
        }
    }
}

/// A bare compiled program runs at the acquisition default of 500 Hz;
/// bind it to the real rate with
/// [`BindProgram::bind`](super::vm::BindProgram::bind) when the corpus
/// is known.
impl Job for dasl::Program {
    fn name(&self) -> &'static str {
        "dasl"
    }

    fn run(&self, data: &Array2<f64>, haee: &Haee) -> Result<AnalysisOutput> {
        super::vm::execute(self, 500.0, data, haee)
    }
}

/// Run a [`Job`] — an [`Analysis`] or a compiled `dasl` program — over a
/// merged `channel × time` array with the hybrid engine. The single
/// dispatcher every caller goes through.
///
/// Each pipeline times itself as `span.<name>` in the global [`obs`]
/// registry, with child spans per stage (`prepare_master`, `apply`); the
/// paths nest under whatever span the caller has open, so `das_pipeline`
/// produces e.g. `span.pipeline.analyze.interferometry.apply`.
pub fn run<J: Job + ?Sized>(job: &J, data: &Array2<f64>, haee: &Haee) -> Result<AnalysisOutput> {
    job.run(data, haee)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(channels: usize, n: usize) -> Array2<f64> {
        Array2::from_fn(channels, n, |c, t| {
            ((t as f64 - c as f64 * 2.0) * 0.07).sin() + 0.2 * ((t * 7 + c * 3) % 13) as f64 / 13.0
        })
    }

    #[test]
    fn dispatcher_matches_direct_calls() {
        let data = signal(5, 600);
        let haee = Haee::builder().threads(2).build();

        let p = LocalSimiParams {
            half_window: 4,
            channel_offset: 1,
            search_half: 2,
            time_stride: 8,
        };
        let out = run(&Analysis::LocalSimilarity(p), &data, &haee).unwrap();
        assert_eq!(out.as_map().unwrap(), &local_similarity(&data, &p, &haee));

        let p = InterferometryParams::default();
        let out = run(&Analysis::Interferometry(p), &data, &haee).unwrap();
        assert_eq!(
            out.as_scores().unwrap(),
            interferometry(&data, &p, &haee).unwrap().as_slice()
        );

        let p = StackingParams {
            window: 128,
            hop: 128,
            ..Default::default()
        };
        let out = run(&Analysis::Stacking(p), &data, &haee).unwrap();
        assert_eq!(
            out.as_stacks().unwrap(),
            stacked_interferometry(&data, &p, &haee).unwrap().as_slice()
        );
    }

    #[test]
    fn run_records_analysis_span() {
        let data = signal(4, 400);
        let haee = Haee::builder().threads(1).build();
        let p = InterferometryParams::default();
        run(&Analysis::Interferometry(p), &data, &haee).unwrap();
        let snap = obs::global().snapshot();
        for name in [
            "span.interferometry",
            "span.interferometry.prepare_master",
            "span.interferometry.apply",
        ] {
            let h = snap
                .histogram(name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert!(h.count >= 1);
        }
    }

    #[test]
    fn output_to_dataset_shapes() {
        let data = signal(4, 600);
        let haee = Haee::builder().threads(1).build();
        let out = run(
            &Analysis::Interferometry(InterferometryParams::default()),
            &data,
            &haee,
        )
        .unwrap();
        let (dims, values) = out.to_dataset();
        assert_eq!(dims, vec![4]);
        assert_eq!(values.len(), 4);

        let p = StackingParams {
            window: 128,
            hop: 128,
            ..Default::default()
        };
        let (dims, values) = run(&Analysis::Stacking(p), &data, &haee)
            .unwrap()
            .to_dataset();
        assert_eq!(dims, vec![4, 128]);
        assert_eq!(values.len(), 4 * 128);
    }

    #[test]
    fn bad_params_surface_as_errors() {
        let data = signal(3, 200);
        let haee = Haee::builder().threads(1).build();
        let p = InterferometryParams {
            master_channel: 99,
            ..Default::default()
        };
        assert!(run(&Analysis::Interferometry(p), &data, &haee).is_err());
    }
}
