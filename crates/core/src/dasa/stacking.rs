//! Window-stacked ambient-noise cross-correlation.
//!
//! The paper implements "the most expensive collection of processes" of
//! the traffic-noise interferometry workflow (Dou et al. 2017) —
//! Algorithm 3 is the per-channel kernel. The *full* workflow the paper
//! cites splits each channel into short windows, normalizes each
//! (temporally and spectrally), cross-correlates window-by-window with
//! the master channel, and **stacks** the correlations: coherent
//! traveltime signal adds linearly while noise adds as √N, so the
//! empirical Green's function emerges from hours of traffic noise.
//! This module implements that stacked pipeline on top of DasLib —
//! including the 3-D `channel × lag × window` intermediate the paper's
//! §IV mentions ("a 3D data array with a striping size as the third
//! dimension may be produced" during stacking).

use super::haee::Haee;
use crate::{DassaError, Result};
use arrayudf::{Array2, Array3};
use dsp::{
    butter, detrend, filtfilt, ifft_real, one_bit, running_abs_mean, whiten, Complex, FilterBand,
};
use omp::SharedSlice;

/// Temporal normalization applied to each window before correlation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeNorm {
    /// No temporal normalization.
    None,
    /// One-bit (sign only).
    OneBit,
    /// Running absolute mean with the given half-window in samples.
    RunningAbsMean(usize),
}

/// Parameters of the stacked cross-correlation pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackingParams {
    /// Window length in samples.
    pub window: usize,
    /// Hop between successive windows (== `window` for no overlap).
    pub hop: usize,
    /// Butterworth bandpass corners (fractions of Nyquist).
    pub band: (f64, f64),
    /// Filter order.
    pub filter_order: usize,
    /// Temporal normalization.
    pub time_norm: TimeNorm,
    /// Apply spectral whitening over `band` before correlating.
    pub whiten: bool,
    /// Master channel index.
    pub master_channel: usize,
}

impl Default for StackingParams {
    fn default() -> Self {
        StackingParams {
            window: 512,
            hop: 512,
            band: (0.02, 0.5),
            filter_order: 4,
            time_norm: TimeNorm::OneBit,
            whiten: true,
            master_channel: 0,
        }
    }
}

impl StackingParams {
    /// Number of windows a series of `len` samples yields.
    pub fn n_windows(&self, len: usize) -> usize {
        if len >= self.window {
            (len - self.window) / self.hop.max(1) + 1
        } else {
            0
        }
    }
}

/// Pre-process one window: detrend → bandpass → temporal norm → whiten.
fn prepare_window(x: &[f64], p: &StackingParams) -> Vec<f64> {
    let detrended = detrend(x);
    let (b, a) = butter(p.filter_order, FilterBand::Bandpass(p.band.0, p.band.1));
    let mut w = filtfilt(&b, &a, &detrended);
    w = match p.time_norm {
        TimeNorm::None => w,
        TimeNorm::OneBit => one_bit(&w),
        TimeNorm::RunningAbsMean(half) => running_abs_mean(&w, half),
    };
    if p.whiten {
        w = whiten(&w, p.band.0, p.band.1, (p.band.0 / 2.0).max(1e-3));
    }
    w
}

/// The result of stacking one channel against the master.
#[derive(Debug, Clone, PartialEq)]
pub struct StackedCorrelation {
    /// Stacked cross-correlation, zero lag at the centre
    /// (length = window size).
    pub stack: Vec<f64>,
    /// Number of windows accumulated.
    pub n_windows: usize,
}

impl StackedCorrelation {
    /// Lag (samples, may be negative) of the strongest peak.
    pub fn peak_lag(&self) -> isize {
        let mid = self.stack.len() as isize / 2;
        self.stack
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("finite"))
            .map(|(i, _)| i as isize - mid)
            .unwrap_or(0)
    }

    /// Signal-to-noise ratio: |peak| over the RMS of the outer half of
    /// the lag axis (the conventional EGF quality metric).
    pub fn snr(&self) -> f64 {
        let n = self.stack.len();
        if n < 8 {
            return 0.0;
        }
        let peak = self.stack.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let tail: Vec<f64> = self.stack[..n / 8]
            .iter()
            .chain(&self.stack[n - n / 8..])
            .cloned()
            .collect();
        let rms = (tail.iter().map(|v| v * v).sum::<f64>() / tail.len() as f64).sqrt();
        if rms > 0.0 {
            peak / rms
        } else {
            f64::INFINITY
        }
    }
}

/// Pre-computed master-channel window spectra, shared per process —
/// the same memory-sharing story as Algorithm 3's `Mfft`, but one
/// spectrum per window.
#[derive(Debug, Clone)]
pub struct MasterWindows {
    spectra: Vec<Vec<Complex>>,
    params: StackingParams,
}

/// Prepare every window of the master channel.
pub fn prepare_master_windows(master_raw: &[f64], p: &StackingParams) -> MasterWindows {
    let n_win = p.n_windows(master_raw.len());
    let spectra = (0..n_win)
        .map(|w| {
            let start = w * p.hop;
            let prepared = prepare_window(&master_raw[start..start + p.window], p);
            dsp::fft_real(&prepared)
        })
        .collect();
    MasterWindows {
        spectra,
        params: *p,
    }
}

/// Stack one channel against the prepared master windows.
pub fn stack_channel(raw: &[f64], master: &MasterWindows) -> StackedCorrelation {
    let p = &master.params;
    let n_win = p.n_windows(raw.len()).min(master.spectra.len());
    let len = p.window;
    let mut stack = vec![0.0f64; len];
    for w in 0..n_win {
        let start = w * p.hop;
        let prepared = prepare_window(&raw[start..start + len], p);
        let spec = dsp::fft_real(&prepared);
        let mspec = &master.spectra[w];
        // Circular cross-correlation via IFFT(M* · S).
        let prod: Vec<Complex> = mspec
            .iter()
            .zip(&spec)
            .map(|(&m, &s)| m.conj() * s)
            .collect();
        let corr = ifft_real(&prod);
        // fftshift: zero lag at the centre, then accumulate.
        for (i, v) in corr.iter().enumerate() {
            let shifted = (i + len / 2) % len;
            stack[shifted] += v;
        }
    }
    if n_win > 0 {
        let scale = 1.0 / n_win as f64;
        for v in &mut stack {
            *v *= scale;
        }
    }
    StackedCorrelation {
        stack,
        n_windows: n_win,
    }
}

/// Run the stacked pipeline over every channel of `data` with HAEE
/// threads. Returns one [`StackedCorrelation`] per channel — the 3-D
/// `channel × lag × window` array collapsed over its striping (third)
/// dimension, as in the paper's stacking description.
pub fn stacked_interferometry(
    data: &Array2<f64>,
    params: &StackingParams,
    haee: &Haee,
) -> Result<Vec<StackedCorrelation>> {
    if params.master_channel >= data.rows() {
        return Err(DassaError::BadSelection(format!(
            "master channel {} out of range for {} channels",
            params.master_channel,
            data.rows()
        )));
    }
    if params.window == 0 || params.hop == 0 {
        return Err(DassaError::BadSelection(
            "window and hop must be positive".into(),
        ));
    }
    if params.n_windows(data.cols()) == 0 {
        return Err(DassaError::BadSelection(format!(
            "series of {} samples is shorter than one {}-sample window",
            data.cols(),
            params.window
        )));
    }
    let _root = obs::span("stacking");
    let master = {
        let _span = obs::span("prepare_master");
        prepare_master_windows(data.row(params.master_channel), params)
    };
    let _span = obs::span("apply");
    let placeholder = StackedCorrelation {
        stack: Vec::new(),
        n_windows: 0,
    };
    let out: SharedSlice<StackedCorrelation> =
        SharedSlice::from_vec(vec![placeholder; data.rows()]);
    omp::parallel(haee.threads_per_process, |ctx| {
        ctx.for_static(0..data.rows(), |ch| {
            let r = stack_channel(data.row(ch), &master);
            // SAFETY: static schedule assigns each channel to one thread.
            unsafe { out.write(ch, r) };
        });
    });
    Ok(out.into_vec())
}

/// The paper's explicit 3-D stacking intermediate (§IV: "a 3D data
/// array with a striping size as the third dimension may be produced"):
/// the full `channel × lag × window` cross-correlation volume, before
/// the window axis is collapsed.
///
/// Memory scales with `channels · window · n_windows`; prefer
/// [`stacked_interferometry`] (which accumulates in place) unless the
/// per-window volume itself is the analysis target (e.g. time-lapse
/// monitoring of the Green's function).
pub fn stacked_interferometry_3d(
    data: &Array2<f64>,
    params: &StackingParams,
    haee: &Haee,
) -> Result<Array3<f64>> {
    if params.master_channel >= data.rows() {
        return Err(DassaError::BadSelection(format!(
            "master channel {} out of range for {} channels",
            params.master_channel,
            data.rows()
        )));
    }
    if params.window == 0 || params.hop == 0 || params.n_windows(data.cols()) == 0 {
        return Err(DassaError::BadSelection(
            "invalid window/hop for this record length".into(),
        ));
    }
    let master = prepare_master_windows(data.row(params.master_channel), params);
    let n_win = master.spectra.len();
    let len = params.window;
    let volume: SharedSlice<f64> = SharedSlice::zeroed(data.rows() * len * n_win);
    omp::parallel(haee.threads_per_process, |ctx| {
        ctx.for_static(0..data.rows(), |ch| {
            let raw = data.row(ch);
            for w in 0..n_win.min(params.n_windows(raw.len())) {
                let start = w * params.hop;
                let prepared = prepare_window(&raw[start..start + len], params);
                let spec = dsp::fft_real(&prepared);
                let prod: Vec<Complex> = master.spectra[w]
                    .iter()
                    .zip(&spec)
                    .map(|(&m, &s)| m.conj() * s)
                    .collect();
                let corr = dsp::ifft_real(&prod);
                for (i, v) in corr.iter().enumerate() {
                    let lag = (i + len / 2) % len; // fftshift
                                                   // SAFETY: (ch, lag, w) cells are owned by this thread
                                                   // (channels are statically partitioned).
                    unsafe { volume.write((ch * len + lag) * n_win + w, *v) };
                }
            }
        });
    });
    Ok(Array3::from_vec(data.rows(), len, n_win, volume.into_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise (splitmix mixer).
    fn noise(seed: u64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let mut z = seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((i as u64).wrapping_mul(0xBF58476D1CE4E5B9));
                z ^= z >> 30;
                z = z.wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 27;
                (z % 2_000_000) as f64 / 1_000_000.0 - 1.0
            })
            .collect()
    }

    /// Two channels sharing a common noise source with `delay` samples
    /// of moveout, plus independent local noise.
    fn delayed_pair(n: usize, delay: usize, local_amp: f64) -> Array2<f64> {
        let common = noise(1, n + delay);
        let l0 = noise(2, n);
        let l1 = noise(3, n);
        let mut data = Vec::with_capacity(2 * n);
        for i in 0..n {
            data.push(common[i + delay] + local_amp * l0[i]);
        }
        for i in 0..n {
            data.push(common[i] + local_amp * l1[i]);
        }
        Array2::from_vec(2, n, data)
    }

    fn params(window: usize) -> StackingParams {
        StackingParams {
            window,
            hop: window,
            band: (0.05, 0.8),
            filter_order: 3,
            time_norm: TimeNorm::OneBit,
            whiten: true,
            master_channel: 0,
        }
    }

    #[test]
    fn recovers_interchannel_delay() {
        let delay = 7usize;
        let data = delayed_pair(8192, delay, 0.5);
        let out = stacked_interferometry(&data, &params(512), &Haee::builder().threads(2).build())
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].peak_lag(), 0, "master vs itself");
        assert_eq!(
            out[1].peak_lag(),
            delay as isize,
            "stacked EGF must recover the moveout"
        );
    }

    #[test]
    fn snr_grows_with_stacking() {
        // More windows → cleaner Green's function. Compare SNR using 4
        // windows vs 16 windows of the same process.
        let delay = 5usize;
        let p = params(512);
        let short = delayed_pair(512 * 4, delay, 1.0);
        let long = delayed_pair(512 * 16, delay, 1.0);
        let snr_short = stacked_interferometry(&short, &p, &Haee::builder().threads(1).build())
            .unwrap()[1]
            .snr();
        let snr_long = stacked_interferometry(&long, &p, &Haee::builder().threads(1).build())
            .unwrap()[1]
            .snr();
        assert!(
            snr_long > snr_short,
            "stacking must improve SNR: {snr_short:.2} -> {snr_long:.2}"
        );
    }

    #[test]
    fn window_counts() {
        let p = params(100);
        assert_eq!(p.n_windows(99), 0);
        assert_eq!(p.n_windows(100), 1);
        assert_eq!(p.n_windows(350), 3);
        let mut overlapping = p;
        overlapping.hop = 50;
        assert_eq!(overlapping.n_windows(200), 3);
    }

    #[test]
    fn thread_count_invariance() {
        let data = delayed_pair(4096, 3, 0.8);
        let p = params(512);
        let a = stacked_interferometry(&data, &p, &Haee::builder().threads(1).build()).unwrap();
        let b = stacked_interferometry(&data, &p, &Haee::builder().threads(4).build()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn normalization_modes_all_run() {
        let data = delayed_pair(2048, 4, 0.5);
        for norm in [
            TimeNorm::None,
            TimeNorm::OneBit,
            TimeNorm::RunningAbsMean(20),
        ] {
            let mut p = params(512);
            p.time_norm = norm;
            let out =
                stacked_interferometry(&data, &p, &Haee::builder().threads(1).build()).unwrap();
            assert_eq!(out[1].stack.len(), 512);
            assert!(out[1].stack.iter().all(|v| v.is_finite()), "{norm:?}");
        }
    }

    #[test]
    fn one_bit_resists_a_transient() {
        // Inject a huge spike (an "earthquake") into the master channel;
        // with one-bit normalization the recovered delay survives.
        let delay = 6usize;
        let mut data = delayed_pair(8192, delay, 0.5);
        let spike_at = 2000;
        let old = data.get(0, spike_at);
        data.set(0, spike_at, old + 500.0);
        let mut p = params(512);
        p.time_norm = TimeNorm::OneBit;
        let out = stacked_interferometry(&data, &p, &Haee::builder().threads(1).build()).unwrap();
        assert_eq!(
            out[1].peak_lag(),
            delay as isize,
            "transient must not break the stack"
        );
    }

    #[test]
    fn volume_collapses_to_the_stack() {
        // mean over the window axis of the 3-D volume == the in-place
        // stacked result (the two formulations of the same reduction).
        let data = delayed_pair(512 * 6, 4, 0.7);
        let p = params(512);
        let volume =
            stacked_interferometry_3d(&data, &p, &Haee::builder().threads(2).build()).unwrap();
        assert_eq!(volume.dims(), (2, 512, 6));
        let collapsed = volume.mean_axis2();
        let direct =
            stacked_interferometry(&data, &p, &Haee::builder().threads(1).build()).unwrap();
        for (ch, d) in direct.iter().enumerate() {
            for lag in 0..512 {
                let a = collapsed.get(ch, lag);
                let b = d.stack[lag];
                assert!((a - b).abs() < 1e-9, "ch={ch} lag={lag}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn errors_on_bad_params() {
        let data = delayed_pair(1024, 2, 0.5);
        let mut p = params(512);
        p.master_channel = 9;
        assert!(stacked_interferometry(&data, &p, &Haee::builder().threads(1).build()).is_err());
        let mut p = params(4096); // longer than the series
        p.master_channel = 0;
        assert!(stacked_interferometry(&data, &p, &Haee::builder().threads(1).build()).is_err());
        let mut p = params(512);
        p.hop = 0;
        assert!(stacked_interferometry(&data, &p, &Haee::builder().threads(1).build()).is_err());
    }
}
