//! HAEE — the Hybrid ArrayUDF Execution Engine (paper §V-B).
//!
//! The original ArrayUDF parallelizes purely with MPI: one process per
//! CPU core. For cross-correlation analyses that is doubly wasteful on a
//! multicore node: the master channel is replicated in every process,
//! and every core issues its own I/O requests. HAEE instead runs **one
//! MPI process per node with OpenMP threads inside**, sharing the master
//! channel and issuing one I/O request per node. [`Haee`] captures the
//! execution configuration; [`MemoryModel`] quantifies the
//! master-duplication effect that makes pure MPI run out of memory at
//! 91 nodes in Figure 8.

/// Execution configuration: how many processes (ranks) per node and how
/// many threads inside each process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Haee {
    /// MPI processes per computing node.
    pub processes_per_node: usize,
    /// OpenMP threads per process.
    pub threads_per_process: usize,
}

/// Builder for [`Haee`], the one way to construct a configuration:
/// `Haee::builder().threads(8).ranks(1).build()`.
///
/// Defaults to the paper's advocated hybrid layout — 1 rank per node,
/// every available core as a thread. Zero arguments clamp to 1.
#[derive(Debug, Clone, Copy)]
pub struct HaeeBuilder {
    ranks: usize,
    threads: usize,
}

impl HaeeBuilder {
    /// MPI processes (ranks) per computing node. 1 = hybrid; one per
    /// core = the original pure-MPI ArrayUDF.
    pub fn ranks(mut self, ranks: usize) -> HaeeBuilder {
        self.ranks = ranks;
        self
    }

    /// OpenMP threads inside each rank.
    pub fn threads(mut self, threads: usize) -> HaeeBuilder {
        self.threads = threads;
        self
    }

    /// Finalize, clamping both dimensions to at least 1.
    pub fn build(self) -> Haee {
        Haee {
            processes_per_node: self.ranks.max(1),
            threads_per_process: self.threads.max(1),
        }
    }
}

impl Haee {
    /// Start building a configuration. Defaults: 1 rank per node,
    /// [`omp::num_procs`] threads (the paper's hybrid layout).
    pub fn builder() -> HaeeBuilder {
        HaeeBuilder {
            ranks: 1,
            threads: omp::num_procs(),
        }
    }

    /// CPU cores used per node.
    pub fn cores_per_node(&self) -> usize {
        self.processes_per_node * self.threads_per_process
    }

    /// Copies of any per-process shared datum (e.g. the master channel)
    /// held on one node. Hybrid = 1, pure MPI = cores.
    pub fn master_copies_per_node(&self) -> usize {
        self.processes_per_node
    }

    /// Concurrent I/O requests issued per node when every process reads
    /// its partition — the contention driver in Figures 8 and 11.
    pub fn io_requests_per_node(&self) -> usize {
        self.processes_per_node
    }
}

/// Per-node memory accounting for a cross-correlation analysis
/// (Figure 8's out-of-memory analysis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Bytes of the master channel (shared per process).
    pub master_bytes: u64,
    /// Bytes of the node's data partition (independent of layout).
    pub partition_bytes: u64,
    /// Fixed per-process runtime overhead.
    pub per_process_overhead: u64,
}

impl MemoryModel {
    /// Total bytes resident on one node under `config`.
    pub fn bytes_per_node(&self, config: &Haee) -> u64 {
        let p = config.processes_per_node as u64;
        self.partition_bytes + p * (self.master_bytes + self.per_process_overhead)
    }

    /// Would the node exceed `capacity` bytes?
    pub fn exceeds(&self, config: &Haee, capacity: u64) -> bool {
        self.bytes_per_node(config) > capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_shares_master() {
        let h = Haee::builder().threads(16).build();
        assert_eq!(h.cores_per_node(), 16);
        assert_eq!(h.master_copies_per_node(), 1);
        assert_eq!(h.io_requests_per_node(), 1);
    }

    #[test]
    fn pure_mpi_duplicates_master() {
        let m = Haee::builder().ranks(16).threads(1).build();
        assert_eq!(m.cores_per_node(), 16);
        assert_eq!(m.master_copies_per_node(), 16);
        assert_eq!(m.io_requests_per_node(), 16);
    }

    #[test]
    fn io_request_ratio_matches_paper() {
        // "our HAEE issues 16X less I/O calls"
        let hybrid = Haee::builder().threads(16).build();
        let mpi = Haee::builder().ranks(16).threads(1).build();
        assert_eq!(
            mpi.io_requests_per_node() / hybrid.io_requests_per_node(),
            16
        );
    }

    #[test]
    fn builder_defaults_to_hybrid() {
        let h = Haee::builder().build();
        assert_eq!(h.processes_per_node, 1);
        assert_eq!(h.threads_per_process, omp::num_procs());
    }

    #[test]
    fn memory_model_reproduces_oom_asymmetry() {
        // With a large master channel, 16 processes blow a budget that
        // the hybrid config fits comfortably.
        let model = MemoryModel {
            master_bytes: 8 << 30,     // 8 GiB master (big FFT buffers)
            partition_bytes: 20 << 30, // 20 GiB data partition
            per_process_overhead: 64 << 20,
        };
        let capacity = 128u64 << 30; // Cori Haswell: 128 GB/node
        let pure_mpi = Haee::builder().ranks(16).threads(1).build();
        let hybrid = Haee::builder().threads(16).build();
        assert!(model.exceeds(&pure_mpi, capacity));
        assert!(!model.exceeds(&hybrid, capacity));
    }

    #[test]
    fn zero_arguments_clamp() {
        let h = Haee::builder().ranks(0).threads(0).build();
        assert_eq!(h.cores_per_node(), 1);
    }
}
