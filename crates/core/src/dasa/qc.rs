//! Channel quality control.
//!
//! Before any of the paper's analyses run on a real acquisition, bad
//! channels must be found and excluded: fibers have broken splices
//! (dead channels), poorly coupled sections, and instrument faults
//! (spiking channels). This module computes per-channel health metrics
//! with the hybrid engine and classifies channels against the array's
//! own statistics — the standard first stage of the Dou et al. workflow
//! the paper's pipelines continue.

use super::haee::Haee;
use arrayudf::Array2;
use dsp::{band_power, welch_psd};
use omp::SharedSlice;

/// Per-channel health metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChannelMetrics {
    /// Root-mean-square amplitude.
    pub rms: f64,
    /// Peak / RMS — large for spiking channels.
    pub crest_factor: f64,
    /// Kurtosis (excess) — heavy tails flag instrument faults.
    pub kurtosis: f64,
    /// Fraction of total power inside the analysis band.
    pub band_fraction: f64,
}

/// Classification of one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelHealth {
    /// Usable.
    Good,
    /// Amplitude far below the array median — broken/uncoupled.
    Dead,
    /// Heavy-tailed or clipping — instrument fault.
    Noisy,
}

/// QC thresholds (relative to array statistics where sensible).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QcParams {
    /// A channel is dead when its RMS falls below this fraction of the
    /// array median RMS.
    pub dead_rms_fraction: f64,
    /// A channel is noisy when its excess kurtosis exceeds this.
    pub noisy_kurtosis: f64,
    /// Analysis band (fractions of Nyquist) for `band_fraction`.
    pub band: (f64, f64),
    /// Welch segment length for the spectral metric.
    pub n_fft: usize,
}

impl Default for QcParams {
    fn default() -> Self {
        QcParams {
            dead_rms_fraction: 0.05,
            noisy_kurtosis: 10.0,
            band: (0.01, 0.5),
            n_fft: 256,
        }
    }
}

/// Compute metrics for one channel.
pub fn channel_metrics(x: &[f64], p: &QcParams) -> ChannelMetrics {
    let n = x.len();
    if n == 0 {
        return ChannelMetrics::default();
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    let mut m2 = 0.0;
    let mut m4 = 0.0;
    let mut peak = 0.0f64;
    for &v in x {
        let d = v - mean;
        m2 += d * d;
        m4 += d * d * d * d;
        peak = peak.max(v.abs());
    }
    m2 /= n as f64;
    m4 /= n as f64;
    let rms = m2.sqrt();
    let kurtosis = if m2 > 0.0 { m4 / (m2 * m2) - 3.0 } else { 0.0 };
    let band_fraction = if n >= p.n_fft {
        let psd = welch_psd(x, p.n_fft, p.n_fft / 2);
        let total: f64 = psd.iter().sum::<f64>() / psd.len() as f64;
        if total > 0.0 {
            band_power(&psd, p.band.0, p.band.1) / total
        } else {
            0.0
        }
    } else {
        0.0
    };
    ChannelMetrics {
        rms,
        crest_factor: if rms > 0.0 { peak / rms } else { 0.0 },
        kurtosis,
        band_fraction,
    }
}

/// The full QC report for an array.
#[derive(Debug, Clone, PartialEq)]
pub struct QcReport {
    /// Per-channel metrics.
    pub metrics: Vec<ChannelMetrics>,
    /// Per-channel classification.
    pub health: Vec<ChannelHealth>,
    /// Array median RMS (the dead-channel reference).
    pub median_rms: f64,
}

impl QcReport {
    /// Indices of usable channels.
    pub fn good_channels(&self) -> Vec<usize> {
        self.health
            .iter()
            .enumerate()
            .filter(|(_, h)| **h == ChannelHealth::Good)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices flagged with the given status.
    pub fn flagged(&self, status: ChannelHealth) -> Vec<usize> {
        self.health
            .iter()
            .enumerate()
            .filter(|(_, h)| **h == status)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Run QC over every channel with the hybrid engine's threads.
pub fn channel_qc(data: &Array2<f64>, params: &QcParams, haee: &Haee) -> QcReport {
    let out: SharedSlice<ChannelMetrics> =
        SharedSlice::from_vec(vec![ChannelMetrics::default(); data.rows()]);
    omp::parallel(haee.threads_per_process, |ctx| {
        ctx.for_static(0..data.rows(), |ch| {
            let m = channel_metrics(data.row(ch), params);
            // SAFETY: static schedule assigns each channel to one thread.
            unsafe { out.write(ch, m) };
        });
    });
    let metrics = out.into_vec();

    let mut rms_sorted: Vec<f64> = metrics.iter().map(|m| m.rms).collect();
    rms_sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median_rms = if rms_sorted.is_empty() {
        0.0
    } else {
        rms_sorted[rms_sorted.len() / 2]
    };

    let health = metrics
        .iter()
        .map(|m| {
            if m.rms < params.dead_rms_fraction * median_rms {
                ChannelHealth::Dead
            } else if m.kurtosis > params.noisy_kurtosis {
                ChannelHealth::Noisy
            } else {
                ChannelHealth::Good
            }
        })
        .collect();

    QcReport {
        metrics,
        health,
        median_rms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasgen::Scene;

    fn faulty_scene() -> (Scene, Array2<f64>) {
        let mut scene = Scene::small(16, 50.0, 31);
        scene.dead_channels = vec![3, 11];
        scene.noisy_channels = vec![7];
        let raw = scene.render(0.0, 4000);
        let data = Array2::from_vec(
            raw.rows(),
            raw.cols(),
            raw.as_slice().iter().map(|&v| v as f64).collect(),
        );
        (scene, data)
    }

    #[test]
    fn finds_injected_faults_exactly() {
        let (_, data) = faulty_scene();
        let report = channel_qc(
            &data,
            &QcParams::default(),
            &Haee::builder().threads(2).build(),
        );
        assert_eq!(report.flagged(ChannelHealth::Dead), vec![3, 11]);
        assert_eq!(report.flagged(ChannelHealth::Noisy), vec![7]);
        assert_eq!(report.good_channels().len(), 13);
    }

    #[test]
    fn clean_array_is_all_good() {
        let scene = Scene::small(8, 50.0, 5);
        let raw = scene.render(0.0, 3000);
        let data = Array2::from_vec(
            raw.rows(),
            raw.cols(),
            raw.as_slice().iter().map(|&v| v as f64).collect(),
        );
        let report = channel_qc(
            &data,
            &QcParams::default(),
            &Haee::builder().threads(2).build(),
        );
        assert_eq!(report.good_channels().len(), 8);
    }

    #[test]
    fn metrics_have_expected_structure() {
        let (_, data) = faulty_scene();
        let p = QcParams::default();
        let good = channel_metrics(data.row(0), &p);
        let dead = channel_metrics(data.row(3), &p);
        let noisy = channel_metrics(data.row(7), &p);
        assert!(good.rms > 100.0 * dead.rms);
        assert!(noisy.kurtosis > good.kurtosis + 5.0);
        assert!(noisy.crest_factor > good.crest_factor);
        assert!((0.0..=1.001).contains(&good.band_fraction));
    }

    #[test]
    fn gaussianlike_noise_has_small_kurtosis() {
        let scene = Scene::small(1, 50.0, 77);
        let raw = scene.render(0.0, 20000);
        let x: Vec<f64> = raw.row(0).iter().map(|&v| v as f64).collect();
        let m = channel_metrics(&x, &QcParams::default());
        assert!(m.kurtosis.abs() < 1.0, "excess kurtosis {}", m.kurtosis);
    }

    #[test]
    fn thread_invariance() {
        let (_, data) = faulty_scene();
        let a = channel_qc(
            &data,
            &QcParams::default(),
            &Haee::builder().threads(1).build(),
        );
        let b = channel_qc(
            &data,
            &QcParams::default(),
            &Haee::builder().threads(4).build(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let m = channel_metrics(&[], &QcParams::default());
        assert_eq!(m.rms, 0.0);
        let m = channel_metrics(&[1.0, 2.0], &QcParams::default());
        assert!(m.rms > 0.0);
        assert_eq!(m.band_fraction, 0.0, "too short for a Welch segment");
    }
}
