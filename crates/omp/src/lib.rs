//! `omp` — an OpenMP-style thread-team substrate.
//!
//! The DASSA paper extends ArrayUDF with a *hybrid MPI + OpenMP* execution
//! engine (HAEE, Section V-B). Its core algorithm, `ApplyMT` (Algorithm 1),
//! is written in OpenMP pragmas:
//!
//! ```c
//! #pragma omp parallel
//! {
//!     #pragma omp for schedule(static)
//!     ...
//!     #pragma omp barrier
//!     #pragma omp single
//!     ...
//! }
//! ```
//!
//! Rust has no OpenMP, so this crate reproduces the constructs the paper
//! uses, with the same fork-join semantics:
//!
//! * [`parallel`] — a parallel region executed by a team of threads
//!   (SPMD: every thread runs the same closure),
//! * [`Ctx::for_static`] / [`Ctx::for_dynamic`] — worksharing loops with
//!   `schedule(static)` / `schedule(dynamic, chunk)` semantics,
//! * [`Ctx::barrier`], [`Ctx::single`], [`Ctx::critical`],
//! * [`SharedSlice`] — a disjoint-write shared output buffer, needed for
//!   the final `R[p[h-1] : p[h]] = Rp` scatter of Algorithm 1.
//!
//! # Example: a three-point moving average, OpenMP style
//! ```
//! let input: Vec<f64> = (0..100).map(|i| i as f64).collect();
//! let out = omp::SharedVec::zeroed(input.len());
//! omp::parallel(4, |ctx| {
//!     ctx.for_static(0..input.len(), |i| {
//!         let lo = i.saturating_sub(1);
//!         let hi = (i + 1).min(input.len() - 1);
//!         let avg = (input[lo] + input[i] + input[hi]) / 3.0;
//!         // Each index is written by exactly one thread.
//!         unsafe { out.write(i, avg) };
//!     });
//! });
//! let out = out.into_vec();
//! assert!((out[50] - 50.0).abs() < 1e-12);
//! ```

mod shared;
mod team;

pub use shared::{SharedSlice, SharedVec};
pub use team::{parallel, parallel_reduce, Ctx, Schedule};

/// Returns the "number of processors" a default team would use, analogous
/// to `omp_get_num_procs()`. Honors the `OMP_NUM_THREADS` environment
/// variable when set.
pub fn num_procs() -> usize {
    if let Ok(v) = std::env::var("OMP_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn num_procs_at_least_one() {
        assert!(num_procs() >= 1);
    }

    #[test]
    fn parallel_runs_every_thread_once() {
        let count = AtomicUsize::new(0);
        parallel(7, |ctx| {
            assert_eq!(ctx.num_threads(), 7);
            assert!(ctx.thread_num() < 7);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn single_thread_team_runs_inline() {
        let hit = std::sync::atomic::AtomicBool::new(false);
        parallel(1, |ctx| {
            assert_eq!(ctx.thread_num(), 0);
            ctx.barrier();
            ctx.single(|| hit.store(true, Ordering::Relaxed));
        });
        assert!(hit.load(Ordering::Relaxed));
    }
}
