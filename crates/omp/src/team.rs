//! Parallel regions, worksharing loops, and team synchronization.

use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

/// Loop schedule, mirroring OpenMP's `schedule(...)` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous blocks of ~`n / num_threads` iterations per thread
    /// (OpenMP's default static schedule).
    Static,
    /// Fixed-size chunks dealt round-robin to threads.
    StaticChunked(usize),
    /// Fixed-size chunks claimed on demand from a shared counter.
    Dynamic(usize),
}

/// Team-wide state shared by every thread of a parallel region.
struct Team {
    num_threads: usize,
    barrier: Barrier,
    critical: Mutex<()>,
    /// `single` constructs claimed so far, keyed by construct sequence
    /// number (threads execute constructs in the same SPMD order).
    singles: Mutex<HashMap<usize, ()>>,
    /// Shared iteration counters for dynamic loops, keyed the same way.
    dyn_counters: Mutex<HashMap<usize, Arc<AtomicUsize>>>,
}

/// Per-thread handle inside a parallel region, analogous to the implicit
/// state behind `omp_get_thread_num()` etc.
pub struct Ctx<'t> {
    team: &'t Team,
    thread_num: usize,
    single_seq: Cell<usize>,
    loop_seq: Cell<usize>,
}

impl<'t> Ctx<'t> {
    /// This thread's index within the team (`omp_get_thread_num`).
    pub fn thread_num(&self) -> usize {
        self.thread_num
    }

    /// Team size (`omp_get_num_threads`).
    pub fn num_threads(&self) -> usize {
        self.team.num_threads
    }

    /// `#pragma omp barrier`: wait until every team member arrives.
    pub fn barrier(&self) {
        self.team.barrier.wait();
    }

    /// `#pragma omp critical`: run `f` under the team-wide mutex.
    pub fn critical<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.team.critical.lock();
        f()
    }

    /// `#pragma omp single`: exactly one thread runs `f`; all threads then
    /// synchronize on the implicit end-of-single barrier.
    ///
    /// Returns `Some(result)` on the executing thread, `None` elsewhere.
    pub fn single<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        let seq = self.single_seq.get();
        self.single_seq.set(seq + 1);
        let won = {
            let mut claimed = self.team.singles.lock();
            claimed.insert(seq, ()).is_none()
        };
        let out = if won { Some(f()) } else { None };
        self.barrier();
        out
    }

    /// The contiguous iteration block this thread owns under the default
    /// static schedule for a loop of `n` iterations.
    pub fn static_block(&self, n: usize) -> Range<usize> {
        static_block(n, self.thread_num, self.team.num_threads)
    }

    /// `#pragma omp for schedule(static)`: each thread runs its contiguous
    /// block of `range`. No implied barrier (pair with [`Ctx::barrier`]
    /// when the original pragma has one, as Algorithm 1 does).
    pub fn for_static(&self, range: Range<usize>, f: impl FnMut(usize)) {
        self.for_schedule(range, Schedule::Static, f)
    }

    /// `#pragma omp for schedule(dynamic, chunk)`.
    pub fn for_dynamic(&self, range: Range<usize>, chunk: usize, f: impl FnMut(usize)) {
        self.for_schedule(range, Schedule::Dynamic(chunk.max(1)), f)
    }

    /// Worksharing loop with an explicit [`Schedule`].
    pub fn for_schedule(&self, range: Range<usize>, sched: Schedule, mut f: impl FnMut(usize)) {
        let base = range.start;
        let n = range.end.saturating_sub(range.start);
        match sched {
            Schedule::Static => {
                for i in self.static_block(n) {
                    f(base + i);
                }
            }
            Schedule::StaticChunked(chunk) => {
                let chunk = chunk.max(1);
                let t = self.team.num_threads;
                let mut start = self.thread_num * chunk;
                while start < n {
                    let end = (start + chunk).min(n);
                    for i in start..end {
                        f(base + i);
                    }
                    start += t * chunk;
                }
            }
            Schedule::Dynamic(chunk) => {
                let seq = self.loop_seq.get();
                self.loop_seq.set(seq + 1);
                let counter = {
                    let mut map = self.team.dyn_counters.lock();
                    Arc::clone(
                        map.entry(seq)
                            .or_insert_with(|| Arc::new(AtomicUsize::new(0))),
                    )
                };
                loop {
                    let start = counter.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for i in start..end {
                        f(base + i);
                    }
                }
            }
        }
    }
}

impl<'t> Ctx<'t> {
    /// `#pragma omp sections`: distribute the section closures across
    /// the team round-robin, with the pragma's implicit end barrier.
    /// Called SPMD (every thread passes the same list); each section
    /// executes exactly once, on the thread that owns its slot.
    pub fn sections(&self, sections: &[&dyn Fn()]) {
        let n = sections.len();
        let t = self.team.num_threads;
        let mut i = self.thread_num;
        while i < n {
            (sections[i])();
            i += t;
        }
        self.barrier();
    }
}

/// The contiguous block of `0..n` owned by thread `h` of `t` under the
/// default static schedule: ceil-divided chunks, front-loaded.
pub(crate) fn static_block(n: usize, h: usize, t: usize) -> Range<usize> {
    debug_assert!(h < t);
    let chunk = n.div_ceil(t.max(1));
    let start = (h * chunk).min(n);
    let end = ((h + 1) * chunk).min(n);
    start..end
}

/// `#pragma omp parallel num_threads(n)`: run `f` on a team of `n`
/// threads and join them all (fork-join). The closure receives a per-thread
/// [`Ctx`]. With `n == 1` the region runs inline on the caller's thread.
pub fn parallel<F>(num_threads: usize, f: F)
where
    F: Fn(&Ctx) + Sync,
{
    let num_threads = num_threads.max(1);
    let team = Team {
        num_threads,
        barrier: Barrier::new(num_threads),
        critical: Mutex::new(()),
        singles: Mutex::new(HashMap::new()),
        dyn_counters: Mutex::new(HashMap::new()),
    };
    if num_threads == 1 {
        let ctx = Ctx {
            team: &team,
            thread_num: 0,
            single_seq: Cell::new(0),
            loop_seq: Cell::new(0),
        };
        f(&ctx);
        return;
    }
    std::thread::scope(|scope| {
        for h in 0..num_threads {
            let team = &team;
            let f = &f;
            scope.spawn(move || {
                let ctx = Ctx {
                    team,
                    thread_num: h,
                    single_seq: Cell::new(0),
                    loop_seq: Cell::new(0),
                };
                f(&ctx);
            });
        }
    });
}

/// Parallel map-reduce over `range`: `reduce(map(i))` folded across the
/// team, analogous to `#pragma omp parallel for reduction(op:acc)`.
pub fn parallel_reduce<T, M, R>(
    num_threads: usize,
    range: Range<usize>,
    identity: T,
    map: M,
    reduce: R,
) -> T
where
    T: Send + Sync + Clone,
    M: Fn(usize) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    let partials: Mutex<Vec<T>> = Mutex::new(Vec::new());
    parallel(num_threads, |ctx| {
        let mut acc = identity.clone();
        ctx.for_static(range.clone(), |i| {
            acc = reduce(acc.clone(), map(i));
        });
        partials.lock().push(acc);
    });
    partials.into_inner().into_iter().fold(identity, &reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn static_block_covers_range_disjointly() {
        for n in [0usize, 1, 7, 16, 100] {
            for t in [1usize, 2, 3, 8, 17] {
                let mut seen = vec![false; n];
                for h in 0..t {
                    for i in static_block(n, h, t) {
                        assert!(!seen[i], "index {i} assigned twice (n={n}, t={t})");
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "coverage gap n={n} t={t}");
            }
        }
    }

    #[test]
    fn for_static_visits_all_indices_once() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel(4, |ctx| {
            ctx.for_static(0..n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_dynamic_visits_all_indices_once() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel(4, |ctx| {
            ctx.for_dynamic(0..n, 16, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn repeated_dynamic_loops_use_fresh_counters() {
        let n = 64;
        let total = AtomicUsize::new(0);
        parallel(3, |ctx| {
            for _ in 0..4 {
                ctx.for_dynamic(0..n, 8, |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
                ctx.barrier();
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * n);
    }

    #[test]
    fn static_chunked_round_robin() {
        let n = 10;
        let owner: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
        parallel(2, |ctx| {
            ctx.for_schedule(0..n, Schedule::StaticChunked(2), |i| {
                owner[i].store(ctx.thread_num(), Ordering::Relaxed);
            });
        });
        let owners: Vec<usize> = owner.iter().map(|o| o.load(Ordering::Relaxed)).collect();
        assert_eq!(owners, vec![0, 0, 1, 1, 0, 0, 1, 1, 0, 0]);
    }

    #[test]
    fn single_executes_exactly_once_per_construct() {
        let count = AtomicUsize::new(0);
        parallel(8, |ctx| {
            for _ in 0..5 {
                ctx.single(|| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn single_returns_value_on_winner_only() {
        let winners = AtomicUsize::new(0);
        parallel(6, |ctx| {
            if ctx.single(|| 42) == Some(42) {
                winners.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn critical_is_mutually_exclusive() {
        // A non-atomic counter mutated only inside `critical` must end up
        // exact; races would lose increments.
        let cell = crate::SharedSlice::from_vec(vec![0u64]);
        parallel(8, |ctx| {
            for _ in 0..100 {
                ctx.critical(|| unsafe {
                    let v = cell.read(0);
                    cell.write(0, v + 1);
                });
            }
        });
        assert_eq!(cell.into_vec()[0], 800);
    }

    #[test]
    fn barrier_orders_phases() {
        // Phase 1 writes; barrier; phase 2 reads — the reads must observe
        // every phase-1 write.
        let n = 128;
        let buf = crate::SharedSlice::<u64>::zeroed(n);
        let sum = AtomicUsize::new(0);
        parallel(4, |ctx| {
            ctx.for_static(0..n, |i| unsafe { buf.write(i, i as u64) });
            ctx.barrier();
            let mut local = 0usize;
            ctx.for_static(0..n, |i| {
                local += unsafe { buf.read(i) } as usize;
            });
            sum.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn parallel_reduce_sums() {
        let total = parallel_reduce(4, 0..1000, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, 499_500);
    }

    #[test]
    fn parallel_reduce_empty_range() {
        let total = parallel_reduce(4, 10..10, 7u64, |i| i as u64, |a, b| a.max(b));
        assert_eq!(total, 7);
    }

    #[test]
    fn sections_each_run_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        let owner: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(usize::MAX)).collect();
        parallel(3, |ctx| {
            let fns: Vec<Box<dyn Fn()>> = (0..5)
                .map(|i| {
                    let h = &hits[i];
                    let o = &owner[i];
                    let me = ctx.thread_num();
                    Box::new(move || {
                        h.fetch_add(1, Ordering::Relaxed);
                        o.store(me, Ordering::Relaxed);
                    }) as Box<dyn Fn()>
                })
                .collect();
            let refs: Vec<&dyn Fn()> = fns.iter().map(|b| &**b).collect();
            ctx.sections(&refs);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "section {i} runs exactly once"
            );
            assert_eq!(owner[i].load(Ordering::Relaxed), i % 3, "round-robin owner");
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let hit = AtomicUsize::new(0);
        parallel(0, |_| {
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }
}
