//! Disjoint-write shared buffers for worksharing loops.
//!
//! Algorithm 1 of the DASSA paper ends with every thread copying its
//! per-thread result vector into a disjoint span of the shared result
//! `R[p[h-1] : p[h]]`. In C/OpenMP this is a plain aliased write; in Rust
//! we model it with an [`UnsafeCell`]-backed buffer whose safety contract
//! is "each element is written by at most one thread per region".

use std::cell::UnsafeCell;

/// A fixed-size buffer that multiple threads may write disjoint elements
/// of concurrently.
///
/// # Safety contract
/// Callers must guarantee that between synchronization points no element
/// index is written by more than one thread, and that elements are not
/// read while another thread may be writing them. Worksharing loops with
/// static or dynamic schedules hand out disjoint index sets, satisfying
/// this by construction.
pub struct SharedSlice<T> {
    data: UnsafeCell<Box<[T]>>,
}

// SAFETY: all mutation goes through `unsafe` methods whose contract forbids
// data races; the type itself adds no thread affinity.
unsafe impl<T: Send> Sync for SharedSlice<T> {}
unsafe impl<T: Send> Send for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    /// Wrap an existing vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        SharedSlice {
            data: UnsafeCell::new(v.into_boxed_slice()),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        // SAFETY: reading the length does not alias element data.
        unsafe { (&*self.data.get()).len() }
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write one element.
    ///
    /// # Safety
    /// No other thread may concurrently read or write index `i`.
    pub unsafe fn write(&self, i: usize, value: T) {
        let slice = &mut *self.data.get();
        slice[i] = value;
    }

    /// Read one element.
    ///
    /// # Safety
    /// No other thread may concurrently write index `i`.
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        let slice = &*self.data.get();
        slice[i]
    }

    /// Copy `src` into the span starting at `offset`.
    ///
    /// # Safety
    /// The span `offset .. offset + src.len()` must not be concurrently
    /// accessed by any other thread.
    pub unsafe fn write_slice(&self, offset: usize, src: &[T])
    where
        T: Copy,
    {
        let slice = &mut *self.data.get();
        slice[offset..offset + src.len()].copy_from_slice(src);
    }

    /// Recover the underlying vector once all threads have joined.
    pub fn into_vec(self) -> Vec<T> {
        self.data.into_inner().into_vec()
    }

    /// Borrow the contents. Requires `&mut self`, which proves no other
    /// thread holds a reference.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.data.get_mut()
    }
}

/// Convenience alias used throughout DASSA: a [`SharedSlice`] constructed
/// zero-filled, like a freshly `calloc`ed OpenMP output array.
pub type SharedVec<T> = SharedSlice<T>;

impl<T: Default + Clone> SharedSlice<T> {
    /// Allocate `n` default-initialized elements.
    pub fn zeroed(n: usize) -> Self {
        SharedSlice::from_vec(vec![T::default(); n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let s = SharedSlice::from_vec(vec![0u32; 4]);
        unsafe {
            s.write(2, 42);
            assert_eq!(s.read(2), 42);
        }
        assert_eq!(s.into_vec(), vec![0, 0, 42, 0]);
    }

    #[test]
    fn write_slice_span() {
        let s = SharedSlice::<i64>::zeroed(6);
        unsafe { s.write_slice(2, &[7, 8, 9]) };
        assert_eq!(s.into_vec(), vec![0, 0, 7, 8, 9, 0]);
    }

    #[test]
    fn len_and_empty() {
        let s = SharedSlice::<u8>::zeroed(3);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let e = SharedSlice::<u8>::zeroed(0);
        assert!(e.is_empty());
    }

    #[test]
    fn as_mut_slice_after_region() {
        let mut s = SharedSlice::from_vec(vec![1, 2, 3]);
        s.as_mut_slice()[0] = 10;
        assert_eq!(s.into_vec(), vec![10, 2, 3]);
    }
}
