//! The `dasl` typechecker.
//!
//! Pipelines are checked stage by stage against a signature table:
//! every stage declares its parameters (name, kind, required) and a
//! shape rule mapping the incoming [`Ty`] to the outgoing one. Shapes
//! track what is knowable statically — a `load` with a `ch=a..b` clause
//! pins the channel count, which lets the checker reject an `xcorr`
//! master outside it before any I/O happens. Sample counts stay
//! [`Dim::Unknown`] until the corpus' sampling rate is known (the time
//! window is in seconds), so the checker never guesses.
//!
//! On success the pipeline lowers to a list of [`CheckedStage`]s — the
//! compiler's input — plus the pipeline's result [`Ty`].

use crate::ast::{Arg, Expr, Pipeline, Stage};
use crate::bytecode::{Kernel, LoadSpec, LocalSimSpec, StackSpec, Strategy};
use crate::span::{Error, Span};
use std::fmt;

/// A dimension that may or may not be statically known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    /// Known at typecheck time.
    Known(u64),
    /// Only known once the corpus is scanned.
    Unknown,
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Known(n) => write!(f, "{n}"),
            Dim::Unknown => write!(f, "?"),
        }
    }
}

/// The type of the value flowing between stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// A `channels × samples` waveform block.
    Waveforms {
        /// Channel count.
        channels: Dim,
        /// Samples per channel.
        samples: Dim,
    },
    /// One scalar score per channel (master-channel correlation).
    Scores {
        /// Channel count.
        channels: Dim,
    },
    /// A dense 2-D result map (similarity maps).
    Map {
        /// Row count.
        channels: Dim,
        /// Columns per row.
        samples: Dim,
    },
    /// A list of stacked windowed cross-correlations.
    Stacks {
        /// Channel count.
        channels: Dim,
    },
}

impl Ty {
    /// The channel dimension, whatever the variant.
    pub fn channels(&self) -> Dim {
        match self {
            Ty::Waveforms { channels, .. }
            | Ty::Scores { channels }
            | Ty::Map { channels, .. }
            | Ty::Stacks { channels } => *channels,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Waveforms { channels, samples } => {
                write!(f, "waveforms[{channels} x {samples}]")
            }
            Ty::Scores { channels } => write!(f, "scores[{channels}]"),
            Ty::Map { channels, samples } => write!(f, "map[{channels} x {samples}]"),
            Ty::Stacks { channels } => write!(f, "stacks[{channels}]"),
        }
    }
}

/// A typechecked stage, ready for the compiler.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckedStage {
    /// The leading `load(...)` clause.
    Load(LoadSpec),
    /// An element-wise kernel (fusion candidate).
    Kernel(Kernel),
    /// `xcorr(master=ch[k])`.
    Xcorr {
        /// Master channel index.
        master: u64,
    },
    /// `localsim(...)`.
    LocalSim(LocalSimSpec),
    /// `stack(...)`.
    Stack(StackSpec),
}

/// A typechecked pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Checked {
    /// The stages, in pipe order; always starts with
    /// [`CheckedStage::Load`].
    pub stages: Vec<CheckedStage>,
    /// The pipeline's result type.
    pub result: Ty,
}

/// Every stage the language knows, for `did you mean` suggestions.
pub const STAGE_NAMES: &[&str] = &[
    "load", "detrend", "demean", "onebit", "bandpass", "resample", "xcorr", "localsim", "stack",
];

/// Typecheck a parsed pipeline.
pub fn check(p: &Pipeline) -> Result<Checked, Error> {
    let mut stages = Vec::with_capacity(p.stages.len());
    let mut ty: Option<Ty> = None;
    for (i, stage) in p.stages.iter().enumerate() {
        if stage.name == "load" {
            if i != 0 {
                return Err(Error::new(
                    "`load` must be the first stage of the pipeline",
                    stage.name_span,
                ));
            }
        } else if i == 0 {
            return Err(Error::new(
                format!(
                    "the pipeline must start with `load(...)`, not `{}`",
                    stage.name
                ),
                stage.name_span,
            ));
        }
        let input = ty;
        let (checked, out) = check_stage(stage, input)?;
        stages.push(checked);
        ty = Some(out);
    }
    Ok(Checked {
        stages,
        result: ty.expect("parser guarantees at least one stage"),
    })
}

/// What waveform input a non-`load` stage sees, or an error if the
/// previous stage already ended the pipeline.
fn want_waveforms(stage: &Stage, input: Option<Ty>) -> Result<(Dim, Dim), Error> {
    match input.expect("non-first stage has an input") {
        Ty::Waveforms { channels, samples } => Ok((channels, samples)),
        other => Err(Error::new(
            format!(
                "`{}` expects waveforms, but the previous stage produced {other}",
                stage.name
            ),
            stage.name_span,
        )),
    }
}

fn check_stage(stage: &Stage, input: Option<Ty>) -> Result<(CheckedStage, Ty), Error> {
    match stage.name.as_str() {
        "load" => check_load(stage),
        "detrend" | "demean" | "onebit" => {
            bind(stage, &[])?;
            let (channels, samples) = want_waveforms(stage, input)?;
            let kernel = match stage.name.as_str() {
                "detrend" => Kernel::Detrend,
                "demean" => Kernel::Demean,
                _ => Kernel::OneBit,
            };
            Ok((
                CheckedStage::Kernel(kernel),
                Ty::Waveforms { channels, samples },
            ))
        }
        "bandpass" => {
            let bound = bind(
                stage,
                &[
                    Param::req("lo", Kind::Num),
                    Param::req("hi", Kind::Num),
                    Param::opt("order", Kind::Int),
                ],
            )?;
            let (channels, samples) = want_waveforms(stage, input)?;
            let lo = num(&bound[0]);
            let hi = num(&bound[1]);
            if !(lo.0 > 0.0 && hi.0 > lo.0) {
                return Err(Error::new(
                    format!(
                        "bandpass corners must satisfy 0 < lo < hi (got {} and {})",
                        lo.0, hi.0
                    ),
                    lo.1.to(hi.1),
                ));
            }
            let order = bound[2].as_ref().map_or(Ok(4), |a| {
                let (v, s) = int(a);
                if v == 0 {
                    Err(Error::new("bandpass order must be at least 1", s))
                } else {
                    Ok(v as usize)
                }
            })?;
            Ok((
                CheckedStage::Kernel(Kernel::Bandpass {
                    lo_hz: lo.0,
                    hi_hz: hi.0,
                    order,
                }),
                Ty::Waveforms { channels, samples },
            ))
        }
        "resample" => {
            // `resample(q)` decimates by q; `resample(p, q)` is the full
            // rational form. Bind by hand since one positional arg means
            // the *second* parameter.
            let bound = if stage.args.len() == 1 && stage.args[0].name.is_none() {
                let q = expect_kind(stage, &stage.args[0], "q", Kind::Int)?;
                [None, Some(q)]
            } else {
                let b = bind(
                    stage,
                    &[Param::req("p", Kind::Int), Param::req("q", Kind::Int)],
                )?;
                [b[0].clone(), b[1].clone()]
            };
            let (channels, samples) = want_waveforms(stage, input)?;
            let p = bound[0].as_ref().map_or((1, stage.span), int);
            let q = int(bound[1].as_ref().expect("q is required"));
            if p.0 == 0 || q.0 == 0 {
                return Err(Error::new(
                    "resample factors must be positive integers",
                    p.1.to(q.1),
                ));
            }
            let kernel = Kernel::Resample {
                p: p.0 as usize,
                q: q.0 as usize,
            };
            let samples = match samples {
                Dim::Known(n) => Dim::Known(kernel.out_len(n as usize) as u64),
                Dim::Unknown => Dim::Unknown,
            };
            Ok((
                CheckedStage::Kernel(kernel),
                Ty::Waveforms { channels, samples },
            ))
        }
        "xcorr" => {
            let bound = bind(stage, &[Param::req("master", Kind::Chan)])?;
            let (channels, _) = want_waveforms(stage, input)?;
            let (master, mspan) = chan(bound[0].as_ref().expect("master is required"));
            if let Dim::Known(c) = channels {
                if master >= c {
                    return Err(Error::new(
                        format!(
                            "master channel {master} is out of range: the pipeline carries \
                             {c} channels"
                        ),
                        mspan,
                    ));
                }
            }
            Ok((CheckedStage::Xcorr { master }, Ty::Scores { channels }))
        }
        "localsim" => {
            let bound = bind(
                stage,
                &[
                    Param::opt("half_window", Kind::Int),
                    Param::opt("channel_offset", Kind::Int),
                    Param::opt("search_half", Kind::Int),
                    Param::opt("time_stride", Kind::Int),
                ],
            )?;
            let (channels, _) = want_waveforms(stage, input)?;
            let d = LocalSimSpec::default();
            let spec = LocalSimSpec {
                half_window: positive(stage, "half_window", &bound[0], d.half_window)?,
                channel_offset: positive(stage, "channel_offset", &bound[1], d.channel_offset)?,
                search_half: bound[2].as_ref().map_or(d.search_half, |a| int(a).0),
                time_stride: positive(stage, "time_stride", &bound[3], d.time_stride)?,
            };
            Ok((
                CheckedStage::LocalSim(spec),
                Ty::Map {
                    channels,
                    samples: Dim::Unknown,
                },
            ))
        }
        "stack" => {
            let bound = bind(
                stage,
                &[
                    Param::opt("window", Kind::Int),
                    Param::opt("hop", Kind::Int),
                    Param::opt("master", Kind::Chan),
                ],
            )?;
            let (channels, samples) = want_waveforms(stage, input)?;
            let window = positive(stage, "window", &bound[0], 512)?;
            let hop = positive(stage, "hop", &bound[1], window)?;
            let (master, mspan) = bound[2].as_ref().map_or((0, stage.name_span), chan);
            if let Dim::Known(c) = channels {
                if master >= c {
                    return Err(Error::new(
                        format!(
                            "master channel {master} is out of range: the pipeline carries \
                             {c} channels"
                        ),
                        mspan,
                    ));
                }
            }
            if let Dim::Known(n) = samples {
                if window > n {
                    return Err(Error::new(
                        format!(
                            "stack window {window} exceeds the {n} samples the pipeline carries"
                        ),
                        stage.span,
                    ));
                }
            }
            Ok((
                CheckedStage::Stack(StackSpec {
                    window,
                    hop,
                    master,
                }),
                Ty::Stacks { channels },
            ))
        }
        other => {
            let mut msg = format!("unknown stage `{other}`");
            if let Some(s) = suggest(other) {
                msg.push_str(&format!(" (did you mean `{s}`?)"));
            }
            Err(Error::new(msg, stage.name_span))
        }
    }
}

fn check_load(stage: &Stage) -> Result<(CheckedStage, Ty), Error> {
    let bound = bind(
        stage,
        &[
            Param::req("corpus", Kind::Str),
            Param::opt("t", Kind::Range),
            Param::opt("ch", Kind::Range),
            Param::opt("strategy", Kind::Str),
        ],
    )?;
    let corpus = match &bound[0].as_ref().expect("corpus is required").value {
        Expr::Str(s, _) => s.clone(),
        _ => unreachable!("kind-checked"),
    };
    let time = bound[1].as_ref().map(range);
    let channels = bound[2].as_ref().map(range);
    let strategy = match &bound[3] {
        None => Strategy::Auto,
        Some(a) => match &a.value {
            Expr::Str(s, span) => match s.as_str() {
                "auto" => Strategy::Auto,
                "collective" => Strategy::Collective,
                "comm_avoiding" => Strategy::CommAvoiding,
                "modeled" => Strategy::Modeled,
                other => {
                    return Err(Error::new(
                        format!(
                            "unknown strategy `{other}` (expected `auto`, `collective`, \
                             `comm_avoiding`, or `modeled`)"
                        ),
                        *span,
                    ));
                }
            },
            _ => unreachable!("kind-checked"),
        },
    };
    let ch_dim = channels.map_or(Dim::Unknown, |(a, b)| Dim::Known(b - a));
    Ok((
        CheckedStage::Load(LoadSpec {
            corpus,
            time,
            channels,
            strategy,
        }),
        Ty::Waveforms {
            channels: ch_dim,
            // The time window is in seconds; the sample count needs the
            // corpus' sampling rate, which the engine learns at scan
            // time.
            samples: Dim::Unknown,
        },
    ))
}

// ---------------------------------------------------------------------------
// Argument binding
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum Kind {
    Num,
    Int,
    Str,
    Range,
    Chan,
}

impl Kind {
    fn describe(self) -> &'static str {
        match self {
            Kind::Num => "a number",
            Kind::Int => "a non-negative integer",
            Kind::Str => "a string",
            Kind::Range => "a range like `0..60`",
            Kind::Chan => "a channel reference like `ch[0]`",
        }
    }

    fn admits(self, e: &Expr) -> bool {
        match (self, e) {
            (Kind::Num, Expr::Num(..)) => true,
            (Kind::Int, Expr::Num(n, _)) => *n >= 0.0 && n.fract() == 0.0,
            (Kind::Str, Expr::Str(..)) => true,
            (Kind::Range, Expr::Range(..)) => true,
            (Kind::Chan, Expr::Chan(..)) => true,
            _ => false,
        }
    }
}

struct Param {
    name: &'static str,
    kind: Kind,
    required: bool,
}

impl Param {
    fn req(name: &'static str, kind: Kind) -> Param {
        Param {
            name,
            kind,
            required: true,
        }
    }

    fn opt(name: &'static str, kind: Kind) -> Param {
        Param {
            name,
            kind,
            required: false,
        }
    }
}

fn expect_kind(stage: &Stage, arg: &Arg, pname: &str, kind: Kind) -> Result<Arg, Error> {
    if kind.admits(&arg.value) {
        Ok(arg.clone())
    } else {
        let got = match (&kind, &arg.value) {
            (Kind::Int, Expr::Num(n, _)) => format!("`{n}`"),
            (_, v) => v.kind_name().to_string(),
        };
        Err(Error::new(
            format!(
                "`{}` argument `{pname}` wants {}, got {got}",
                stage.name,
                kind.describe()
            ),
            arg.value.span(),
        ))
    }
}

/// Match a stage's written arguments against its parameter list:
/// positionals fill parameters left to right, named arguments match by
/// name, and each value must admit its parameter's kind.
fn bind(stage: &Stage, params: &[Param]) -> Result<Vec<Option<Arg>>, Error> {
    let mut bound: Vec<Option<Arg>> = vec![None; params.len()];
    let mut seen_named = false;
    for (i, arg) in stage.args.iter().enumerate() {
        match &arg.name {
            None => {
                if seen_named {
                    return Err(Error::new(
                        "positional argument after a named argument",
                        arg.span,
                    ));
                }
                if i >= params.len() {
                    let msg = if params.is_empty() {
                        format!("`{}` takes no arguments", stage.name)
                    } else {
                        format!(
                            "`{}` takes at most {} argument{}",
                            stage.name,
                            params.len(),
                            if params.len() == 1 { "" } else { "s" }
                        )
                    };
                    return Err(Error::new(msg, arg.span));
                }
                bound[i] = Some(expect_kind(stage, arg, params[i].name, params[i].kind)?);
            }
            Some((name, name_span)) => {
                seen_named = true;
                let Some(j) = params.iter().position(|p| p.name == name.as_str()) else {
                    let expected: Vec<String> =
                        params.iter().map(|p| format!("`{}`", p.name)).collect();
                    let msg = if params.is_empty() {
                        format!("`{}` takes no arguments", stage.name)
                    } else {
                        format!(
                            "unknown argument `{name}` to `{}` (expected {})",
                            stage.name,
                            expected.join(", ")
                        )
                    };
                    return Err(Error::new(msg, *name_span));
                };
                if bound[j].is_some() {
                    return Err(Error::new(
                        format!("duplicate argument `{name}`"),
                        *name_span,
                    ));
                }
                bound[j] = Some(expect_kind(stage, arg, params[j].name, params[j].kind)?);
            }
        }
    }
    for (p, b) in params.iter().zip(&bound) {
        if p.required && b.is_none() {
            return Err(Error::new(
                format!("`{}` is missing its `{}` argument", stage.name, p.name),
                stage.span,
            ));
        }
    }
    Ok(bound)
}

fn num(a: &Option<Arg>) -> (f64, Span) {
    match &a.as_ref().expect("required").value {
        Expr::Num(n, s) => (*n, *s),
        _ => unreachable!("kind-checked"),
    }
}

fn int(a: &Arg) -> (u64, Span) {
    match &a.value {
        Expr::Num(n, s) => (*n as u64, *s),
        _ => unreachable!("kind-checked"),
    }
}

fn chan(a: &Arg) -> (u64, Span) {
    match &a.value {
        Expr::Chan(k, s) => (*k, *s),
        _ => unreachable!("kind-checked"),
    }
}

fn range(a: &Arg) -> (u64, u64) {
    match &a.value {
        Expr::Range(x, y, _) => (*x, *y),
        _ => unreachable!("kind-checked"),
    }
}

fn positive(stage: &Stage, pname: &str, a: &Option<Arg>, default: u64) -> Result<u64, Error> {
    match a {
        None => Ok(default),
        Some(arg) => {
            let (v, s) = int(arg);
            if v == 0 {
                Err(Error::new(
                    format!("`{}` argument `{pname}` must be at least 1", stage.name),
                    s,
                ))
            } else {
                Ok(v)
            }
        }
    }
}

/// Nearest known stage name within an edit distance of 2, for
/// `did you mean` hints.
fn suggest(name: &str) -> Option<&'static str> {
    STAGE_NAMES
        .iter()
        .map(|s| (*s, levenshtein(name, s)))
        .filter(|(_, d)| *d <= 2)
        .min_by_key(|(_, d)| *d)
        .map(|(s, _)| s)
}

fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<Checked, Error> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn example_pipeline_checks() {
        let c = check_src(
            "load(\"corpus\", 0..60) | detrend | bandpass(0.5, 16) | resample(4) \
             | xcorr(master=ch[0])",
        )
        .unwrap();
        assert_eq!(c.stages.len(), 5);
        assert!(matches!(c.stages[0], CheckedStage::Load(_)));
        assert!(matches!(
            c.stages[3],
            CheckedStage::Kernel(Kernel::Resample { p: 1, q: 4 })
        ));
        assert!(matches!(c.result, Ty::Scores { .. }));
    }

    #[test]
    fn channel_window_pins_the_channel_dim() {
        let c = check_src("load(\"c\", ch=2..6) | detrend").unwrap();
        assert_eq!(
            c.result,
            Ty::Waveforms {
                channels: Dim::Known(4),
                samples: Dim::Unknown
            }
        );
        let e = check_src("load(\"c\", ch=2..6) | xcorr(master=ch[4])").unwrap_err();
        assert_eq!(
            e.message,
            "master channel 4 is out of range: the pipeline carries 4 channels"
        );
    }

    #[test]
    fn unknown_stage_suggests() {
        let e = check_src("load(\"c\") | bandpas(0.5, 16)").unwrap_err();
        assert_eq!(
            e.message,
            "unknown stage `bandpas` (did you mean `bandpass`?)"
        );
        let e = check_src("load(\"c\") | frobnicate").unwrap_err();
        assert_eq!(e.message, "unknown stage `frobnicate`");
    }

    #[test]
    fn load_must_come_first_and_only_first() {
        let e = check_src("detrend | demean").unwrap_err();
        assert_eq!(
            e.message,
            "the pipeline must start with `load(...)`, not `detrend`"
        );
        let e = check_src("load(\"c\") | load(\"d\")").unwrap_err();
        assert_eq!(e.message, "`load` must be the first stage of the pipeline");
    }

    #[test]
    fn terminal_stages_end_the_pipeline() {
        let e = check_src("load(\"c\") | xcorr(master=ch[0]) | detrend").unwrap_err();
        assert_eq!(
            e.message,
            "`detrend` expects waveforms, but the previous stage produced scores[?]"
        );
    }

    #[test]
    fn arity_and_kind_errors() {
        let e = check_src("load(\"c\") | bandpass(0.5)").unwrap_err();
        assert_eq!(e.message, "`bandpass` is missing its `hi` argument");
        let e = check_src("load(\"c\") | detrend(1)").unwrap_err();
        assert_eq!(e.message, "`detrend` takes no arguments");
        let e = check_src("load(\"c\") | bandpass(\"lo\", 16)").unwrap_err();
        assert_eq!(
            e.message,
            "`bandpass` argument `lo` wants a number, got a string"
        );
        let e = check_src("load(\"c\") | bandpass(0.5, 16, order=2.5)").unwrap_err();
        assert_eq!(
            e.message,
            "`bandpass` argument `order` wants a non-negative integer, got `2.5`"
        );
        let e = check_src("load(\"c\") | bandpass(16, 0.5)").unwrap_err();
        assert_eq!(
            e.message,
            "bandpass corners must satisfy 0 < lo < hi (got 16 and 0.5)"
        );
        let e = check_src("load(\"c\") | bandpass(lo=0.5, 16)").unwrap_err();
        assert_eq!(e.message, "positional argument after a named argument");
        let e = check_src("load(\"c\") | xcorr(banana=ch[0])").unwrap_err();
        assert_eq!(
            e.message,
            "unknown argument `banana` to `xcorr` (expected `master`)"
        );
        let e = check_src("load(\"c\") | xcorr").unwrap_err();
        assert_eq!(e.message, "`xcorr` is missing its `master` argument");
    }

    #[test]
    fn resample_forms() {
        let c = check_src("load(\"c\") | resample(3)").unwrap();
        assert!(matches!(
            c.stages[1],
            CheckedStage::Kernel(Kernel::Resample { p: 1, q: 3 })
        ));
        let c = check_src("load(\"c\") | resample(2, 5)").unwrap();
        assert!(matches!(
            c.stages[1],
            CheckedStage::Kernel(Kernel::Resample { p: 2, q: 5 })
        ));
        assert!(check_src("load(\"c\") | resample(0)").is_err());
    }

    #[test]
    fn strategy_values_validated() {
        let c = check_src("load(\"c\", strategy=\"modeled\") | detrend").unwrap();
        let CheckedStage::Load(spec) = &c.stages[0] else {
            panic!()
        };
        assert_eq!(spec.strategy, Strategy::Modeled);
        let e = check_src("load(\"c\", strategy=\"fastest\") | detrend").unwrap_err();
        assert!(e.message.contains("unknown strategy `fastest`"), "{e}");
    }
}
