//! Hand-rolled tokenizer for `dasl` pipelines.
//!
//! The surface syntax is deliberately tiny: identifiers, numbers,
//! strings, and seven pieces of punctuation. `#` starts a comment that
//! runs to end of line; newlines are plain whitespace (pipelines may be
//! wrapped across lines at any point).

use crate::span::{Error, Span};
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A stage or argument name: `[a-zA-Z_][a-zA-Z0-9_]*`.
    Ident(String),
    /// A number literal (integers and decimals, optional leading `-`
    /// handled by the parser).
    Num(f64),
    /// A double-quoted string with `\"`, `\\`, `\n`, `\t` escapes.
    Str(String),
    /// `|`
    Pipe,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `..`
    DotDot,
    /// `-` (unary minus on number literals).
    Minus,
    /// End of input (always the final token).
    Eof,
}

impl Tok {
    /// How the token reads in a diagnostic.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Num(n) => format!("`{n}`"),
            Tok::Str(s) => format!("{s:?}"),
            Tok::Pipe => "`|`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Assign => "`=`".into(),
            Tok::DotDot => "`..`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Eof => "end of program".into(),
        }
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

/// A token plus where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// Source bytes it covers.
    pub span: Span,
}

/// Tokenize `src`. The result always ends with a [`Tok::Eof`] token.
pub fn lex(src: &str) -> Result<Vec<Token>, Error> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'|' => {
                out.push(Token {
                    tok: Tok::Pipe,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b'(' => {
                out.push(Token {
                    tok: Tok::LParen,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b')' => {
                out.push(Token {
                    tok: Tok::RParen,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b'[' => {
                out.push(Token {
                    tok: Tok::LBracket,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b']' => {
                out.push(Token {
                    tok: Tok::RBracket,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b',' => {
                out.push(Token {
                    tok: Tok::Comma,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b'=' => {
                out.push(Token {
                    tok: Tok::Assign,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b'-' => {
                out.push(Token {
                    tok: Tok::Minus,
                    span: Span::new(i, i + 1),
                });
                i += 1;
            }
            b'.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    out.push(Token {
                        tok: Tok::DotDot,
                        span: Span::new(i, i + 2),
                    });
                    i += 2;
                } else {
                    return Err(Error::new(
                        "stray `.` (ranges are written `0..60`)",
                        Span::new(i, i + 1),
                    ));
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None | Some(b'\n') => {
                            return Err(Error::new(
                                "unterminated string literal",
                                Span::new(start, i),
                            ));
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = bytes.get(i + 1);
                            match esc {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                _ => {
                                    return Err(Error::new(
                                        "unknown escape (only \\\" \\\\ \\n \\t are recognized)",
                                        Span::new(i, (i + 2).min(bytes.len())),
                                    ));
                                }
                            }
                            i += 2;
                        }
                        Some(_) => {
                            // Consume one full UTF-8 scalar.
                            let ch = src[i..].chars().next().expect("in bounds");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    span: Span::new(start, i),
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // A `.` continues the number only when it is not the
                // start of a `..` range operator.
                if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1) != Some(&b'.') {
                    i += 1;
                    if i >= bytes.len() || !bytes[i].is_ascii_digit() {
                        return Err(Error::new(
                            "number literal needs digits after the decimal point",
                            Span::new(start, i),
                        ));
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let n: f64 = text
                    .parse()
                    .map_err(|_| Error::new(format!("bad number `{text}`"), Span::new(start, i)))?;
                out.push(Token {
                    tok: Tok::Num(n),
                    span: Span::new(start, i),
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(src[start..i].to_string()),
                    span: Span::new(start, i),
                });
            }
            _ => {
                let ch = src[i..].chars().next().expect("in bounds");
                return Err(Error::new(
                    format!("unexpected character `{ch}`"),
                    Span::new(i, i + ch.len_utf8()),
                ));
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span::new(src.len(), src.len()),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn pipeline_tokens() {
        assert_eq!(
            kinds("load(\"c\", 0..60) | detrend"),
            vec![
                Tok::Ident("load".into()),
                Tok::LParen,
                Tok::Str("c".into()),
                Tok::Comma,
                Tok::Num(0.0),
                Tok::DotDot,
                Tok::Num(60.0),
                Tok::RParen,
                Tok::Pipe,
                Tok::Ident("detrend".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn range_is_not_a_decimal() {
        // `0..60` must lex as Num DotDot Num, never as `0.` `.60`.
        assert_eq!(
            kinds("0..60"),
            vec![Tok::Num(0.0), Tok::DotDot, Tok::Num(60.0), Tok::Eof]
        );
        assert_eq!(kinds("0.5"), vec![Tok::Num(0.5), Tok::Eof]);
    }

    #[test]
    fn comments_and_newlines_are_whitespace() {
        assert_eq!(
            kinds("detrend # trailing\n | demean"),
            vec![
                Tok::Ident("detrend".into()),
                Tok::Pipe,
                Tok::Ident("demean".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        assert_eq!(
            kinds(r#""a\"b\\c\nd""#),
            vec![Tok::Str("a\"b\\c\nd".into()), Tok::Eof]
        );
    }

    #[test]
    fn errors_carry_spans() {
        let e = lex("detrend ; demean").unwrap_err();
        assert_eq!(e.message, "unexpected character `;`");
        assert_eq!(e.span, Span::new(8, 9));
        assert!(lex("\"open").is_err());
        assert!(lex("1.").is_err());
    }
}
