//! Lowering from a typechecked pipeline to bytecode.
//!
//! The interesting part is **fusion**: a run of adjacent element-wise
//! stages (`detrend | bandpass(..) | resample(..)`) compiles into a
//! single `apply` instruction whose kernel list the VM walks per row,
//! so the waveform block is traversed (and materialized) once per fused
//! run instead of once per stage. Each fused run of `k` kernels
//! contributes `k - 1` to [`Program::fused_stages`] — the number of
//! whole-array passes the compiler eliminated.

use crate::bytecode::{op, Const, Program};
use crate::types::{Checked, CheckedStage};

/// Compile a typechecked pipeline to a [`Program`].
pub fn compile(checked: &Checked) -> Program {
    let mut consts = Vec::new();
    let mut code = Vec::new();
    let mut fused_stages = 0u64;
    let mut reg = 0u8; // register holding the current value

    let push_const = |consts: &mut Vec<Const>, c: Const| -> u8 {
        consts.push(c);
        (consts.len() - 1) as u8
    };

    let mut i = 0;
    while i < checked.stages.len() {
        match &checked.stages[i] {
            CheckedStage::Load(spec) => {
                let c = push_const(&mut consts, Const::Load(spec.clone()));
                code.extend_from_slice(&[op::LOAD, 0, c]);
                reg = 0;
                i += 1;
            }
            CheckedStage::Kernel(_) => {
                // Gather the maximal run of adjacent kernels.
                let mut kernel_ids = Vec::new();
                while let Some(CheckedStage::Kernel(k)) = checked.stages.get(i) {
                    kernel_ids.push(push_const(&mut consts, Const::Kernel(k.clone())));
                    i += 1;
                }
                fused_stages += (kernel_ids.len() - 1) as u64;
                let dst = reg + 1;
                code.extend_from_slice(&[op::APPLY, dst, reg, kernel_ids.len() as u8]);
                code.extend_from_slice(&kernel_ids);
                reg = dst;
            }
            CheckedStage::Xcorr { master } => {
                let c = push_const(&mut consts, Const::Chan(*master));
                let dst = reg + 1;
                code.extend_from_slice(&[op::XCORR, dst, reg, c]);
                reg = dst;
                i += 1;
            }
            CheckedStage::LocalSim(spec) => {
                let c = push_const(&mut consts, Const::LocalSim(*spec));
                let dst = reg + 1;
                code.extend_from_slice(&[op::LOCALSIM, dst, reg, c]);
                reg = dst;
                i += 1;
            }
            CheckedStage::Stack(spec) => {
                let c = push_const(&mut consts, Const::Stack(*spec));
                let dst = reg + 1;
                code.extend_from_slice(&[op::STACK, dst, reg, c]);
                reg = dst;
                i += 1;
            }
        }
    }
    code.extend_from_slice(&[op::RET, reg]);

    Program {
        consts,
        code,
        n_regs: reg + 1,
        fused_stages,
        result: checked.result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Instr, Kernel};
    use crate::parser::parse;
    use crate::types::check;

    fn compile_src(src: &str) -> Program {
        compile(&check(&parse(src).unwrap()).unwrap())
    }

    #[test]
    fn example_fuses_three_kernels_into_one_apply() {
        let p = compile_src(
            "load(\"corpus\", 0..60) | detrend | bandpass(0.5, 16) | resample(4) \
             | xcorr(master=ch[0])",
        );
        let instrs: Vec<Instr> = p.decode().into_iter().map(|(_, i)| i).collect();
        assert_eq!(instrs.len(), 4, "{instrs:?}");
        assert!(matches!(instrs[0], Instr::Load { dst: 0, .. }));
        let Instr::Apply {
            dst,
            src,
            ref kernels,
        } = instrs[1]
        else {
            panic!("expected apply, got {:?}", instrs[1]);
        };
        assert_eq!((dst, src), (1, 0));
        assert_eq!(kernels.len(), 3);
        assert!(matches!(instrs[2], Instr::Xcorr { dst: 2, src: 1, .. }));
        assert!(matches!(instrs[3], Instr::Ret { src: 2 }));
        // Three fused element-wise stages eliminate two passes.
        assert_eq!(p.fused_stages, 2);
        assert_eq!(p.n_regs, 3);
    }

    #[test]
    fn lone_kernel_fuses_nothing() {
        let p = compile_src("load(\"c\") | detrend");
        assert_eq!(p.fused_stages, 0);
        let instrs: Vec<Instr> = p.decode().into_iter().map(|(_, i)| i).collect();
        assert!(
            matches!(instrs[1], Instr::Apply { ref kernels, .. } if kernels.len() == 1),
            "{instrs:?}"
        );
    }

    #[test]
    fn kernel_order_is_preserved_in_the_const_pool() {
        let p = compile_src("load(\"c\") | onebit | bandpass(1, 8) | demean | stack(window=64)");
        let Instr::Apply { ref kernels, .. } = p.decode()[1].1 else {
            panic!()
        };
        let ks: Vec<&Kernel> = kernels
            .iter()
            .map(|&k| match &p.consts[k as usize] {
                Const::Kernel(k) => k,
                other => panic!("expected kernel, got {other:?}"),
            })
            .collect();
        assert!(matches!(ks[0], Kernel::OneBit));
        assert!(matches!(ks[1], Kernel::Bandpass { .. }));
        assert!(matches!(ks[2], Kernel::Demean));
    }

    #[test]
    fn disassembly_mentions_fusion() {
        let p = compile_src("load(\"c\") | detrend | demean | xcorr(master=ch[0])");
        let dis = p.disassemble();
        assert!(dis.contains("2 kernels, one pass"), "{dis}");
        assert!(dis.contains("1 stages fused"), "{dis}");
        assert!(dis.contains("load \"c\""), "{dis}");
    }
}
