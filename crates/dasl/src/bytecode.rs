//! Compact bytecode for compiled `dasl` programs.
//!
//! A [`Program`] is a flat byte stream of register-style instructions
//! plus a constant pool holding the structured operands (load clauses,
//! prepared kernels, stage parameter blocks). The encoding is one
//! opcode byte followed by one-byte operands — registers and constant
//! indices — except `apply`, whose kernel list is length-prefixed:
//!
//! | opcode | encoding                        | meaning                            |
//! |--------|---------------------------------|------------------------------------|
//! | `01`   | `load dst, c`                   | bind the lowered I/O plan's array  |
//! | `02`   | `apply dst, src, n, k₀…kₙ₋₁`    | one fused pass of `n` kernels      |
//! | `03`   | `xcorr dst, src, c`             | correlate rows vs master `ch[k]`   |
//! | `04`   | `localsim dst, src, c`          | local-similarity event map         |
//! | `05`   | `stack dst, src, c`             | window-stacked cross-correlation   |
//! | `06`   | `ret src`                       | program result                     |
//!
//! The interpreter lives in the engine crate (`dassa::dasa::vm`); this
//! module owns the format, the [`decode`](Program::decode) helper both
//! the VM and the disassembler share, and the [`Program::disassemble`]
//! listing `das_pipeline` logs before running a program.

use crate::types::Ty;
use std::fmt;

/// Opcode bytes.
pub mod op {
    /// `load dst, c` — bind the array produced by lowering the load
    /// clause at const `c` into an `IoPlan`.
    pub const LOAD: u8 = 0x01;
    /// `apply dst, src, n, k…` — run `n` fused kernels in one pass.
    pub const APPLY: u8 = 0x02;
    /// `xcorr dst, src, c` — per-channel spectral correlation vs the
    /// master channel at const `c`.
    pub const XCORR: u8 = 0x03;
    /// `localsim dst, src, c` — local-similarity map with the params at
    /// const `c`.
    pub const LOCALSIM: u8 = 0x04;
    /// `stack dst, src, c` — stacked cross-correlation with the params
    /// at const `c`.
    pub const STACK: u8 = 0x05;
    /// `ret src` — the program's result register.
    pub const RET: u8 = 0x06;
}

/// How the lowered `IoPlan` should pick its §IV-B read strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Heuristic resolution (`ReadStrategy::Auto`).
    #[default]
    Auto,
    /// Force collective-per-file (Figure 5a).
    Collective,
    /// Force communication-avoiding (Figure 5b).
    CommAvoiding,
    /// Price both strategies on the performance model and take the
    /// cheaper (`choose_strategy_modeled`).
    Modeled,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Auto => write!(f, "auto"),
            Strategy::Collective => write!(f, "collective"),
            Strategy::CommAvoiding => write!(f, "comm_avoiding"),
            Strategy::Modeled => write!(f, "modeled"),
        }
    }
}

/// The compiled form of a `load(...)` clause: everything the engine
/// needs to lower it into a chunk-granular `IoPlan`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSpec {
    /// Corpus directory (the CLI's `-d` overrides it).
    pub corpus: String,
    /// Global time-sample window `[t0, t1)`, or the full extent.
    pub time: Option<(u64, u64)>,
    /// Channel window `[c0, c1)`, or all channels.
    pub channels: Option<(u64, u64)>,
    /// Read-strategy choice for distributed execution.
    pub strategy: Strategy,
}

impl fmt::Display for LoadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "load \"{}\"", self.corpus)?;
        match self.time {
            Some((a, b)) => write!(f, " t={a}..{b}")?,
            None => write!(f, " t=*")?,
        }
        match self.channels {
            Some((a, b)) => write!(f, " ch={a}..{b}")?,
            None => write!(f, " ch=*")?,
        }
        write!(f, " strategy={}", self.strategy)
    }
}

/// One element-wise (per-channel row) kernel. Adjacent kernels are
/// fused by the compiler into a single `apply` instruction, so the VM
/// traverses each tile once however long the chain is.
#[derive(Debug, Clone, PartialEq)]
pub enum Kernel {
    /// Remove the per-row linear trend (`Das_detrend`).
    Detrend,
    /// Remove the per-row mean.
    Demean,
    /// Sign-only (one-bit) amplitude normalization.
    OneBit,
    /// Zero-phase Butterworth bandpass; corners in Hz, normalized by
    /// the corpus Nyquist at execution time.
    Bandpass {
        /// Low corner in Hz.
        lo_hz: f64,
        /// High corner in Hz.
        hi_hz: f64,
        /// Filter order.
        order: usize,
    },
    /// Rational-rate resampling by `p/q` (`Das_resample`).
    Resample {
        /// Upsampling factor.
        p: usize,
        /// Downsampling factor.
        q: usize,
    },
}

impl Kernel {
    /// Output row length for an input row of `n` samples. Mirrors the
    /// kernels' own length rules (`dsp::resample` yields
    /// `ceil(n·p/q)` after reducing `p/q`).
    pub fn out_len(&self, n: usize) -> usize {
        match self {
            Kernel::Detrend | Kernel::Demean | Kernel::OneBit | Kernel::Bandpass { .. } => n,
            Kernel::Resample { p, q } => {
                let g = gcd(*p, *q);
                let (p, q) = (p / g, q / g);
                if p == 1 && q == 1 {
                    n
                } else {
                    (n * p).div_ceil(q)
                }
            }
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kernel::Detrend => write!(f, "kernel detrend"),
            Kernel::Demean => write!(f, "kernel demean"),
            Kernel::OneBit => write!(f, "kernel onebit"),
            Kernel::Bandpass {
                lo_hz,
                hi_hz,
                order,
            } => {
                write!(f, "kernel bandpass({lo_hz}..{hi_hz} Hz, order {order})")
            }
            Kernel::Resample { p, q } => write!(f, "kernel resample({p}:{q})"),
        }
    }
}

/// Parameters of a `localsim` terminal stage (mirrors the engine's
/// `LocalSimiParams`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSimSpec {
    /// `M`: half the comparison window, in samples.
    pub half_window: u64,
    /// `K`: channel offset of the two neighbours.
    pub channel_offset: u64,
    /// `L`: half the lag-search range, in samples.
    pub search_half: u64,
    /// Output decimation along time.
    pub time_stride: u64,
}

impl Default for LocalSimSpec {
    fn default() -> Self {
        LocalSimSpec {
            half_window: 25,
            channel_offset: 1,
            search_half: 10,
            time_stride: 25,
        }
    }
}

impl fmt::Display for LocalSimSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "localsim half_window={} channel_offset={} search_half={} time_stride={}",
            self.half_window, self.channel_offset, self.search_half, self.time_stride
        )
    }
}

/// Parameters of a `stack` terminal stage (mirrors the engine's
/// `StackingParams`; normalization options keep their defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackSpec {
    /// Window length in samples.
    pub window: u64,
    /// Hop between successive windows.
    pub hop: u64,
    /// Master channel index.
    pub master: u64,
}

impl fmt::Display for StackSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stack window={} hop={} master=ch[{}]",
            self.window, self.hop, self.master
        )
    }
}

/// One constant-pool entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// A compiled load clause.
    Load(LoadSpec),
    /// A fused-pass kernel.
    Kernel(Kernel),
    /// A channel reference `ch[k]`.
    Chan(u64),
    /// `localsim` parameters.
    LocalSim(LocalSimSpec),
    /// `stack` parameters.
    Stack(StackSpec),
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Load(l) => write!(f, "{l}"),
            Const::Kernel(k) => write!(f, "{k}"),
            Const::Chan(k) => write!(f, "ch[{k}]"),
            Const::LocalSim(p) => write!(f, "{p}"),
            Const::Stack(p) => write!(f, "{p}"),
        }
    }
}

/// A decoded instruction — what the VM's dispatch loop and the
/// disassembler both iterate over. Fields named `dst`/`src` are
/// register indices; the rest are constant-pool indices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Instr {
    /// `load dst, c`.
    Load { dst: u8, spec: u8 },
    /// `apply dst, src, [kernels…]`.
    Apply { dst: u8, src: u8, kernels: Vec<u8> },
    /// `xcorr dst, src, master`.
    Xcorr { dst: u8, src: u8, master: u8 },
    /// `localsim dst, src, params`.
    LocalSim { dst: u8, src: u8, params: u8 },
    /// `stack dst, src, params`.
    Stack { dst: u8, src: u8, params: u8 },
    /// `ret src`.
    Ret { src: u8 },
}

/// A compiled `dasl` program: constant pool + bytecode + register
/// budget, plus the compile-time facts the engine reports
/// (`fused_stages`, the result type).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The constant pool.
    pub consts: Vec<Const>,
    /// The instruction stream (see the module table for the encoding).
    pub code: Vec<u8>,
    /// Registers the VM must allocate.
    pub n_regs: u8,
    /// Element-wise passes eliminated by fusion: a chain of `k` adjacent
    /// element-wise stages compiles to one `apply`, contributing `k-1`.
    pub fused_stages: u64,
    /// The typechecked result type.
    pub result: Ty,
}

impl Program {
    /// The program's load clause (every well-typed program starts with
    /// exactly one).
    pub fn load_spec(&self) -> &LoadSpec {
        self.consts
            .iter()
            .find_map(|c| match c {
                Const::Load(l) => Some(l),
                _ => None,
            })
            .expect("a well-typed program has a load clause")
    }

    /// Decode the byte stream into structured instructions, with the
    /// byte offset of each.
    ///
    /// # Panics
    /// Panics on a malformed stream — programs only come from
    /// [`crate::compile`], so a truncated stream is a compiler bug.
    pub fn decode(&self) -> Vec<(usize, Instr)> {
        let mut out = Vec::new();
        let c = &self.code;
        let mut pc = 0;
        while pc < c.len() {
            let at = pc;
            let instr = match c[pc] {
                op::LOAD => {
                    pc += 3;
                    Instr::Load {
                        dst: c[at + 1],
                        spec: c[at + 2],
                    }
                }
                op::APPLY => {
                    let n = c[at + 3] as usize;
                    pc += 4 + n;
                    Instr::Apply {
                        dst: c[at + 1],
                        src: c[at + 2],
                        kernels: c[at + 4..at + 4 + n].to_vec(),
                    }
                }
                op::XCORR => {
                    pc += 4;
                    Instr::Xcorr {
                        dst: c[at + 1],
                        src: c[at + 2],
                        master: c[at + 3],
                    }
                }
                op::LOCALSIM => {
                    pc += 4;
                    Instr::LocalSim {
                        dst: c[at + 1],
                        src: c[at + 2],
                        params: c[at + 3],
                    }
                }
                op::STACK => {
                    pc += 4;
                    Instr::Stack {
                        dst: c[at + 1],
                        src: c[at + 2],
                        params: c[at + 3],
                    }
                }
                op::RET => {
                    pc += 2;
                    Instr::Ret { src: c[at + 1] }
                }
                other => panic!("bad opcode {other:#04x} at {at}"),
            };
            out.push((at, instr));
        }
        out
    }

    /// A human-readable listing of the constant pool and instruction
    /// stream — what `das_pipeline` logs before executing a program.
    pub fn disassemble(&self) -> String {
        let mut out = format!(
            "; dasl program: {} bytes, {} consts, {} regs, {} stages fused, result {}\n",
            self.code.len(),
            self.consts.len(),
            self.n_regs,
            self.fused_stages,
            self.result
        );
        out.push_str("consts:\n");
        for (i, c) in self.consts.iter().enumerate() {
            out.push_str(&format!("  c{i} = {c}\n"));
        }
        out.push_str("code:\n");
        for (at, instr) in self.decode() {
            let line = match instr {
                Instr::Load { dst, spec } => format!("load     r{dst}, c{spec}"),
                Instr::Apply { dst, src, kernels } => {
                    let ks: Vec<String> = kernels.iter().map(|k| format!("c{k}")).collect();
                    let fused = if kernels.len() > 1 {
                        format!("   ; {} kernels, one pass", kernels.len())
                    } else {
                        String::new()
                    };
                    format!("apply    r{dst}, r{src}, [{}]{fused}", ks.join(", "))
                }
                Instr::Xcorr { dst, src, master } => {
                    format!("xcorr    r{dst}, r{src}, c{master}")
                }
                Instr::LocalSim { dst, src, params } => {
                    format!("localsim r{dst}, r{src}, c{params}")
                }
                Instr::Stack { dst, src, params } => {
                    format!("stack    r{dst}, r{src}, c{params}")
                }
                Instr::Ret { src } => format!("ret      r{src}"),
            };
            out.push_str(&format!("  {at:04x}  {line}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resample_out_len_matches_ceil_rule() {
        let k = Kernel::Resample { p: 1, q: 4 };
        assert_eq!(k.out_len(2400), 600);
        assert_eq!(k.out_len(2401), 601);
        assert_eq!(k.out_len(0), 0);
        // Reduction: 2/4 == 1/2.
        let k = Kernel::Resample { p: 2, q: 4 };
        assert_eq!(k.out_len(5), 3);
        // Identity after reduction.
        let k = Kernel::Resample { p: 3, q: 3 };
        assert_eq!(k.out_len(7), 7);
    }

    #[test]
    fn filters_preserve_length() {
        for k in [Kernel::Detrend, Kernel::Demean, Kernel::OneBit] {
            assert_eq!(k.out_len(123), 123);
        }
        let k = Kernel::Bandpass {
            lo_hz: 0.5,
            hi_hz: 16.0,
            order: 4,
        };
        assert_eq!(k.out_len(123), 123);
    }
}
