//! Recursive-descent parser for `dasl` pipelines.
//!
//! Grammar (whitespace and `#` comments between any tokens):
//!
//! ```text
//! pipeline := stage ( '|' stage )*
//! stage    := IDENT [ '(' [ arg ( ',' arg )* ] ')' ]
//! arg      := [ IDENT '=' ] expr
//! expr     := [-] NUMBER | STRING | INT '..' INT | 'ch' '[' INT ']'
//! ```
//!
//! Every error points at a span; see [`crate::span::Error::render`].

use crate::ast::{Arg, Expr, Pipeline, Stage};
use crate::lexer::{lex, Tok, Token};
use crate::span::{Error, Span};

/// Parse a full program (one pipeline, then end of input).
pub fn parse(src: &str) -> Result<Pipeline, Error> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let pipeline = p.pipeline()?;
    match &p.peek().tok {
        Tok::Eof => Ok(pipeline),
        t => Err(Error::new(
            format!("expected `|` or end of program, found {}", t.describe()),
            p.peek().span,
        )),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<Token, Error> {
        if self.peek().tok == want {
            Ok(self.bump())
        } else {
            Err(Error::new(
                format!("expected {what}, found {}", self.peek().tok.describe()),
                self.peek().span,
            ))
        }
    }

    fn pipeline(&mut self) -> Result<Pipeline, Error> {
        let first = self.stage()?;
        let start = first.span;
        let mut stages = vec![first];
        while self.peek().tok == Tok::Pipe {
            self.bump();
            stages.push(self.stage()?);
        }
        let span = start.to(stages.last().expect("non-empty").span);
        Ok(Pipeline { stages, span })
    }

    fn stage(&mut self) -> Result<Stage, Error> {
        let name_tok = self.peek().clone();
        let Tok::Ident(name) = name_tok.tok else {
            return Err(Error::new(
                format!("expected a stage name, found {}", name_tok.tok.describe()),
                name_tok.span,
            ));
        };
        self.bump();
        let name_span = name_tok.span;
        let mut span = name_span;
        let mut args = Vec::new();
        if self.peek().tok == Tok::LParen {
            self.bump();
            if self.peek().tok != Tok::RParen {
                loop {
                    args.push(self.arg()?);
                    if self.peek().tok == Tok::Comma {
                        self.bump();
                        continue;
                    }
                    break;
                }
            }
            let close = self.expect(
                Tok::RParen,
                &format!("`)` to close the argument list of `{name}`"),
            )?;
            span = span.to(close.span);
        }
        Ok(Stage {
            name,
            name_span,
            args,
            span,
        })
    }

    fn arg(&mut self) -> Result<Arg, Error> {
        // `IDENT =` starts a named argument — except `ch[…]`, which is a
        // value. One token of lookahead settles it.
        if let Tok::Ident(name) = &self.peek().tok {
            let is_named = self.tokens[self.pos + 1].tok == Tok::Assign;
            if is_named {
                let name = name.clone();
                let name_span = self.bump().span;
                self.bump(); // `=`
                let value = self.expr()?;
                let span = name_span.to(value.span());
                return Ok(Arg {
                    name: Some((name, name_span)),
                    value,
                    span,
                });
            }
        }
        let value = self.expr()?;
        let span = value.span();
        Ok(Arg {
            name: None,
            value,
            span,
        })
    }

    fn integer(&mut self, what: &str) -> Result<(u64, Span), Error> {
        let t = self.peek().clone();
        match t.tok {
            Tok::Num(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                self.bump();
                Ok((n as u64, t.span))
            }
            Tok::Num(_) => Err(Error::new(
                format!("{what} must be a non-negative integer"),
                t.span,
            )),
            tok => Err(Error::new(
                format!("expected {what}, found {}", tok.describe()),
                t.span,
            )),
        }
    }

    fn expr(&mut self) -> Result<Expr, Error> {
        let t = self.peek().clone();
        match t.tok {
            Tok::Minus => {
                self.bump();
                let n = self.peek().clone();
                match n.tok {
                    Tok::Num(v) => {
                        self.bump();
                        Ok(Expr::Num(-v, t.span.to(n.span)))
                    }
                    tok => Err(Error::new(
                        format!("expected a number after `-`, found {}", tok.describe()),
                        n.span,
                    )),
                }
            }
            Tok::Num(n) => {
                self.bump();
                if self.peek().tok == Tok::DotDot {
                    if n < 0.0 || n.fract() != 0.0 {
                        return Err(Error::new(
                            "range start must be a non-negative integer",
                            t.span,
                        ));
                    }
                    self.bump();
                    let (end, end_span) = self.integer("the range end")?;
                    let span = t.span.to(end_span);
                    if end <= n as u64 {
                        return Err(Error::new(format!("empty range {}..{end}", n as u64), span));
                    }
                    Ok(Expr::Range(n as u64, end, span))
                } else {
                    Ok(Expr::Num(n, t.span))
                }
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, t.span))
            }
            Tok::Ident(ref name) if name == "ch" => {
                self.bump();
                self.expect(Tok::LBracket, "`[` after `ch`")?;
                let (k, _) = self.integer("a channel index")?;
                let close = self.expect(Tok::RBracket, "`]` to close the channel reference")?;
                Ok(Expr::Chan(k, t.span.to(close.span)))
            }
            tok => Err(Error::new(
                format!("expected an argument value, found {}", tok.describe()),
                t.span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_parses() {
        let p = parse(
            "load(\"corpus\", 0..60) | detrend | bandpass(0.5, 16) | resample(4) \
             | xcorr(master=ch[0])",
        )
        .unwrap();
        assert_eq!(p.stages.len(), 5);
        assert_eq!(p.stages[0].name, "load");
        assert_eq!(p.stages[0].args.len(), 2);
        assert!(matches!(p.stages[0].args[1].value, Expr::Range(0, 60, _)));
        let xcorr = &p.stages[4];
        assert_eq!(xcorr.args[0].name.as_ref().unwrap().0, "master");
        assert!(matches!(xcorr.args[0].value, Expr::Chan(0, _)));
    }

    #[test]
    fn pretty_print_round_trips() {
        let src = "load(\"c\", 0..60, strategy=\"auto\") | bandpass(0.5, 16, order=6) \
                   | xcorr(master=ch[3])";
        let p1 = parse(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse(&printed).unwrap();
        assert_eq!(p1, p2, "printed form: {printed}");
    }

    #[test]
    fn trailing_pipe_is_an_error() {
        let e = parse("load(\"c\") | detrend | ").unwrap_err();
        assert_eq!(e.message, "expected a stage name, found end of program");
    }

    #[test]
    fn unclosed_args_point_at_the_gap() {
        let e = parse("bandpass(0.5, 16").unwrap_err();
        assert_eq!(
            e.message,
            "expected `)` to close the argument list of `bandpass`, found end of program"
        );
    }

    #[test]
    fn negative_numbers_parse() {
        let p = parse("shift(-1.5)").unwrap();
        assert!(matches!(p.stages[0].args[0].value, Expr::Num(v, _) if v == -1.5));
    }

    #[test]
    fn empty_and_backwards_ranges_rejected() {
        assert!(parse("load(\"c\", 5..5)")
            .unwrap_err()
            .message
            .contains("empty range"));
        assert!(parse("load(\"c\", 9..5)")
            .unwrap_err()
            .message
            .contains("empty range"));
        assert!(parse("load(\"c\", 0.5..5)").is_err());
    }
}
