//! Byte spans and rendered diagnostics.
//!
//! Every token, AST node, and error carries a [`Span`] into the source
//! text, so a failed parse or typecheck can point at the exact tokens
//! that caused it. [`Error::render`] turns that into the caret-style
//! report `das_pipeline` prints for a bad `--program`.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A compile-time error (lex, parse, or type) anchored to a [`Span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// What went wrong, in one sentence.
    pub message: String,
    /// Where in the source it went wrong.
    pub span: Span,
}

impl Error {
    /// An error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Error {
        Error {
            message: message.into(),
            span,
        }
    }

    /// Render the error against its source as a caret diagnostic:
    ///
    /// ```text
    /// error: unknown stage `bandpas` (did you mean `bandpass`?)
    ///   --> line 1, column 26
    ///    |
    ///  1 | load("corpus") | detrend | bandpas(0.5, 16)
    ///    |                            ^^^^^^^
    /// ```
    pub fn render(&self, src: &str) -> String {
        let start = self.span.start.min(src.len());
        let line_no = src[..start].matches('\n').count() + 1;
        let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = src[start..].find('\n').map_or(src.len(), |i| start + i);
        let line = &src[line_start..line_end];
        let col = src[line_start..start].chars().count() + 1;
        let width = self
            .span
            .end
            .min(line_end)
            .saturating_sub(start)
            .max(1)
            .min(line.len() + 1 - (col - 1).min(line.len()));
        let gutter = format!("{line_no}").len().max(2);
        let mut out = format!(
            "error: {}\n{:>gutter$}--> line {line_no}, column {col}\n",
            self.message, ""
        );
        out.push_str(&format!("{:>gutter$} |\n", ""));
        out.push_str(&format!("{line_no:>gutter$} | {line}\n"));
        out.push_str(&format!(
            "{:>gutter$} | {:pad$}{}\n",
            "",
            "",
            "^".repeat(width.max(1)),
            pad = col - 1
        ));
        out
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_span() {
        let src = "load(\"x\") | nope";
        let err = Error::new("unknown stage `nope`", Span::new(12, 16));
        let r = err.render(src);
        assert!(r.contains("error: unknown stage `nope`"), "{r}");
        assert!(r.contains("line 1, column 13"), "{r}");
        assert!(r.contains("^^^^"), "{r}");
    }

    #[test]
    fn render_survives_eof_spans() {
        let src = "load";
        let err = Error::new("unexpected end of program", Span::new(4, 4));
        let r = err.render(src);
        assert!(r.contains("column 5"), "{r}");
    }

    #[test]
    fn render_finds_later_lines() {
        let src = "load(\"x\")\n  | what";
        let err = Error::new("unknown stage `what`", Span::new(14, 18));
        let r = err.render(src);
        assert!(r.contains("line 2, column 5"), "{r}");
    }
}
