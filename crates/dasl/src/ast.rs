//! The `dasl` abstract syntax tree.
//!
//! A program is a single pipeline: stages joined by `|`, each stage a
//! name with an optional argument list of positional and `name=value`
//! arguments. Every node carries a [`Span`]; equality (`PartialEq`)
//! deliberately **ignores spans**, so a parse → pretty-print → parse
//! round trip compares equal even though the re-parsed spans differ.
//! Number literals compare by bit pattern, making the round-trip exact
//! (Rust's `{}` float formatting is shortest-round-trip).

use crate::span::Span;
use std::fmt;

/// A whole program: `stage | stage | …`.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// The stages, in pipe order. Never empty after a successful parse.
    pub stages: Vec<Stage>,
    /// Span of the whole pipeline.
    pub span: Span,
}

/// One pipeline stage: `name` or `name(arg, …)`.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage name as written.
    pub name: String,
    /// Span of the name alone (diagnostics point here for unknown
    /// stages).
    pub name_span: Span,
    /// Arguments, positional first by convention (the parser allows any
    /// order; the typechecker enforces positional-before-named).
    pub args: Vec<Arg>,
    /// Span of the whole stage including its argument list.
    pub span: Span,
}

/// One argument: `expr` or `name=expr`.
#[derive(Debug, Clone)]
pub struct Arg {
    /// Keyword, for `name=value` arguments.
    pub name: Option<(String, Span)>,
    /// The value.
    pub value: Expr,
    /// Span of the whole argument.
    pub span: Span,
}

/// An argument value.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A number literal (possibly negative).
    Num(f64, Span),
    /// A string literal.
    Str(String, Span),
    /// An integer range `a..b`.
    Range(u64, u64, Span),
    /// A channel reference `ch[k]`.
    Chan(u64, Span),
}

impl Expr {
    /// The expression's source span.
    pub fn span(&self) -> Span {
        match self {
            Expr::Num(_, s) | Expr::Str(_, s) | Expr::Range(_, _, s) | Expr::Chan(_, s) => *s,
        }
    }

    /// How the expression's *kind* reads in a type-error message.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Expr::Num(..) => "a number",
            Expr::Str(..) => "a string",
            Expr::Range(..) => "a range",
            Expr::Chan(..) => "a channel reference",
        }
    }
}

impl PartialEq for Pipeline {
    fn eq(&self, other: &Self) -> bool {
        self.stages == other.stages
    }
}

impl PartialEq for Stage {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.args == other.args
    }
}

impl PartialEq for Arg {
    fn eq(&self, other: &Self) -> bool {
        self.name.as_ref().map(|(n, _)| n) == other.name.as_ref().map(|(n, _)| n)
            && self.value == other.value
    }
}

impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Expr::Num(a, _), Expr::Num(b, _)) => a.to_bits() == b.to_bits(),
            (Expr::Str(a, _), Expr::Str(b, _)) => a == b,
            (Expr::Range(a0, a1, _), Expr::Range(b0, b1, _)) => a0 == b0 && a1 == b1,
            (Expr::Chan(a, _), Expr::Chan(b, _)) => a == b,
            _ => false,
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(ch),
        }
    }
    out
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n, _) => write!(f, "{n}"),
            Expr::Str(s, _) => write!(f, "\"{}\"", escape(s)),
            Expr::Range(a, b, _) => write!(f, "{a}..{b}"),
            Expr::Chan(k, _) => write!(f, "ch[{k}]"),
        }
    }
}

impl fmt::Display for Arg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some((n, _)) => write!(f, "{n}={}", self.value),
            None => write!(f, "{}", self.value),
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}
