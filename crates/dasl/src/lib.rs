//! `dasl` — a small typed pipeline language for DAS analysis.
//!
//! A program is a single pipeline of stages joined by `|`:
//!
//! ```text
//! load("corpus", 0..60) | detrend | bandpass(0.5, 16) | resample(4)
//!     | xcorr(master=ch[0])
//! ```
//!
//! The crate is a pure front end with no I/O and no dependencies: it
//! lexes ([`lexer`]), parses into a spanned AST ([`parser`], [`ast`]),
//! typechecks array shapes and element kinds ([`types`]), and compiles
//! to a compact register-style bytecode ([`bytecode`], [`compile`])
//! that the `dassa` engine's VM executes. Two properties the compiler
//! guarantees:
//!
//! * the leading `load(...)` clause survives as a structured
//!   [`LoadSpec`] the engine lowers into a chunk-granular `IoPlan`
//!   (the same planner the hand-wired pipelines use), and
//! * adjacent element-wise stages fuse into a single `apply`
//!   instruction, so however long the preprocessing chain is, the
//!   waveform block is traversed once ([`Program::fused_stages`] counts
//!   the passes eliminated).
//!
//! Every compile-time failure is a [`span::Error`] that renders as a
//! caret diagnostic pointing into the source:
//!
//! ```text
//! error: unknown stage `bandpas` (did you mean `bandpass`?)
//!   --> line 1, column 26
//!    |
//!  1 | load("corpus") | detrend | bandpas(0.5, 16)
//!    |                            ^^^^^^^
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod bytecode;
pub mod compile;
pub mod lexer;
pub mod parser;
pub mod span;
pub mod types;

pub use bytecode::{Const, Instr, Kernel, LoadSpec, LocalSimSpec, Program, StackSpec, Strategy};
pub use span::{Error, Span};
pub use types::{Checked, CheckedStage, Dim, Ty};

/// Front-to-back convenience: lex, parse, typecheck, and compile `src`.
///
/// On failure the [`Error`] carries a span; render it against `src`
/// with [`Error::render`] for a caret diagnostic.
pub fn compile(src: &str) -> Result<Program, Error> {
    let pipeline = parser::parse(src)?;
    let checked = types::check(&pipeline)?;
    Ok(compile::compile(&checked))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile() {
        let p = compile(
            "load(\"corpus\", 0..60) | detrend | bandpass(0.5, 16) | resample(4) \
             | xcorr(master=ch[0])",
        )
        .unwrap();
        assert_eq!(p.fused_stages, 2);
        assert_eq!(p.load_spec().corpus, "corpus");
        assert_eq!(p.load_spec().time, Some((0, 60)));
    }

    #[test]
    fn errors_render_against_source() {
        let src = "load(\"corpus\") | detrend | bandpas(0.5, 16)";
        let err = compile(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.contains("did you mean `bandpass`?"), "{rendered}");
        assert!(rendered.contains("^^^^^^^"), "{rendered}");
    }
}
