//! Round-trip properties for the `dasl` front end.
//!
//! * Any AST the grammar can express survives pretty-print → parse
//!   unchanged (spans aside — `PartialEq` ignores them, and numbers
//!   compare by bit pattern, so the trip is exact).
//! * Pretty-printing is a fixed point: printing the re-parsed tree
//!   reproduces the same text.
//! * Randomly assembled *well-typed* programs compile, and the fusion
//!   counter equals the one-pass saving the kernel chain promises.

use dasl::ast::{Arg, Expr, Pipeline, Stage};
use dasl::parser::parse;
use dasl::span::Span;
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::sample::select;
use proptest::strategy::Union;

fn sp() -> Span {
    Span::new(0, 0)
}

/// A lexer-valid identifier (also used for stage and argument names).
fn ident() -> BoxedStrategy<String> {
    "[a-z_][a-z0-9_]{0,7}".boxed()
}

/// Finite `f64`s, mixing everyday magnitudes with raw bit patterns.
/// Rust's `{}` float formatting never uses exponent notation, so every
/// finite value lexes back, and shortest-round-trip printing guarantees
/// the re-parse is bit-exact.
fn num() -> BoxedStrategy<f64> {
    prop_oneof![
        -1_000_000.0..1_000_000.0f64,
        any::<u64>().prop_map(|bits| {
            let v = f64::from_bits(bits);
            if v.is_finite() {
                v
            } else {
                0.0
            }
        }),
        Just(0.0),
        Just(-0.0),
        Just(0.5),
    ]
    .boxed()
}

/// String literal contents, including every escape the lexer knows.
fn string() -> BoxedStrategy<String> {
    prop_oneof![
        "[a-zA-Z0-9_ ./-]{0,12}".boxed(),
        select(vec![
            String::new(),
            "quo\"te".to_string(),
            "back\\slash".to_string(),
            "new\nline".to_string(),
            "tab\tstop".to_string(),
            "mixed \"\\\n\t all".to_string(),
        ])
        .boxed(),
    ]
    .boxed()
}

fn expr() -> BoxedStrategy<Expr> {
    prop_oneof![
        num().prop_map(|n| Expr::Num(n, sp())),
        string().prop_map(|s| Expr::Str(s, sp())),
        (0u64..1_000_000, 1u64..1_000_000).prop_map(|(a, d)| Expr::Range(a, a + d, sp())),
        (0u64..100_000).prop_map(|k| Expr::Chan(k, sp())),
    ]
    .boxed()
}

fn arg() -> BoxedStrategy<Arg> {
    let name = Union::new(vec![Just(None).boxed(), ident().prop_map(Some).boxed()]);
    (name, expr())
        .prop_map(|(name, value)| Arg {
            name: name.map(|n| (n, sp())),
            value,
            span: sp(),
        })
        .boxed()
}

fn stage() -> BoxedStrategy<Stage> {
    (ident(), vec(arg(), 0..5))
        .prop_map(|(name, args)| Stage {
            name,
            name_span: sp(),
            args,
            span: sp(),
        })
        .boxed()
}

fn pipeline() -> BoxedStrategy<Pipeline> {
    vec(stage(), 1..8)
        .prop_map(|stages| Pipeline { stages, span: sp() })
        .boxed()
}

/// One source-level element-wise stage, for the well-typed generator.
fn kernel_stage() -> BoxedStrategy<String> {
    prop_oneof![
        Just("detrend".to_string()),
        Just("demean".to_string()),
        Just("onebit".to_string()),
        (1u32..100, 1u32..100).prop_map(|(lo, hi)| {
            // 0 < lo < hi, both with one decimal place.
            let (lo, hi) = (f64::from(lo) / 10.0, f64::from(lo + hi) / 10.0);
            format!("bandpass({lo}, {hi})")
        }),
        (1u64..8).prop_map(|q| format!("resample({q})")),
        (1u64..8, 1u64..8).prop_map(|(p, q)| format!("resample({p}, {q})")),
    ]
    .boxed()
}

/// A whole well-typed program: `load` + kernel chain + optional
/// terminal. Returns `(source, n_kernels)`.
fn well_typed_program() -> BoxedStrategy<(String, usize)> {
    let load = prop_oneof![
        Just("load(\"corpus\")".to_string()),
        (0u64..100, 1u64..100).prop_map(|(a, d)| format!("load(\"corpus\", {a}..{})", a + d)),
        (1u64..64).prop_map(|n| format!("load(\"corpus\", ch=0..{n})")),
        select(vec!["auto", "collective", "comm_avoiding", "modeled"])
            .prop_map(|s| format!("load(\"corpus\", strategy=\"{s}\")")),
    ];
    let terminal = select(vec![
        String::new(),
        " | xcorr(master=ch[0])".to_string(),
        " | localsim".to_string(),
        " | stack(window=256)".to_string(),
    ]);
    (load, vec(kernel_stage(), 0..6), terminal)
        .prop_map(|(load, kernels, terminal)| {
            let n = kernels.len();
            let mut src = load;
            for k in &kernels {
                src.push_str(" | ");
                src.push_str(k);
            }
            src.push_str(&terminal);
            (src, n)
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_print_then_parse_is_identity(p in pipeline()) {
        let printed = p.to_string();
        let reparsed = parse(&printed);
        prop_assert!(
            reparsed.is_ok(),
            "pretty-printed program failed to re-parse\n source: {:?}\n error: {}",
            printed,
            reparsed.unwrap_err().render(&printed)
        );
        let reparsed = reparsed.unwrap();
        prop_assert_eq!(&reparsed, &p);
        // Printing is a fixed point: the second trip changes nothing.
        prop_assert_eq!(reparsed.to_string(), printed);
    }

    #[test]
    fn well_typed_programs_compile_and_fuse(src_n in well_typed_program()) {
        let (src, n_kernels) = src_n;
        let program = dasl::compile(&src);
        prop_assert!(
            program.is_ok(),
            "well-typed program failed to compile\n source: {:?}\n error: {}",
            src,
            program.unwrap_err().render(&src)
        );
        let program = program.unwrap();
        // A chain of k adjacent element-wise kernels runs as one pass,
        // eliminating k-1 traversals.
        prop_assert_eq!(program.fused_stages, n_kernels.saturating_sub(1) as u64);
        prop_assert_eq!(program.load_spec().corpus.as_str(), "corpus");
    }
}
