//! Golden tests: the rendered parse/typecheck diagnostics are part of
//! the `dasl` API. Each case pins the full caret-rendered message, so
//! any wording or span regression shows up as an exact-string diff.

fn rendered(src: &str) -> String {
    match dasl::compile(src) {
        Ok(_) => panic!("expected {src:?} to fail to compile"),
        Err(e) => e.render(src),
    }
}

#[test]
fn unknown_stage_suggests_a_neighbour() {
    assert_eq!(
        rendered("load(\"corpus\") | bandpas(0.5, 16)"),
        "error: unknown stage `bandpas` (did you mean `bandpass`?)\n\
         \x20 --> line 1, column 18\n\
         \x20  |\n\
         \x201 | load(\"corpus\") | bandpas(0.5, 16)\n\
         \x20  |                  ^^^^^^^\n"
    );
}

#[test]
fn missing_argument_names_the_hole() {
    assert_eq!(
        rendered("load(\"corpus\") | bandpass(0.5)"),
        "error: `bandpass` is missing its `hi` argument\n\
         \x20 --> line 1, column 18\n\
         \x20  |\n\
         \x201 | load(\"corpus\") | bandpass(0.5)\n\
         \x20  |                  ^^^^^^^^^^^^^\n"
    );
}

#[test]
fn argument_kind_mismatch_is_precise() {
    assert_eq!(
        rendered("load(\"corpus\") | bandpass(\"low\", 16)"),
        "error: `bandpass` argument `lo` wants a number, got a string\n\
         \x20 --> line 1, column 27\n\
         \x20  |\n\
         \x201 | load(\"corpus\") | bandpass(\"low\", 16)\n\
         \x20  |                           ^^^^^\n"
    );
}

#[test]
fn shape_mismatch_reports_the_upstream_type() {
    assert_eq!(
        rendered("load(\"corpus\") | xcorr(master=ch[0]) | detrend"),
        "error: `detrend` expects waveforms, but the previous stage produced scores[?]\n\
         \x20 --> line 1, column 40\n\
         \x20  |\n\
         \x201 | load(\"corpus\") | xcorr(master=ch[0]) | detrend\n\
         \x20  |                                        ^^^^^^^\n"
    );
}

#[test]
fn load_must_come_first() {
    assert_eq!(
        rendered("detrend | bandpass(0.5, 16)"),
        "error: the pipeline must start with `load(...)`, not `detrend`\n\
         \x20 --> line 1, column 1\n\
         \x20  |\n\
         \x201 | detrend | bandpass(0.5, 16)\n\
         \x20  | ^^^^^^^\n"
    );
}

#[test]
fn dangling_pipe_points_at_the_end() {
    assert_eq!(
        rendered("load(\"corpus\") |"),
        "error: expected a stage name, found end of program\n\
         \x20 --> line 1, column 17\n\
         \x20  |\n\
         \x201 | load(\"corpus\") |\n\
         \x20  |                 ^\n"
    );
}

#[test]
fn unclosed_argument_list_names_the_stage() {
    assert_eq!(
        rendered("load(\"corpus\" | detrend"),
        "error: expected `)` to close the argument list of `load`, found `|`\n\
         \x20 --> line 1, column 15\n\
         \x20  |\n\
         \x201 | load(\"corpus\" | detrend\n\
         \x20  |               ^\n"
    );
}

#[test]
fn master_out_of_range_uses_the_pinned_channel_count() {
    assert_eq!(
        rendered("load(\"corpus\", ch=0..4) | xcorr(master=ch[4])"),
        "error: master channel 4 is out of range: the pipeline carries 4 channels\n\
         \x20 --> line 1, column 40\n\
         \x20  |\n\
         \x201 | load(\"corpus\", ch=0..4) | xcorr(master=ch[4])\n\
         \x20  |                                        ^^^^^\n"
    );
}

#[test]
fn inverted_band_corners_are_rejected() {
    assert_eq!(
        rendered("load(\"corpus\") | bandpass(16, 0.5)"),
        "error: bandpass corners must satisfy 0 < lo < hi (got 16 and 0.5)\n\
         \x20 --> line 1, column 27\n\
         \x20  |\n\
         \x201 | load(\"corpus\") | bandpass(16, 0.5)\n\
         \x20  |                           ^^^^^^^\n"
    );
}

#[test]
fn multi_line_programs_point_at_the_right_line() {
    let src = "# interferometry, one stage per line\n\
               load(\"corpus\")\n\
               \x20 | detrend\n\
               \x20 | bandpass(0.5)\n";
    assert_eq!(
        rendered(src),
        "error: `bandpass` is missing its `hi` argument\n\
         \x20 --> line 4, column 5\n\
         \x20  |\n\
         \x204 |   | bandpass(0.5)\n\
         \x20  |     ^^^^^^^^^^^^^\n"
    );
}

#[test]
fn good_programs_still_compile() {
    for src in [
        "load(\"corpus\") | detrend | bandpass(0.5, 16) | resample(4) | xcorr(master=ch[0])",
        "load(\"corpus\", 0..60) | localsim",
        "load(\"corpus\", t=0..60, ch=0..32, strategy=\"modeled\") | demean | stack(window=256)",
    ] {
        dasl::compile(src).unwrap_or_else(|e| panic!("{src:?}:\n{}", e.render(src)));
    }
}
