//! Whole-pipeline benchmarks: the two case studies under both execution
//! layouts, and the DASSA-vs-interpreted-baseline compute comparison
//! (the measured core of Figures 8 and 9).

use arrayudf::Array2;
use bench::calibrate::test_array;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dassa::prelude::*;
use mlab::{Interp, Value};
use std::hint::black_box;

fn bench_interferometry(c: &mut Criterion) {
    let data = test_array(24, 4000);
    let params = InterferometryParams {
        band: (0.01, 0.4),
        ..Default::default()
    };
    let bytes = (data.rows() * data.cols() * 8) as u64;
    let mut g = c.benchmark_group("interferometry");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("hybrid", threads), &threads, |b, &t| {
            b.iter(|| {
                interferometry(
                    black_box(&data),
                    &params,
                    &Haee::builder().threads(t).build(),
                )
                .expect("run")
            })
        });
    }
    g.finish();
}

fn bench_local_similarity(c: &mut Criterion) {
    let data = test_array(24, 3000);
    let params = LocalSimiParams {
        half_window: 12,
        channel_offset: 1,
        search_half: 5,
        time_stride: 25,
    };
    let bytes = (data.rows() * data.cols() * 8) as u64;
    let mut g = c.benchmark_group("local_similarity");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("hybrid", threads), &threads, |b, &t| {
            b.iter(|| {
                local_similarity(
                    black_box(&data),
                    &params,
                    &Haee::builder().threads(t).build(),
                )
            })
        });
    }
    g.finish();
}

/// The Figure 9 script, shared with `exp_fig9`.
const PIPELINE: &str = "
[b, a] = butter(4, [0.01 0.4]);
m0 = detrend(data(1, :));
m1 = filtfilt(b, a, m0);
m2 = resample(m1, 1, 2);
mfft = fft(m2);
scores = zeros(1, nch);
for c = 1:nch
  w0 = detrend(data(c, :));
  w1 = filtfilt(b, a, w0);
  w2 = resample(w1, 1, 2);
  wfft = fft(w2);
  scores(c) = abscorr(wfft, mfft);
end
";

fn bench_native_vs_mlab(c: &mut Criterion) {
    let data = test_array(16, 2000);
    let params = InterferometryParams {
        band: (0.01, 0.4),
        ..Default::default()
    };
    let mut g = c.benchmark_group("fig9_compute");
    g.sample_size(10);
    g.bench_function("dassa_native", |b| {
        b.iter(|| {
            interferometry(
                black_box(&data),
                &params,
                &Haee::builder().threads(1).build(),
            )
            .expect("run")
        })
    });
    g.bench_function("mlab_interpreted", |b| {
        b.iter(|| {
            let mut interp = Interp::new();
            interp.set(
                "data",
                Value::Matrix {
                    rows: data.rows(),
                    cols: data.cols(),
                    data: data.as_slice().to_vec(),
                },
            );
            interp.set("nch", Value::Num(data.rows() as f64));
            interp.run(black_box(PIPELINE)).expect("script");
        })
    });
    g.finish();
}

fn bench_mlab_interpreter_overhead(c: &mut Criterion) {
    // Pure interpretation cost: a tight scalar loop with no heavy
    // builtins — the per-statement dispatch price.
    let mut g = c.benchmark_group("mlab_overhead");
    g.bench_function("scalar_loop_10k", |b| {
        b.iter(|| {
            let mut i = Interp::new();
            i.run("acc = 0; for k = 1:10000 acc = acc + k * 2 - 1; end")
                .expect("loop");
            i.get_scalar("acc")
        })
    });
    let native = |n: u64| {
        let mut acc = 0i64;
        for k in 1..=n as i64 {
            acc += k * 2 - 1;
        }
        acc
    };
    g.bench_function("native_loop_10k", |b| b.iter(|| native(black_box(10000))));
    g.finish();
}

fn bench_applymt_alignment(_c: &mut Criterion) {
    // Differential smoke check executed once under the bench profile:
    // threaded and serial pipelines agree (keeps the bench binary honest
    // even when run with --test).
    let data = Array2::from_fn(8, 600, |r, t| ((r + t) as f64 * 0.1).sin());
    let params = InterferometryParams {
        band: (0.01, 0.4),
        ..Default::default()
    };
    let a = interferometry(&data, &params, &Haee::builder().threads(1).build()).expect("serial");
    let b = interferometry(&data, &params, &Haee::builder().threads(4).build()).expect("threaded");
    assert_eq!(a, b);
}

criterion_group! {
    name = pipelines;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_interferometry, bench_local_similarity, bench_native_vs_mlab,
              bench_mlab_interpreter_overhead, bench_applymt_alignment
}
criterion_main!(pipelines);
