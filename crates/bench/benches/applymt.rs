//! ApplyMT (Algorithm 1) benchmarks and ablations.
//!
//! Thread sweep for the multithreaded Apply, plus the design-choice
//! ablations DESIGN.md calls out: static vs dynamic scheduling of the
//! worksharing loop, and ghost-zone reach sweeps for the distributed
//! engine's halo exchange.

use arrayudf::{apply, apply_mt, Array2, Ghost, Stencil, Stride};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn grid(rows: usize, cols: usize) -> Array2<f64> {
    Array2::from_fn(rows, cols, |r, c| {
        ((r * cols + c) as f64 * 0.01).sin() + r as f64 * 1e-3
    })
}

fn udf(s: &Stencil<f64>) -> f64 {
    // A 5-point time stencil with one neighbour channel — representative
    // structural-locality work.
    let mut acc = 0.0;
    for dt in -2isize..=2 {
        acc += s.at(dt, 0);
    }
    acc * 0.2 + 0.1 * s.at(0, 1)
}

fn bench_apply_serial_vs_mt(c: &mut Criterion) {
    let a = grid(64, 4096);
    let cells = (a.rows() * a.cols()) as u64;
    let mut g = c.benchmark_group("apply");
    g.throughput(Throughput::Elements(cells));
    g.bench_function("serial", |b| {
        b.iter(|| apply(black_box(&a), Ghost::both(2, 1), Stride::unit(), udf))
    });
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("applymt", threads), &threads, |b, &t| {
            b.iter(|| apply_mt(black_box(&a), Ghost::both(2, 1), Stride::unit(), t, udf))
        });
    }
    g.finish();
}

fn bench_schedule_ablation(c: &mut Criterion) {
    // Static vs dynamic worksharing with deliberately imbalanced work:
    // rows near the bottom cost ~8x more.
    let a = grid(64, 1024);
    let heavy_udf = |s: &Stencil<f64>| {
        let reps = 1 + 7 * s.channel() / 64;
        let mut acc = 0.0;
        for _ in 0..reps {
            acc += udf(s);
        }
        acc / reps as f64
    };
    let mut g = c.benchmark_group("schedule_imbalanced");
    g.bench_function("static_4t", |b| {
        b.iter(|| {
            let out = omp::SharedSlice::<f64>::zeroed(a.rows() * a.cols());
            omp::parallel(4, |ctx| {
                ctx.for_static(0..a.rows() * a.cols(), |i| {
                    let s = Stencil::new(&a, i / a.cols(), i % a.cols());
                    unsafe { out.write(i, heavy_udf(&s)) };
                });
            });
            out.into_vec()
        })
    });
    g.bench_function("dynamic_4t_chunk256", |b| {
        b.iter(|| {
            let out = omp::SharedSlice::<f64>::zeroed(a.rows() * a.cols());
            omp::parallel(4, |ctx| {
                ctx.for_dynamic(0..a.rows() * a.cols(), 256, |i| {
                    let s = Stencil::new(&a, i / a.cols(), i % a.cols());
                    unsafe { out.write(i, heavy_udf(&s)) };
                });
            });
            out.into_vec()
        })
    });
    g.finish();
}

fn bench_ghost_zone_sweep(c: &mut Criterion) {
    // Halo exchange cost as declared stencil reach grows.
    let total = 64usize;
    let a = grid(total, 512);
    let mut g = c.benchmark_group("halo_exchange_4ranks");
    for ghost in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(ghost), &ghost, |b, &gh| {
            b.iter(|| {
                minimpi::run(4, |comm| {
                    let own = arrayudf::dist::partition(total, comm.size(), comm.rank());
                    let local = a.row_block(own.start, own.end);
                    arrayudf::dist::exchange_halo(comm, &local, total, gh)
                        .0
                        .len()
                })
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = applymt;
    config = Criterion::default()
        .sample_size(15)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_apply_serial_vs_mt, bench_schedule_ablation, bench_ghost_zone_sweep
}
criterion_main!(applymt);
