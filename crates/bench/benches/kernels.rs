//! DasLib kernel microbenchmarks (the operations of paper Table II).
//!
//! These are the building blocks of both case-study pipelines; their
//! single-core throughput also calibrates the at-scale cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsp::{
    abscorr, butter, detrend, fft_real, filtfilt, interp1, resample, xcorr_fft, CorrMode,
    FilterBand,
};
use std::hint::black_box;

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            (0.05 * t).sin() + 0.4 * (0.021 * t).sin() + 0.1 * ((i * 7919) % 1000) as f64 / 1000.0
        })
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for &n in &[1024usize, 4096, 30000] {
        // 30000 = one paper minute at 500 Hz — a non-power-of-two that
        // exercises the Bluestein path.
        let x = signal(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| fft_real(black_box(x)))
        });
    }
    g.finish();
}

fn bench_filtfilt(c: &mut Criterion) {
    let mut g = c.benchmark_group("filtfilt");
    let (bb, aa) = butter(4, FilterBand::Bandpass(0.01, 0.4));
    for &n in &[1000usize, 10000, 30000] {
        let x = signal(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| filtfilt(black_box(&bb), black_box(&aa), black_box(x)))
        });
    }
    g.finish();
}

fn bench_butter_design(c: &mut Criterion) {
    c.bench_function("butter_design_order4_bandpass", |b| {
        b.iter(|| butter(black_box(4), FilterBand::Bandpass(0.01, 0.4)))
    });
}

fn bench_resample(c: &mut Criterion) {
    let mut g = c.benchmark_group("resample_1_2");
    for &n in &[10000usize, 30000] {
        let x = signal(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| resample(black_box(x), 1, 2))
        });
    }
    g.finish();
}

fn bench_detrend(c: &mut Criterion) {
    let x = signal(30000);
    c.bench_function("detrend_30000", |b| b.iter(|| detrend(black_box(&x))));
}

fn bench_abscorr(c: &mut Criterion) {
    let mut g = c.benchmark_group("abscorr");
    for &n in &[51usize, 1001, 15000] {
        let x = signal(n);
        let y: Vec<f64> = x.iter().rev().cloned().collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| abscorr(black_box(&x), black_box(&y)))
        });
    }
    g.finish();
}

fn bench_xcorr(c: &mut Criterion) {
    let x = signal(4096);
    c.bench_function("xcorr_fft_4096", |b| {
        b.iter(|| xcorr_fft(black_box(&x), black_box(&x), CorrMode::Full))
    });
}

fn bench_ambient_noise_toolbox(c: &mut Criterion) {
    let x = signal(30000);
    let mut g = c.benchmark_group("ambient_noise_toolbox");
    g.throughput(Throughput::Elements(30000));
    g.bench_function("whiten_30000", |b| {
        b.iter(|| dsp::whiten(black_box(&x), 0.02, 0.5, 0.01))
    });
    g.bench_function("envelope_30000", |b| {
        b.iter(|| dsp::envelope(black_box(&x)))
    });
    g.bench_function("one_bit_30000", |b| b.iter(|| dsp::one_bit(black_box(&x))));
    g.bench_function("running_abs_mean_30000", |b| {
        b.iter(|| dsp::running_abs_mean(black_box(&x), 50))
    });
    g.bench_function("welch_psd_30000", |b| {
        b.iter(|| dsp::welch_psd(black_box(&x), 256, 128))
    });
    g.bench_function("spectrogram_30000", |b| {
        b.iter(|| dsp::spectrogram(black_box(&x), 256, 128))
    });
    g.finish();
}

fn bench_interp1(c: &mut Criterion) {
    let x0: Vec<f64> = (0..1000).map(|i| i as f64).collect();
    let y0 = signal(1000);
    let xq: Vec<f64> = (0..5000).map(|i| i as f64 * 0.19).collect();
    c.bench_function("interp1_1000knots_5000q", |b| {
        b.iter(|| interp1(black_box(&x0), black_box(&y0), black_box(&xq)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_fft, bench_filtfilt, bench_butter_design, bench_resample,
              bench_detrend, bench_abscorr, bench_xcorr, bench_interp1,
              bench_ambient_noise_toolbox
}
criterion_main!(kernels);
