//! Storage engine benchmarks: dasf I/O, das_search, VCA/RCA creation,
//! and the two parallel read strategies (the measured halves of the
//! paper's Figures 6 and 7).

use bench::datasets;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dassa::prelude::*;
use std::hint::black_box;

fn bench_dasf_read(c: &mut Criterion) {
    let dir = datasets::minute_dataset("bench-dasf", 16, 50.0, 2);
    let cat = FileCatalog::scan(&dir).expect("scan");
    let path = cat.entries()[0].path.clone();
    let bytes = 16 * 3000 * 4;

    let mut g = c.benchmark_group("dasf");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("open_metadata_only", |b| {
        b.iter(|| dasf::File::open(black_box(&path)).expect("open"))
    });
    g.bench_function("read_full_dataset", |b| {
        let f = dasf::File::open(&path).expect("open");
        b.iter(|| f.read_f32(DATASET_PATH).expect("read"))
    });
    g.bench_function("read_hyperslab_quarter", |b| {
        let f = dasf::File::open(&path).expect("open");
        b.iter(|| {
            f.read_hyperslab_f32(DATASET_PATH, &[(4, 8), (750, 1500)])
                .expect("slab")
        })
    });
    g.finish();
}

fn bench_chunked_vs_contiguous(c: &mut Criterion) {
    // DESIGN.md ablation: chunked layout pays per-chunk overhead on full
    // reads but touches only intersecting chunks on small hyperslabs.
    let dir = std::env::temp_dir().join("dassa-bench-chunkabl");
    std::fs::create_dir_all(&dir).expect("dir");
    let path = dir.join("layouts.dasf");
    let (rows, cols) = (64u64, 4096u64);
    let data: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
    {
        let mut w = dasf::Writer::create(&path).expect("writer");
        w.write_dataset_f32("/cont", &[rows, cols], &data)
            .expect("cont");
        w.write_dataset_chunked("/chunked", &[rows, cols], &[8, 512], &data)
            .expect("chunked");
        w.finish().expect("finish");
    }
    let f = dasf::File::open(&path).expect("open");
    let mut g = c.benchmark_group("layout_ablation");
    g.bench_function("full_read_contiguous", |b| {
        b.iter(|| f.read_f32("/cont").expect("read"))
    });
    g.bench_function("full_read_chunked", |b| {
        b.iter(|| f.read_f32("/chunked").expect("read"))
    });
    // A small window: 4 channels x 256 samples out of 64 x 4096.
    let sel = [(16u64, 4u64), (1024u64, 256u64)];
    g.bench_function("window_read_contiguous", |b| {
        b.iter(|| {
            f.read_hyperslab_f32("/cont", black_box(&sel))
                .expect("slab")
        })
    });
    g.bench_function("window_read_chunked", |b| {
        b.iter(|| {
            f.read_hyperslab_f32("/chunked", black_box(&sel))
                .expect("slab")
        })
    });
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let dir = datasets::minute_dataset("bench-search", 8, 50.0, 32);
    let cat = FileCatalog::scan(&dir).expect("scan");
    let mut g = c.benchmark_group("das_search");
    g.bench_function("scan_32_files", |b| {
        b.iter(|| FileCatalog::scan(black_box(&dir)).expect("scan"))
    });
    g.bench_function("range_query", |b| {
        b.iter(|| {
            cat.search_range(black_box(170728224510), 15)
                .expect("range")
        })
    });
    g.bench_function("regex_query", |b| {
        b.iter(|| {
            cat.search_regex(black_box("1707282[23]4[567]10"))
                .expect("regex")
        })
    });
    g.finish();
}

fn bench_merge(c: &mut Criterion) {
    let dir = datasets::minute_dataset("bench-merge", 8, 50.0, 16);
    let cat = FileCatalog::scan(&dir).expect("scan");
    let mut g = c.benchmark_group("merge");
    g.bench_function("create_vca", |b| {
        b.iter(|| Vca::from_entries(black_box(cat.entries())).expect("vca"))
    });
    g.sample_size(10);
    g.bench_function("create_rca", |b| {
        let out = dir.join("bench.rca.dasf");
        b.iter(|| create_rca(black_box(cat.entries()), &out).expect("rca"))
    });
    g.finish();
}

fn bench_parallel_read(c: &mut Criterion) {
    let dir = datasets::minute_dataset("bench-parread", 16, 50.0, 8);
    let cat = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(cat.entries()).expect("vca");
    let bytes = vca.channels() * vca.total_samples() * 4;

    let mut g = c.benchmark_group("vca_parallel_read_4ranks");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);
    for (name, strategy) in [("collective_per_file", true), ("comm_avoiding", false)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, &coll| {
            b.iter(|| {
                minimpi::run(4, |comm| {
                    if coll {
                        read_collective_per_file(comm, &vca).expect("read").len()
                    } else {
                        read_comm_avoiding(comm, &vca).expect("read").len()
                    }
                })
            })
        });
    }
    g.bench_function("serial_reference", |b| {
        b.iter(|| vca.read_all_f32().expect("read").len())
    });
    g.finish();
}

criterion_group! {
    name = storage;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_dasf_read, bench_chunked_vs_contiguous, bench_search, bench_merge,
              bench_parallel_read
}
criterion_main!(storage);
