//! Tabular stdout reporting, CSV output, and (with `--json`) the
//! machine-readable result files the perf-trajectory harness in `ci.sh`
//! consolidates into `BENCH_pipeline.json`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// A simple column-aligned table, printed like the paper's result rows.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write as CSV into the results directory; returns the path.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        std::fs::write(&path, out)?;
        Ok(path)
    }
}

/// Wall-clock + obs-counter capture for one experiment run, emitted as
/// JSON when the binary was invoked with `--json`.
///
/// Start one at the top of an experiment's `main`, finish it with the
/// result tables at the end:
///
/// ```no_run
/// let run = bench::report::JsonRun::start("fig6");
/// let t = bench::report::Table::new("demo", &["a"]);
/// // ... experiment ...
/// run.finish(&[&t]);
/// ```
///
/// The file lands at `<results_dir>/<name>.json` as
/// `{"experiment":...,"wall_ms":N,"counters":{...},"tables":[...]}`,
/// written through the workspace-shared [`obs::json::JsonWriter`].
/// `wall_ms` covers start-to-finish; `counters` is the full integer
/// counter set of the global obs registry (`dasf.*` I/O, `minimpi.*`
/// traffic, `arrayudf.*` kernel work), so a perf trajectory can track
/// work done, not just time taken.
pub struct JsonRun {
    name: &'static str,
    started: Instant,
    enabled: bool,
}

impl JsonRun {
    /// Begin timing; emission is armed only if `--json` is among the
    /// process arguments.
    pub fn start(name: &'static str) -> JsonRun {
        JsonRun {
            name,
            started: Instant::now(),
            enabled: std::env::args().any(|a| a == "--json"),
        }
    }

    /// Write the JSON result file (no-op without `--json`); returns the
    /// path when one was written.
    pub fn finish(self, tables: &[&Table]) -> Option<PathBuf> {
        if !self.enabled {
            return None;
        }
        let wall_ms = self.started.elapsed().as_millis() as u64;
        let snap = obs::global().snapshot();
        let mut w = obs::json::JsonWriter::with_capacity(1024);
        w.begin_object();
        w.key("experiment").string(self.name);
        w.key("wall_ms").uint(wall_ms);
        w.key("counters").begin_object();
        for (name, value) in &snap.counters {
            w.key(name).uint(*value);
        }
        w.end_object();
        w.key("tables").begin_array();
        for t in tables {
            w.begin_object();
            w.key("title").string(&t.title);
            w.key("headers").begin_array();
            for h in &t.headers {
                w.string(h);
            }
            w.end_array();
            w.key("rows").begin_array();
            for row in &t.rows {
                w.begin_array();
                for cell in row {
                    w.string(cell);
                }
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let dir = results_dir();
        std::fs::create_dir_all(&dir).expect("create results dir");
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, w.finish()).expect("write json result");
        println!("json: {}", path.display());
        Some(path)
    }
}

/// Where experiment CSVs land: `$DASSA_RESULTS` or `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var("DASSA_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| Path::new("results").to_path_buf())
}

/// Format seconds human-readably.
pub fn secs(s: f64) -> String {
    if s.is_infinite() {
        "OOM".to_string()
    } else if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

/// Format bytes human-readably.
pub fn bytes(b: u64) -> String {
    const K: f64 = 1024.0;
    let b = b as f64;
    if b < K {
        format!("{b:.0}B")
    } else if b < K * K {
        format!("{:.1}KiB", b / K)
    } else if b < K * K * K {
        format!("{:.1}MiB", b / K / K)
    } else {
        format!("{:.2}GiB", b / K / K / K)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_column_count_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(0.0000005), "0.5us");
        assert_eq!(secs(0.5), "500.00ms");
        assert_eq!(secs(5.0), "5.00s");
        assert_eq!(secs(600.0), "10.0min");
        assert_eq!(secs(f64::INFINITY), "OOM");
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(2048), "2.0KiB");
        assert_eq!(bytes(3 << 30), "3.00GiB");
    }
}
