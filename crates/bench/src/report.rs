//! Tabular stdout reporting and CSV output for experiment binaries.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned table, printed like the paper's result rows.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write as CSV into the results directory; returns the path.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        std::fs::write(&path, out)?;
        Ok(path)
    }
}

/// Where experiment CSVs land: `$DASSA_RESULTS` or `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var("DASSA_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| Path::new("results").to_path_buf())
}

/// Format seconds human-readably.
pub fn secs(s: f64) -> String {
    if s.is_infinite() {
        "OOM".to_string()
    } else if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

/// Format bytes human-readably.
pub fn bytes(b: u64) -> String {
    const K: f64 = 1024.0;
    let b = b as f64;
    if b < K {
        format!("{b:.0}B")
    } else if b < K * K {
        format!("{:.1}KiB", b / K)
    } else if b < K * K * K {
        format!("{:.1}MiB", b / K / K)
    } else {
        format!("{:.2}GiB", b / K / K / K)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_column_count_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(0.0000005), "0.5us");
        assert_eq!(secs(0.5), "500.00ms");
        assert_eq!(secs(5.0), "5.00s");
        assert_eq!(secs(600.0), "10.0min");
        assert_eq!(secs(f64::INFINITY), "OOM");
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(2048), "2.0KiB");
        assert_eq!(bytes(3 << 30), "3.00GiB");
    }
}
