//! Standard scaled-down datasets for the experiments.
//!
//! The paper's dataset is 1.9 TB / 2880 files / 11648 channels; local
//! experiments use the same *structure* at laptop scale. Generated file
//! sets are cached in the temp dir keyed by their parameters so repeated
//! experiment runs do not regenerate.

use dasgen::{write_minute_files, Scene};
use std::path::PathBuf;

/// The canonical experiment start timestamp, matching the paper's
/// `das_search` examples.
pub const START_TS: &str = "170728224510";

/// Generate (or reuse) `minutes` one-minute files for a demo scene with
/// `channels` channels at `sampling_hz`. Returns the dataset directory.
pub fn minute_dataset(tag: &str, channels: usize, sampling_hz: f64, minutes: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dassa-bench-{tag}-{channels}ch-{sampling_hz}hz-{minutes}min"
    ));
    let expected = minutes;
    let existing = std::fs::read_dir(&dir)
        .map(|rd| rd.filter_map(|e| e.ok()).count())
        .unwrap_or(0);
    if existing != expected {
        let _ = std::fs::remove_dir_all(&dir);
        let scene = Scene::demo(channels, sampling_hz, minutes as f64 * 60.0, 0xDA55A);
        write_minute_files(&scene, &dir, START_TS, minutes).expect("dataset generation");
    }
    dir
}

/// The scene corresponding to [`minute_dataset`] (for ground truth).
pub fn minute_scene(channels: usize, sampling_hz: f64, minutes: usize) -> Scene {
    Scene::demo(channels, sampling_hz, minutes as f64 * 60.0, 0xDA55A)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_cached_between_calls() {
        let d1 = minute_dataset("cache-test", 4, 20.0, 2);
        let mtime = |p: &PathBuf| {
            std::fs::read_dir(p)
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.metadata().unwrap().modified().unwrap())
                .max()
        };
        let t1 = mtime(&d1);
        let d2 = minute_dataset("cache-test", 4, 20.0, 2);
        assert_eq!(d1, d2);
        assert_eq!(t1, mtime(&d2), "second call must not regenerate");
    }
}
