//! Local calibration of the at-scale cost model.
//!
//! The `perfmodel` crate extrapolates to Cori scale, but its compute
//! rates are anchored to *measured* throughput of the actual DASSA
//! kernels on this machine — the same methodology as calibrating a
//! simulator against microbenchmarks.

use arrayudf::Array2;
use dassa::dasa::{interferometry, local_similarity, Haee, InterferometryParams, LocalSimiParams};
use perfmodel::Calibration;

/// Deterministic band-limited test array (`channels × samples`, f64).
pub fn test_array(channels: usize, samples: usize) -> Array2<f64> {
    Array2::from_fn(channels, samples, |c, t| {
        let tt = t as f64;
        (0.05 * (tt - c as f64 * 2.0)).sin()
            + 0.4 * (0.021 * tt + c as f64).sin()
            + 0.1 * ((c * 7919 + t * 104729) % 1000) as f64 / 1000.0
    })
}

/// Measure the interferometry pipeline's single-core throughput in
/// bytes of raw `f64` DAS input per second.
pub fn measure_compute_rate() -> f64 {
    let channels = 16;
    let samples = 6000;
    let data = test_array(channels, samples);
    let params = InterferometryParams::default();
    let haee = Haee::hybrid(1);
    let secs = crate::time_stable(0.5, || {
        interferometry(&data, &params, &haee).expect("pipeline runs")
    });
    (channels * samples * 8) as f64 / secs
}

/// Measure local-similarity throughput (bytes of input per second per
/// core).
pub fn measure_localsim_rate() -> f64 {
    let channels = 16;
    let samples = 2000;
    let data = test_array(channels, samples);
    let params = LocalSimiParams::default();
    let haee = Haee::hybrid(1);
    let secs = crate::time_stable(0.5, || local_similarity(&data, &params, &haee));
    (channels * samples * 8) as f64 / secs
}

/// Measure sequential write bandwidth to the local filesystem.
pub fn measure_write_bandwidth() -> f64 {
    let dir = std::env::temp_dir().join("dassa-calibrate");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("write_probe.bin");
    let block = vec![0u8; 8 << 20];
    let secs = crate::time_stable(0.3, || {
        std::fs::write(&path, &block).expect("write probe");
    });
    let _ = std::fs::remove_file(&path);
    block.len() as f64 / secs
}

/// Run the full calibration suite.
pub fn calibrate() -> Calibration {
    Calibration {
        compute_bytes_per_s_per_core: measure_compute_rate(),
        localsim_bytes_per_s_per_core: measure_localsim_rate(),
        write_bytes_per_s: measure_write_bandwidth(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn compute_rate_is_positive_and_sane() {
        let r = super::measure_compute_rate();
        assert!(r > 1e4, "implausibly slow: {r} B/s");
        assert!(r < 1e12, "implausibly fast: {r} B/s");
    }

    #[test]
    fn write_bandwidth_positive() {
        assert!(super::measure_write_bandwidth() > 1e5);
    }
}
