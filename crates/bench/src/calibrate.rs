//! Local calibration of the at-scale cost model, driven by `obs`.
//!
//! The `perfmodel` crate extrapolates to Cori scale, but its compute
//! rates are anchored to *measured* throughput of the actual DASSA
//! kernels on this machine. Rather than wrapping each probe in bespoke
//! stopwatch plumbing, the probes simply run and the rates are derived
//! from the observability metrics the instrumented pipelines already
//! emit (`span.interferometry`, `span.local_similarity`,
//! `dasf.write.*`) — the same numbers `das_pipeline --metrics` exports.

use arrayudf::Array2;
use dassa::prelude::*;
use perfmodel::{Calibration, CalibrationWorkload};

/// Deterministic band-limited test array (`channels × samples`, f64).
pub fn test_array(channels: usize, samples: usize) -> Array2<f64> {
    Array2::from_fn(channels, samples, |c, t| {
        let tt = t as f64;
        (0.05 * (tt - c as f64 * 2.0)).sin()
            + 0.4 * (0.021 * tt + c as f64).sin()
            + 0.1 * ((c * 7919 + t * 104729) % 1000) as f64 / 1000.0
    })
}

/// Minimum wall time each probe accumulates before its rate is trusted.
const MIN_PROBE_S: f64 = 0.3;

/// Run the interferometry probe until it has accumulated enough wall
/// time; the timings land in the `span.interferometry` histogram.
/// Returns the raw input bytes pushed through.
fn probe_interferometry() -> u64 {
    let (channels, samples) = (16usize, 6000usize);
    let data = test_array(channels, samples);
    let params = InterferometryParams::default();
    let haee = Haee::builder().threads(1).build();
    let mut bytes = 0u64;
    let t0 = std::time::Instant::now();
    while t0.elapsed().as_secs_f64() < MIN_PROBE_S {
        std::hint::black_box(interferometry(&data, &params, &haee).expect("pipeline runs"));
        bytes += (channels * samples * 8) as u64;
    }
    bytes
}

/// Run the local-similarity probe (`span.local_similarity` histogram);
/// returns the input bytes processed.
fn probe_localsim() -> u64 {
    let (channels, samples) = (16usize, 2000usize);
    let data = test_array(channels, samples);
    let params = LocalSimiParams::default();
    let haee = Haee::builder().threads(1).build();
    let mut bytes = 0u64;
    let t0 = std::time::Instant::now();
    while t0.elapsed().as_secs_f64() < MIN_PROBE_S {
        std::hint::black_box(local_similarity(&data, &params, &haee));
        bytes += (channels * samples * 8) as u64;
    }
    bytes
}

/// Write dasf datasets until enough wall time has accumulated; bytes
/// and nanoseconds land in the `dasf.write.*` metrics, from which the
/// snapshot delta derives bandwidth — no return value needed.
fn probe_write() {
    let dir = std::env::temp_dir().join("dassa-calibrate");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("write_probe.dasf");
    let block = vec![0.0f32; 2 << 20]; // 8 MiB of f32 payload
    let t0 = std::time::Instant::now();
    while t0.elapsed().as_secs_f64() < MIN_PROBE_S {
        let mut w = dasf::Writer::create(&path).expect("create probe file");
        w.write_dataset_f32("/probe", &[block.len() as u64], &block)
            .expect("write probe");
        w.finish().expect("finish probe");
    }
    let _ = std::fs::remove_file(&path);
}

/// Run the full calibration suite: snapshot the global metrics
/// registry, run the probes, and let [`Calibration::from_obs_delta`]
/// turn the metric deltas into rates.
pub fn calibrate() -> Calibration {
    let before = obs::global().snapshot();
    let work = CalibrationWorkload {
        interferometry_bytes: probe_interferometry(),
        localsim_bytes: probe_localsim(),
    };
    probe_write();
    let after = obs::global().snapshot();
    Calibration::from_obs_delta(&before, &after, &work)
}

#[cfg(test)]
mod tests {
    use perfmodel::Calibration;

    #[test]
    fn calibrate_yields_sane_measured_rates() {
        let cal = super::calibrate();
        for (name, rate) in [
            ("compute", cal.compute_bytes_per_s_per_core),
            ("localsim", cal.localsim_bytes_per_s_per_core),
            ("write", cal.write_bytes_per_s),
        ] {
            assert!(rate > 1e4, "implausibly slow {name}: {rate} B/s");
            assert!(rate < 1e12, "implausibly fast {name}: {rate} B/s");
        }
        // The rates must come from the snapshot delta, not the model's
        // built-in defaults (probes always record nonzero time).
        let d = Calibration::default();
        assert_ne!(
            cal.compute_bytes_per_s_per_core,
            d.compute_bytes_per_s_per_core
        );
        assert_ne!(cal.write_bytes_per_s, d.write_bytes_per_s);
    }
}
