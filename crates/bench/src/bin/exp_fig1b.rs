//! Figure 1b — the paper's 6-minute DAS record illustration: "a 2D
//! array indexed by channel and time, which contains lots of noise and
//! some signals from moving cars and a M4.4 earthquake".
//!
//! We render the synthetic counterpart: an amplitude map of the record
//! (channel × time), a spectrogram of one channel, and an
//! envelope-based pick of the earthquake's arrival — validated against
//! the generator's ground truth.

use bench::{datasets, report};
use dasgen::Event;
use dassa::prelude::*;
use dsp::{envelope, spectrogram};

fn main() {
    let json_run = report::JsonRun::start("fig1b");
    let (channels, hz, minutes) = (64, 50.0, 6);
    let dir = datasets::minute_dataset("fig1b", channels, hz, minutes);
    let scene = datasets::minute_scene(channels, hz, minutes);
    let catalog = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(catalog.entries()).expect("vca");
    let data = vca.read_all_f64().expect("read");

    // ---- amplitude map (the 2-D array of Figure 1b) -------------------
    println!("Figure 1b: |amplitude| map, channels across, time downward");
    println!("(' '<1, '.'<2, '+'<4, '#'>=4 — noise floor ~1)");
    let stride = (hz as usize) * 5; // one row per 5 s
    for t0 in (0..data.cols()).step_by(stride) {
        let mut line = String::with_capacity(channels);
        for ch in 0..channels {
            // Peak amplitude in this 5-second bin.
            let hi = (t0 + stride).min(data.cols());
            let peak = data.row(ch)[t0..hi]
                .iter()
                .fold(0.0f64, |m, &v| m.max(v.abs()));
            line.push(match peak {
                p if p >= 4.0 => '#',
                p if p >= 2.0 => '+',
                p if p >= 1.0 => '.',
                _ => ' ',
            });
        }
        println!("{line}  t={:>3}s", t0 / hz as usize);
    }

    // ---- spectrogram of the channel nearest the persistent source ----
    let persistent_ch = scene
        .events
        .iter()
        .find_map(|e| match e {
            Event::Persistent { channel, .. } => Some(*channel as usize),
            _ => None,
        })
        .expect("demo scene has a persistent source");
    let spec = spectrogram(data.row(persistent_ch), 128, 64);
    let dom = spec.dominant_bin();
    let dom_freq_hz = spec.bin_freq(dom) * hz / 2.0;
    println!("\nspectrogram of channel {persistent_ch} (persistent source):");
    println!(
        "  dominant bin {dom} -> {dom_freq_hz:.1} Hz  [injected: {:.1} Hz]",
        hz * 0.12
    );

    // ---- earthquake arrival pick via Hilbert envelope -----------------
    let (quake_origin_s, quake_epicenter) = scene
        .events
        .iter()
        .find_map(|e| match e {
            Event::Earthquake {
                origin_s,
                epicenter_channel,
                ..
            } => Some((*origin_s, *epicenter_channel as usize)),
            _ => None,
        })
        .expect("demo scene has an earthquake");
    let env = envelope(data.row(quake_epicenter));
    // Pick: first sample whose envelope exceeds 6x the pre-event median.
    let pre: usize = (quake_origin_s * hz) as usize / 2;
    let mut baseline: Vec<f64> = env[..pre].to_vec();
    baseline.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = baseline[baseline.len() / 2];
    let pick = env
        .iter()
        .position(|&v| v > 6.0 * median)
        .map(|i| i as f64 / hz);
    println!("\nearthquake pick on epicentral channel {quake_epicenter}:");
    println!("  ground-truth origin: {quake_origin_s:.1} s");
    match pick {
        Some(t) => {
            println!("  envelope pick:       {t:.1} s");
            let err = (t - quake_origin_s).abs();
            assert!(
                err < 10.0,
                "pick error {err:.1}s too large (origin {quake_origin_s}, pick {t})"
            );
            println!("  pick error:          {err:.1} s  (events before origin are vehicles)");
        }
        None => panic!("earthquake not visible in the envelope"),
    }

    // CSV: per-channel, per-5s peak amplitudes for external plotting.
    let mut t = report::Table::new("fig1b amplitude bins", &["channel", "t_bin_s", "peak"]);
    for ch in 0..channels {
        for (bi, t0) in (0..data.cols()).step_by(stride).enumerate() {
            let hi = (t0 + stride).min(data.cols());
            let peak = data.row(ch)[t0..hi]
                .iter()
                .fold(0.0f64, |m, &v| m.max(v.abs()));
            t.row(&[ch.to_string(), (bi * 5).to_string(), format!("{peak:.3}")]);
        }
    }
    let csv = t.write_csv("fig1b_map").expect("csv");
    println!("\ncsv: {}", csv.display());
    println!("paper: vehicles and the M4.4 earthquake are visible in the raw record —");
    println!("here the same structures appear and the quake onset is picked within seconds.");
    json_run.finish(&[&t]);
}
