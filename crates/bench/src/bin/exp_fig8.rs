//! Figure 8 — pure-MPI ArrayUDF vs the hybrid engine (HAEE).
//!
//! Measured part: the interferometry UDF executed under both layouts at
//! local scale — pure MPI (`ranks = cores, threads = 1`, master channel
//! duplicated per rank) vs hybrid (`1 rank, threads = cores`, master
//! shared). We report wall time, I/O request counts, and the measured
//! per-node memory footprint of the master-channel state.
//!
//! Modeled part: the calibrated Cori model over the paper's node counts
//! (91 → 728, 16 cores each), reproducing the read/compute/write bars
//! and the out-of-memory failure of pure MPI at 91 nodes.

use arrayudf::dist::partition;
use bench::{calibrate, datasets, report, time};
use dassa::prelude::*;
use perfmodel::experiments::{model_fig8, Layout, Workload};
use perfmodel::Machine;

fn main() {
    let json_run = report::JsonRun::start("fig8");
    // ---------------- measured, local scale ---------------------------
    let (channels, hz, minutes) = (24, 40.0, 8);
    let dir = datasets::minute_dataset("fig8", channels, hz, minutes);
    let catalog = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(catalog.entries()).expect("vca");
    let params = InterferometryParams {
        band: (0.01, 0.4),
        ..Default::default()
    };
    let cores = 4usize;

    let run_layout = |ranks: usize, threads: usize| -> (f64, minimpi::StatsSnapshot, u64) {
        let total_ch = vca.channels() as usize;
        let ((), wall) = time(|| {
            minimpi::run(ranks, |comm| {
                let local = read_comm_avoiding(comm, &vca).expect("read");
                let local64 = arrayudf::Array2::from_vec(
                    local.rows(),
                    local.cols(),
                    local.as_slice().iter().map(|&v| v as f64).collect(),
                );
                interferometry_dist(
                    comm,
                    &local64,
                    total_ch,
                    &params,
                    &Haee::builder().threads(threads).build(),
                )
                .expect("pipeline")
            });
        });
        let (_, stats) = minimpi::run_with_stats(ranks, |comm| {
            let local = read_comm_avoiding(comm, &vca).expect("read");
            let local64 = arrayudf::Array2::from_vec(
                local.rows(),
                local.cols(),
                local.as_slice().iter().map(|&v| v as f64).collect(),
            );
            interferometry_dist(
                comm,
                &local64,
                total_ch,
                &params,
                &Haee::builder().threads(threads).build(),
            )
            .expect("pipeline")
        });
        // Master-channel bytes resident per "node" = one copy per rank.
        let own0 = partition(total_ch, 1, 0);
        let _ = own0;
        let master_row: Vec<f64> = vca
            .read_region_f32(0..1, 0..vca.total_samples())
            .expect("master row")
            .into_vec()
            .into_iter()
            .map(|v| v as f64)
            .collect();
        let master_bytes = prepare_master(&master_row, &params).bytes() * ranks as u64;
        (wall, stats, master_bytes)
    };

    let (mpi_wall, mpi_stats, mpi_master) = run_layout(cores, 1);
    let (hy_wall, hy_stats, hy_master) = run_layout(1, cores);

    let mut t = report::Table::new(
        &format!("Figure 8 (measured, {cores} cores): pure MPI vs hybrid HAEE"),
        &[
            "layout",
            "wall(s)",
            "p2p msgs",
            "master copies",
            "master bytes",
        ],
    );
    t.row(&[
        format!("pure MPI ({cores} ranks x 1 thread)"),
        format!("{mpi_wall:.3}"),
        mpi_stats.p2p_messages.to_string(),
        cores.to_string(),
        report::bytes(mpi_master),
    ]);
    t.row(&[
        format!("hybrid (1 rank x {cores} threads)"),
        format!("{hy_wall:.3}"),
        hy_stats.p2p_messages.to_string(),
        "1".into(),
        report::bytes(hy_master),
    ]);
    t.print();
    t.write_csv("fig8_measured").expect("csv");

    assert_eq!(
        mpi_master / hy_master,
        cores as u64,
        "pure MPI duplicates the master channel per rank"
    );
    assert!(
        hy_stats.p2p_messages < mpi_stats.p2p_messages,
        "hybrid communicates less"
    );
    println!(
        "\nmaster duplication: {}x; message reduction: {:.1}x",
        mpi_master / hy_master,
        mpi_stats.p2p_messages as f64 / hy_stats.p2p_messages.max(1) as f64
    );

    // ---------------- modeled, paper scale -----------------------------
    println!("\ncalibrating compute rate on this host...");
    let cal = calibrate::calibrate();
    println!(
        "  interferometry: {:.1} MB/s/core; write: {:.0} MB/s",
        cal.compute_bytes_per_s_per_core / 1e6,
        cal.write_bytes_per_s / 1e6
    );
    let m = Machine::cori_haswell();
    let w = Workload::paper();
    let mut tm = report::Table::new(
        "Figure 8 (modeled, Cori, 1.9 TB, 16 cores/node)",
        &[
            "nodes",
            "layout",
            "read(s)",
            "compute(s)",
            "write(s)",
            "total",
        ],
    );
    for &nodes in &[91usize, 182, 364, 728] {
        for layout in [
            Layout::PureMpi { procs_per_node: 16 },
            Layout::Hybrid { threads: 16 },
        ] {
            let p = model_fig8(&m, &cal, &w, nodes, layout);
            let name = match layout {
                Layout::PureMpi { .. } => "ArrayUDF (MPI)",
                Layout::Hybrid { .. } => "HArrayUDF",
            };
            tm.row(&[
                nodes.to_string(),
                name.into(),
                if p.oom {
                    "OOM".into()
                } else {
                    format!("{:.1}", p.read_s)
                },
                if p.oom {
                    "OOM".into()
                } else {
                    format!("{:.1}", p.compute_s)
                },
                if p.oom {
                    "OOM".into()
                } else {
                    format!("{:.2}", p.write_s)
                },
                report::secs(p.total_s()),
            ]);
        }
    }
    tm.print();
    tm.write_csv("fig8_modeled").expect("csv");
    println!("\npaper shape: pure MPI OOMs at 91 nodes; at 728 nodes its read time");
    println!("balloons (11648 concurrent I/O requests); HAEE issues 16x fewer calls.");
    json_run.finish(&[&t, &tm]);
}
