//! Table I — RCA vs VCA comparison, measured.
//!
//! The paper states the comparison qualitatively (extra space,
//! construction overhead, duplication across groups, parallel I/O);
//! this experiment produces the same rows from actual measurements on a
//! generated day-fragment.

use bench::{datasets, report, time};
use dassa::prelude::*;

fn dir_size(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

fn main() {
    let json_run = report::JsonRun::start("table1");
    let (channels, hz, minutes) = (32, 50.0, 16);
    let dir = datasets::minute_dataset("table1", channels, hz, minutes);
    let catalog = FileCatalog::scan(&dir).expect("scan dataset");
    let data_bytes: u64 = catalog
        .entries()
        .iter()
        .map(|e| e.meta.channels * e.meta.samples * 4)
        .sum();

    // --- VCA: metadata-only merge -------------------------------------
    let vca_path = dir.join("merged.vca.dasf");
    let (vca, vca_secs) = time(|| {
        let v = Vca::from_entries(catalog.entries()).expect("vca");
        v.save(&vca_path).expect("save vca");
        v
    });
    let vca_extra = std::fs::metadata(&vca_path).map(|m| m.len()).unwrap_or(0);

    // --- RCA: physical merge -------------------------------------------
    let rca_path = dir.join("merged.rca.dasf");
    let (_, rca_secs) = time(|| create_rca(catalog.entries(), &rca_path).expect("rca"));
    let rca_extra = std::fs::metadata(&rca_path).map(|m| m.len()).unwrap_or(0);

    // Duplication across groups: merging the same files into a second
    // array — VCA reuses members, RCA copies again.
    let vca2 = dir.join("merged2.vca.dasf");
    vca.save(&vca2).expect("second vca");
    let rca2 = dir.join("merged2.rca.dasf");
    create_rca(catalog.entries(), &rca2).expect("second rca");
    let _ = (dir_size(&dir), ());

    let mut t = report::Table::new(
        "Table I: comparison between RCA and VCA (measured)",
        &["metric", "RCA", "VCA"],
    );
    t.row(&[
        "extra space vs data".into(),
        format!("{:.0}%", 100.0 * rca_extra as f64 / data_bytes as f64),
        format!("{:.2}%", 100.0 * vca_extra as f64 / data_bytes as f64),
    ]);
    t.row(&[
        "construction time".into(),
        report::secs(rca_secs),
        report::secs(vca_secs),
    ]);
    t.row(&[
        "second merge duplicates data".into(),
        "yes (full copy)".into(),
        "no (metadata only)".into(),
    ]);
    t.row(&[
        "parallel I/O on members".into(),
        "single file".into(),
        "comm-avoiding reader".into(),
    ]);
    t.print();
    let csv = t.write_csv("table1").expect("csv");
    println!(
        "\ndata size: {} across {} files",
        report::bytes(data_bytes),
        catalog.len()
    );
    println!(
        "construction speedup (RCA/VCA): {:.0}x   [paper: ~70,000x at 2880 full-size files]",
        rca_secs / vca_secs.max(1e-9)
    );
    println!("csv: {}", csv.display());

    // Sanity contracts this table claims.
    assert!(
        rca_extra as f64 >= 0.99 * data_bytes as f64,
        "RCA must copy all data"
    );
    assert!(vca_extra * 100 < data_bytes, "VCA descriptor must be tiny");
    assert!(rca_secs > vca_secs, "RCA construction must cost more");
    json_run.finish(&[&t]);
}
