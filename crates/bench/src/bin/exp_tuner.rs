//! Beyond the paper: automatic system-setting selection (its stated
//! future work), demonstrated on the paper's own workload.
//!
//! Sweeps node counts × layouts through the calibrated cost model and
//! prints what the tuner recommends under three objectives — including
//! how it steers clear of the 91-node pure-MPI out-of-memory crash and
//! lands on the paper's "best efficiency around 364 nodes" observation
//! when efficiency matters.

use bench::{calibrate, report};
use perfmodel::experiments::{Layout, Workload};
use perfmodel::{recommend, Machine, Objective};

fn layout_name(l: &Layout) -> &'static str {
    match l {
        Layout::PureMpi { .. } => "ArrayUDF (pure MPI)",
        Layout::Hybrid { .. } => "HArrayUDF (hybrid)",
    }
}

fn main() {
    let json_run = report::JsonRun::start("tuner");
    let cal = calibrate::calibrate();
    let m = Machine::cori_haswell();
    let w = Workload::paper();
    let nodes = [91usize, 182, 364, 728, 1092, 1456];

    let mut sweep = report::Table::new(
        "Tuner sweep: every configuration considered (16 cores/node)",
        &["nodes", "layout", "total(s)", "node-hours", "viable"],
    );
    let first = recommend(&m, &cal, &w, &nodes, 16, Objective::MinTime).expect("viable");
    for p in &first.considered {
        sweep.row(&[
            p.nodes.to_string(),
            layout_name(&p.layout).into(),
            report::secs(p.total_s()),
            if p.oom {
                "-".into()
            } else {
                format!("{:.2}", p.total_s() * p.nodes as f64 / 3600.0)
            },
            if p.oom { "OOM".into() } else { "yes".into() },
        ]);
    }
    sweep.print();
    sweep.write_csv("tuner_sweep").expect("csv");

    let mut rec = report::Table::new(
        "Tuner recommendations",
        &["objective", "nodes", "layout", "predicted total"],
    );
    for (name, obj) in [
        ("fastest wall-clock", Objective::MinTime),
        ("cheapest node-hours", Objective::MinNodeHours),
        (
            "fastest at >=70% efficiency",
            Objective::MinTimeWithEfficiency(0.7),
        ),
    ] {
        let r = recommend(&m, &cal, &w, &nodes, 16, obj).expect("viable");
        rec.row(&[
            name.into(),
            r.nodes.to_string(),
            layout_name(&r.layout).into(),
            report::secs(r.predicted.total_s()),
        ]);
    }
    rec.print();
    rec.write_csv("tuner_recommendations").expect("csv");

    println!("\nnotes: the tuner never selects the 91-node pure-MPI configuration the");
    println!("paper reports as out-of-memory, always prefers the hybrid layout, and");
    println!("under an efficiency constraint lands near the paper's 364-node sweet spot.");
    json_run.finish(&[&sweep, &rec]);
}
