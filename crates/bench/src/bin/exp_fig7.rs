//! Figure 7 — reading a VCA: "collective-per-file" vs the paper's
//! "communication-avoiding" method, with RCA reads as reference.
//!
//! Two parts:
//! 1. **Measured** at local scale (simulated MPI ranks on this host):
//!    both strategies read the same generated VCA; we report wall time
//!    and — more robustly on a 1-core host — the communication volume
//!    each strategy actually moved (broadcast bytes vs exchange bytes).
//! 2. **Modeled** at the paper's scale (90 processes, up to 2880
//!    700 MB files on Cori Lustre) via the calibrated cost model.

use bench::{datasets, report, time};
use dassa::prelude::*;
use perfmodel::{experiments::model_fig7, Machine};

fn main() {
    let json_run = report::JsonRun::start("fig7");
    // ---------------- measured, local scale ---------------------------
    let (channels, hz, minutes) = (24, 40.0, 12);
    let dir = datasets::minute_dataset("fig7", channels, hz, minutes);
    let catalog = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(catalog.entries()).expect("vca");
    let rca_path = dir.join("fig7.rca.dasf");
    create_rca(catalog.entries(), &rca_path).expect("rca");

    let ranks = 6;
    let mut t = report::Table::new(
        &format!("Figure 7 (measured, {ranks} ranks, {minutes} files): VCA read strategies"),
        &["method", "wall(s)", "p2p msgs", "p2p bytes", "bcasts"],
    );

    let ((), coll_s) = time(|| {
        minimpi::run(ranks, |comm| {
            read_collective_per_file(comm, &vca).expect("collective read");
        });
    });
    let (_, coll_stats) = minimpi::run_with_stats(ranks, |comm| {
        read_collective_per_file(comm, &vca).expect("collective read")
    });

    let ((), ca_s) = time(|| {
        minimpi::run(ranks, |comm| {
            read_comm_avoiding(comm, &vca).expect("comm-avoiding read");
        });
    });
    let (_, ca_stats) = minimpi::run_with_stats(ranks, |comm| {
        read_comm_avoiding(comm, &vca).expect("comm-avoiding read")
    });

    let (_, rca_s) = time(|| read_rca(&rca_path).expect("rca read"));

    t.row(&[
        "collective-per-file".into(),
        format!("{coll_s:.4}"),
        coll_stats.p2p_messages.to_string(),
        report::bytes(coll_stats.p2p_bytes),
        (coll_stats.bcasts / ranks as u64).to_string(),
    ]);
    t.row(&[
        "communication-avoiding".into(),
        format!("{ca_s:.4}"),
        ca_stats.p2p_messages.to_string(),
        report::bytes(ca_stats.p2p_bytes),
        (ca_stats.bcasts / ranks as u64).to_string(),
    ]);
    t.row(&[
        "RCA (serial reference)".into(),
        format!("{rca_s:.4}"),
        "0".into(),
        "0B".into(),
        "0".into(),
    ]);
    t.print();
    t.write_csv("fig7_measured").expect("csv");

    // Correctness cross-check: both strategies reconstruct the array.
    let serial = vca.read_all_f32().expect("serial read");
    let blocks = minimpi::run(ranks, |comm| read_comm_avoiding(comm, &vca).expect("read"));
    assert_eq!(arrayudf::Array2::vstack(&blocks), serial);

    println!(
        "\ncommunication volume ratio (collective / comm-avoiding): {:.1}x",
        coll_stats.p2p_bytes as f64 / ca_stats.p2p_bytes.max(1) as f64
    );
    assert!(
        ca_stats.p2p_bytes < coll_stats.p2p_bytes,
        "comm-avoiding must move fewer bytes"
    );
    assert_eq!(ca_stats.bcasts, 0, "comm-avoiding issues no broadcasts");

    // ---------------- modeled, paper scale -----------------------------
    let m = Machine::cori_haswell();
    let mut tm = report::Table::new(
        "Figure 7 (modeled, 90 processes on Cori, 700 MB files)",
        &[
            "files",
            "collective(s)",
            "comm-avoid(s)",
            "RCA read(s)",
            "speedup",
        ],
    );
    let mut speedups = Vec::new();
    for &n in &[360u64, 720, 1440, 2880] {
        let f = model_fig7(&m, n, 700 << 20, 90, 8);
        speedups.push(f.collective_per_file_s / f.comm_avoiding_s);
        tm.row(&[
            n.to_string(),
            format!("{:.1}", f.collective_per_file_s),
            format!("{:.1}", f.comm_avoiding_s),
            format!("{:.1}", f.rca_read_s),
            format!("{:.0}x", f.collective_per_file_s / f.comm_avoiding_s),
        ]);
    }
    tm.print();
    tm.write_csv("fig7_modeled").expect("csv");
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("\nmean modeled speedup: {mean:.0}x   [paper: ~37x on average]");
    println!("ordering check: collective-per-file > RCA > communication-avoiding (as in Fig. 7)");
    json_run.finish(&[&t, &tm]);
}
