//! Figure 9 — DASSA vs MATLAB on a single node.
//!
//! The paper runs the interferometry pipeline on one ~700 MB one-minute
//! file with 12 threads in both systems and finds MATLAB up to 16×
//! slower in compute, with similar read/write times. Here the "MATLAB"
//! side is the `mlab` interpreter running the *same* pipeline script on
//! the *same* data (its builtins call the same DSP kernels, so results
//! match numerically); the gap measured is interpretation overhead —
//! the same mechanism behind the paper's gap.

use bench::{datasets, report, time};
use dassa::prelude::*;
use mlab::{Interp, Value};

/// The geophysicists' pipeline as an mlab script (Algorithm 3 in
/// MATLAB clothing).
const PIPELINE: &str = "
[b, a] = butter(4, [0.01 0.4]);
m0 = detrend(data(1, :));
m1 = filtfilt(b, a, m0);
m2 = resample(m1, 1, 2);
mfft = fft(m2);
scores = zeros(1, nch);
for c = 1:nch
  w0 = detrend(data(c, :));
  w1 = filtfilt(b, a, w0);
  w2 = resample(w1, 1, 2);
  wfft = fft(w2);
  scores(c) = abscorr(wfft, mfft);
end
";

fn main() {
    let json_run = report::JsonRun::start("fig9");
    // One "file" scaled down from the paper's 700 MB minute.
    let (channels, hz, minutes) = (48, 100.0, 1);
    let dir = datasets::minute_dataset("fig9", channels, hz, minutes);
    let catalog = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(catalog.entries()).expect("vca");
    let threads = 12usize;
    let params = InterferometryParams {
        band: (0.01, 0.4),
        ..Default::default()
    };

    // ---------------- DASSA ------------------------------------------
    let (data64, dassa_read_s) = time(|| vca.read_all_f64().expect("read"));
    let (dassa_scores, dassa_compute_s) = time(|| {
        interferometry(&data64, &params, &Haee::builder().threads(threads).build())
            .expect("dassa pipeline")
    });
    let out_path = dir.join("fig9.dassa.out.dasf");
    let ((), dassa_write_s) = time(|| {
        let mut w = dasf::Writer::create(&out_path).expect("writer");
        w.write_dataset_f64("/scores", &[dassa_scores.len() as u64], &dassa_scores)
            .expect("write");
        w.finish().expect("finish");
    });

    // ---------------- "MATLAB" (mlab) ---------------------------------
    let (data_m, mlab_read_s) = time(|| vca.read_all_f64().expect("read"));
    let rows = data_m.rows();
    let cols = data_m.cols();
    let mut interp = Interp::new();
    interp.set(
        "data",
        Value::Matrix {
            rows,
            cols,
            data: data_m.into_vec(),
        },
    );
    interp.set("nch", Value::Num(rows as f64));
    let ((), mlab_compute_s) = time(|| interp.run(PIPELINE).expect("mlab pipeline"));
    let mlab_scores = match interp.get("scores").expect("scores exist") {
        Value::Matrix { data, .. } => data.clone(),
        other => panic!("unexpected scores type {other:?}"),
    };
    let out_path_m = dir.join("fig9.mlab.out.dasf");
    let ((), mlab_write_s) = time(|| {
        let mut w = dasf::Writer::create(&out_path_m).expect("writer");
        w.write_dataset_f64("/scores", &[mlab_scores.len() as u64], &mlab_scores)
            .expect("write");
        w.finish().expect("finish");
    });

    // Numerical agreement: same kernels underneath.
    assert_eq!(dassa_scores.len(), mlab_scores.len());
    for (i, (a, b)) in dassa_scores.iter().zip(&mlab_scores).enumerate() {
        assert!(
            (a - b).abs() < 1e-9,
            "score mismatch at channel {i}: {a} vs {b}"
        );
    }

    let mut t = report::Table::new(
        &format!(
            "Figure 9: DASSA vs MATLAB-style baseline ({channels} channels, {threads} threads)"
        ),
        &["system", "read(s)", "compute(s)", "write(s)"],
    );
    t.row(&[
        "DASSA".into(),
        format!("{dassa_read_s:.4}"),
        format!("{dassa_compute_s:.4}"),
        format!("{dassa_write_s:.5}"),
    ]);
    t.row(&[
        "MATLAB (mlab)".into(),
        format!("{mlab_read_s:.4}"),
        format!("{mlab_compute_s:.4}"),
        format!("{mlab_write_s:.5}"),
    ]);
    t.print();
    t.write_csv("fig9").expect("csv");

    let interp_factor = mlab_compute_s / dassa_compute_s;
    println!("\nmeasured single-host interpreter factor: {interp_factor:.2}x");
    println!(
        "interpreter executed {} statements; results agree to 1e-9 ({} channels)",
        interp.statements_executed,
        dassa_scores.len()
    );
    assert!(
        interp_factor > 1.0,
        "compiled pipeline must beat the interpreter"
    );

    // ---------------- modeled 12-core node ----------------------------
    // This host has one core, so the paper's dominant effect is invisible
    // above: DASSA parallelizes the *whole* per-channel pipeline across
    // cores, while "the Matlab codes rely on its multi-thread feature"
    // — threads apply only inside vectorized builtins (Amdahl). Model a
    // 12-core node from the measured single-core numbers:
    //   DASSA(12)  = T / 12                      (whole pipeline parallel)
    //   MATLAB(12) = T·k·(f/12 + (1 − f))        (k = interpreter factor,
    //                 f = fraction of time in multithreadable builtins)
    let cores = 12.0_f64;
    let mut tm = report::Table::new(
        "Figure 9 (modeled 12-core node, from measured single-core times)",
        &[
            "builtin-parallel fraction f",
            "DASSA(s)",
            "MATLAB(s)",
            "speedup",
        ],
    );
    let t1 = dassa_compute_s;
    let mut speedups = Vec::new();
    for f in [0.0_f64, 0.25, 0.5] {
        let dassa12 = t1 / cores;
        let matlab12 = t1 * interp_factor * (f / cores + (1.0 - f));
        speedups.push(matlab12 / dassa12);
        tm.row(&[
            format!("{f:.2}"),
            format!("{dassa12:.4}"),
            format!("{matlab12:.4}"),
            format!("{:.1}x", matlab12 / dassa12),
        ]);
    }
    tm.print();
    tm.write_csv("fig9_modeled").expect("csv");
    println!("\npaper: MATLAB at most 16x slower in compute; read/write comparable.");
    println!(
        "with f = 0.25 the model gives {:.0}x — the paper's band.",
        speedups[1]
    );
    assert!(
        speedups.iter().any(|&s| (8.0..30.0).contains(&s)),
        "modeled speedup should bracket the paper's 16x"
    );
    json_run.finish(&[&t, &tm]);
}
