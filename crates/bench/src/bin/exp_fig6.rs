//! Figure 6 — search and merge cost vs number of files.
//!
//! The paper sweeps up to 2880 files: `das_search` takes ≤ 2 ms, VCA
//! creation ≤ 10 ms, while RCA creation reaches hours (≈ 70,000× slower
//! than VCA on average). This experiment reproduces the sweep at local
//! scale (smaller per-file arrays, same file counts structure) and
//! prints the same three series.

use bench::{datasets, report, time};
use dassa::prelude::*;

fn main() {
    let json_run = report::JsonRun::start("fig6");
    let (channels, hz) = (16, 50.0);
    let max_minutes = 64usize;
    let dir = datasets::minute_dataset("fig6", channels, hz, max_minutes);
    let catalog = FileCatalog::scan(&dir).expect("scan");

    let mut t = report::Table::new(
        "Figure 6: search + create RCA/VCA time vs #files",
        &[
            "files",
            "search(s)",
            "create VCA(s)",
            "create RCA(s)",
            "RCA/VCA",
        ],
    );
    let mut ratios = Vec::new();
    for &n in &[4usize, 8, 16, 32, 64] {
        if n > catalog.len() {
            break;
        }
        // Type-1 search for the first n files (paper: -s <ts> -c <n-1>).
        let (hits, search_s) = time(|| {
            catalog
                .search_range(datasets::START_TS.parse().expect("numeric ts"), n - 1)
                .expect("search")
        });
        assert_eq!(hits.len(), n);

        let vca_path = dir.join(format!("fig6-{n}.vca.dasf"));
        let (_, vca_s) = time(|| {
            Vca::from_entries(&hits)
                .expect("vca")
                .save(&vca_path)
                .expect("save")
        });

        let rca_path = dir.join(format!("fig6-{n}.rca.dasf"));
        let (_, rca_s) = time(|| create_rca(&hits, &rca_path).expect("rca"));

        ratios.push(rca_s / vca_s.max(1e-9));
        t.row(&[
            n.to_string(),
            format!("{search_s:.6}"),
            format!("{vca_s:.6}"),
            format!("{rca_s:.6}"),
            format!("{:.0}x", rca_s / vca_s.max(1e-9)),
        ]);
    }
    t.print();
    let csv = t.write_csv("fig6").expect("csv");
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\nmean RCA/VCA construction ratio: {mean_ratio:.0}x");
    println!("paper: search <= 0.002 s, VCA create <= 0.01 s, mean ratio ~70,000x");
    println!("(local files are much smaller than 700 MB, so the local ratio is smaller;");
    println!(" the shape — VCA flat and tiny, RCA growing linearly with data — is the claim)");
    println!("csv: {}", csv.display());

    assert!(mean_ratio > 10.0, "VCA must beat RCA by a wide margin");
    json_run.finish(&[&t]);
}
