//! Figure 11 — strong and weak scaling of DASSA.
//!
//! Measured part: strong scaling of the full pipeline across simulated
//! MPI ranks on this host — on a single-core machine wall time cannot
//! improve, so the measured series reports *work distribution*
//! (per-rank cell counts stay balanced and total work stays constant),
//! which is the precondition for the paper's ~100 % compute efficiency.
//!
//! Modeled part: the calibrated Cori model over 91 → 1456 nodes
//! (8 threads per node, as in the paper), reporting parallel efficiency
//! of compute and I/O for both strong (1.9 TB fixed) and weak
//! (171 MB/core) scaling.

use bench::{calibrate, datasets, report, time};
use dassa::prelude::*;
use perfmodel::experiments::{model_fig11_strong, model_fig11_weak, Workload};
use perfmodel::Machine;

fn main() {
    let json_run = report::JsonRun::start("fig11");
    // ---------------- measured, local scale ---------------------------
    let (channels, hz, minutes) = (24, 40.0, 4);
    let dir = datasets::minute_dataset("fig11", channels, hz, minutes);
    let catalog = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(catalog.entries()).expect("vca");
    let params = InterferometryParams {
        band: (0.01, 0.4),
        ..Default::default()
    };

    let mut t = report::Table::new(
        "Figure 11 (measured, simulated ranks): work distribution",
        &["ranks", "wall(s)", "max ch/rank", "min ch/rank", "scores"],
    );
    let mut reference: Option<Vec<f64>> = None;
    for ranks in [1usize, 2, 4, 8] {
        let total_ch = vca.channels() as usize;
        let (blocks, wall) = time(|| {
            minimpi::run(ranks, |comm| {
                let local = read_comm_avoiding(comm, &vca).expect("read");
                let local64 = arrayudf::Array2::from_vec(
                    local.rows(),
                    local.cols(),
                    local.as_slice().iter().map(|&v| v as f64).collect(),
                );
                interferometry_dist(
                    comm,
                    &local64,
                    total_ch,
                    &params,
                    &Haee::builder().threads(1).build(),
                )
                .expect("pipeline")
            })
        });
        let sizes: Vec<usize> = blocks.iter().map(|b| b.len()).collect();
        let flat: Vec<f64> = blocks.into_iter().flatten().collect();
        match &reference {
            None => reference = Some(flat.clone()),
            Some(r) => {
                // Identical results at every scale (bitwise).
                assert_eq!(r.len(), flat.len());
                for (a, b) in r.iter().zip(&flat) {
                    assert!(
                        (a - b).abs() < 1e-12,
                        "results must not depend on rank count"
                    );
                }
            }
        }
        t.row(&[
            ranks.to_string(),
            format!("{wall:.3}"),
            sizes.iter().max().expect("nonempty").to_string(),
            sizes.iter().min().expect("nonempty").to_string(),
            flat.len().to_string(),
        ]);
    }
    t.print();
    t.write_csv("fig11_measured").expect("csv");
    println!("(single-core host: wall time cannot drop; balance and result-identity");
    println!(" across rank counts are the measurable scaling preconditions)\n");

    // ---------------- modeled, paper scale -----------------------------
    let cal = calibrate::calibrate();
    let m = Machine::cori_haswell();
    let w = Workload::paper();
    let nodes = [91usize, 182, 364, 728, 1092, 1456];

    let mut ts = report::Table::new(
        "Figure 11 (modeled): strong scaling, 1.9 TB, 8 threads/node",
        &[
            "nodes",
            "compute eff(%)",
            "I/O eff(%)",
            "read(s)",
            "compute(s)",
        ],
    );
    for p in model_fig11_strong(&m, &cal, &w, &nodes, 8) {
        ts.row(&[
            p.nodes.to_string(),
            format!("{:.1}", p.compute_eff),
            format!("{:.1}", p.io_eff),
            format!("{:.1}", p.read_s),
            format!("{:.1}", p.compute_s),
        ]);
    }
    ts.print();
    ts.write_csv("fig11_strong").expect("csv");

    let mut tw = report::Table::new(
        "Figure 11 (modeled): weak scaling, 171 MB/core, 8 threads/node",
        &[
            "nodes",
            "compute eff(%)",
            "I/O eff(%)",
            "read(s)",
            "compute(s)",
        ],
    );
    for p in model_fig11_weak(&m, &cal, 171 << 20, &nodes, 8) {
        tw.row(&[
            p.nodes.to_string(),
            format!("{:.1}", p.compute_eff),
            format!("{:.1}", p.io_eff),
            format!("{:.1}", p.read_s),
            format!("{:.1}", p.compute_s),
        ]);
    }
    tw.print();
    tw.write_csv("fig11_weak").expect("csv");

    // Burst buffer counterfactual — the paper's proposed fix for the
    // I/O decay ("using the Burst Buffer addresses the down trend").
    let bb = Machine::cori_burst_buffer();
    let mut tb = report::Table::new(
        "Figure 11 (modeled): strong scaling on the DataWarp burst buffer",
        &["nodes", "I/O eff Lustre(%)", "I/O eff BurstBuffer(%)"],
    );
    let lustre_pts = model_fig11_strong(&m, &cal, &w, &nodes, 8);
    let bb_pts = model_fig11_strong(&bb, &cal, &w, &nodes, 8);
    for (l, b) in lustre_pts.iter().zip(&bb_pts) {
        tb.row(&[
            l.nodes.to_string(),
            format!("{:.1}", l.io_eff),
            format!("{:.1}", b.io_eff),
        ]);
    }
    tb.print();
    tb.write_csv("fig11_burst_buffer").expect("csv");

    println!("\npaper shape: compute efficiency ~100% throughout; I/O efficiency decays");
    println!("as node counts grow (fixed number of Lustre OSTs absorbs more requests);");
    println!("the burst buffer column shows the paper's proposed remedy working.");
    json_run.finish(&[&t, &ts, &tw, &tb]);
}
