//! Figure 10 — the local-similarity event map.
//!
//! The paper's Figure 10 plots local similarity (Algorithm 2) over a
//! 6-minute record, where two moving vehicles, a persistent vibrating
//! source, and an M4.4 earthquake stand out as bright features. We
//! generate a 6-minute scene with exactly those event types (with known
//! ground truth), run the same algorithm, render the map as ASCII, and
//! score the detection quantitatively — something the real dataset
//! cannot offer.

use bench::{datasets, report};
use dassa::prelude::*;

fn main() {
    let json_run = report::JsonRun::start("fig10");
    let (channels, hz, minutes) = (64, 50.0, 6);
    let dir = datasets::minute_dataset("fig10", channels, hz, minutes);
    let scene = datasets::minute_scene(channels, hz, minutes);
    let catalog = FileCatalog::scan(&dir).expect("scan");
    let vca = Vca::from_entries(catalog.entries()).expect("vca");
    let data = vca.read_all_f64().expect("read");

    let params = LocalSimiParams {
        half_window: 25,
        channel_offset: 1,
        search_half: 12,
        time_stride: 50, // one output sample per second at 50 Hz
    };
    let simi = local_similarity(&data, &params, &Haee::builder().threads(4).build());
    let truth = scene.ground_truth_mask(0.0, data.cols(), params.time_stride);
    assert_eq!(simi.rows(), truth.rows());
    assert_eq!(simi.cols(), truth.cols());

    // Detection scoring: threshold the map, compare with ground truth.
    let threshold = 0.62;
    let (mut tp, mut fp, mut _tn, mut fn_) = (0u64, 0u64, 0u64, 0u64);
    let mut sum_active = 0.0;
    let mut n_active = 0u64;
    let mut sum_quiet = 0.0;
    let mut n_quiet = 0u64;
    for ch in 0..simi.rows() {
        for s in 0..simi.cols() {
            let hot = simi.get(ch, s) >= threshold;
            let truth_hot = truth.get(ch, s);
            match (hot, truth_hot) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, false) => _tn += 1,
                (false, true) => fn_ += 1,
            }
            if truth_hot {
                sum_active += simi.get(ch, s);
                n_active += 1;
            } else {
                sum_quiet += simi.get(ch, s);
                n_quiet += 1;
            }
        }
    }
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let mean_active = sum_active / n_active.max(1) as f64;
    let mean_quiet = sum_quiet / n_quiet.max(1) as f64;

    // ASCII rendering: time downward (like the paper's elapsed-time
    // axis), channels across.
    println!("Figure 10: local-similarity map ('.'<0.5, '+'<thr, '#'>=thr={threshold})");
    println!("channels -->  (elapsed time downward, 1 row per 10 s)");
    for s in (0..simi.cols()).step_by(10) {
        let mut line = String::with_capacity(simi.rows());
        for ch in 0..simi.rows() {
            let v = simi.get(ch, s);
            line.push(if v >= threshold {
                '#'
            } else if v >= 0.5 {
                '+'
            } else {
                '.'
            });
        }
        println!("{line}  t={:>3}s", s);
    }

    // CSV of the full map for external plotting.
    let mut t = report::Table::new(
        "fig10 map (channel, second, similarity, truth)",
        &["channel", "second", "similarity", "event"],
    );
    for ch in 0..simi.rows() {
        for s in 0..simi.cols() {
            t.row(&[
                ch.to_string(),
                s.to_string(),
                format!("{:.4}", simi.get(ch, s)),
                (truth.get(ch, s) as u8).to_string(),
            ]);
        }
    }
    let csv = t.write_csv("fig10_map").expect("csv");

    println!("\ndetection at threshold {threshold}:");
    println!("  recall    = {recall:.2}");
    println!("  precision = {precision:.2}");
    println!("  mean similarity on event cells: {mean_active:.3}");
    println!("  mean similarity on quiet cells: {mean_quiet:.3}");
    println!("csv: {}", csv.display());
    println!("\npaper: two vehicles, a persistent vibrating source, and the M4.4");
    println!("earthquake are distinguishable — here they are injected with known");
    println!("ground truth, so separability is asserted, not eyeballed.");

    assert!(
        mean_active > mean_quiet + 0.1,
        "event cells must score visibly higher ({mean_active:.3} vs {mean_quiet:.3})"
    );
    assert!(
        recall > 0.4,
        "most event cells detected (recall {recall:.2})"
    );
    assert!(
        precision > 0.5,
        "detections mostly real (precision {precision:.2})"
    );
    json_run.finish(&[&t]);
}
