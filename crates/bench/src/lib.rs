//! Shared harness for the experiment binaries (`exp_*`).
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! DASSA paper. This library provides the pieces they share: wall-clock
//! timing, local calibration of the `perfmodel` cost model, standard
//! scaled-down datasets, and tabular/CSV reporting.

pub mod calibrate;
pub mod datasets;
pub mod report;

use std::time::Instant;

/// Time a closure, returning `(result, seconds)`.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Time a closure, repeating until at least `min_time_s` has elapsed,
/// and return the mean seconds per run — a lightweight stand-in for
/// Criterion when an experiment just needs one stable number.
pub fn time_stable<R>(min_time_s: f64, mut f: impl FnMut() -> R) -> f64 {
    let mut runs = 0u32;
    let t0 = Instant::now();
    loop {
        let r = f();
        std::hint::black_box(&r);
        runs += 1;
        let elapsed = t0.elapsed().as_secs_f64();
        if elapsed >= min_time_s || runs >= 1000 {
            return elapsed / runs as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn time_measures_something() {
        let ((), secs) = super::time(|| std::thread::sleep(std::time::Duration::from_millis(5)));
        assert!(secs >= 0.004);
    }

    #[test]
    fn time_stable_returns_mean() {
        let t = super::time_stable(0.01, || 1 + 1);
        assert!(t > 0.0 && t < 0.01);
    }
}
