//! Scene description and rendering.

use crate::events::Event;
use crate::noise::ChannelNoise;
use arrayudf::Array2;

/// A complete synthetic acquisition: array geometry + noise + events.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    /// Number of channels along the fiber (paper: 11,648).
    pub channels: usize,
    /// Samples per second per channel (paper: 500).
    pub sampling_hz: f64,
    /// Channel spacing in metres (paper: 2).
    pub spatial_resolution_m: f64,
    /// RMS of the ambient noise before the spatial profile.
    pub noise_level: f64,
    /// Signal sources.
    pub events: Vec<Event>,
    /// Channels whose output is (near-)dead — broken splices, bad
    /// couplings. Real DAS arrays always have some; QC must find them.
    pub dead_channels: Vec<usize>,
    /// Channels with a clipping/spiking instrument fault.
    pub noisy_channels: Vec<usize>,
    /// Master seed: everything is a pure function of this.
    pub seed: u64,
}

impl Scene {
    /// The paper's acquisition geometry with no events.
    pub fn paper_scale(seed: u64) -> Scene {
        Scene {
            channels: 11648,
            sampling_hz: 500.0,
            spatial_resolution_m: 2.0,
            noise_level: 1.0,
            events: Vec::new(),
            dead_channels: Vec::new(),
            noisy_channels: Vec::new(),
            seed,
        }
    }

    /// A laptop-friendly scaled-down geometry keeping the paper's
    /// structure (the scaling applied throughout local experiments).
    pub fn small(channels: usize, sampling_hz: f64, seed: u64) -> Scene {
        Scene {
            channels,
            sampling_hz,
            spatial_resolution_m: 2.0,
            noise_level: 1.0,
            events: Vec::new(),
            dead_channels: Vec::new(),
            noisy_channels: Vec::new(),
            seed,
        }
    }

    /// The Figure 1b / Figure 10 demonstration scene, scaled: two
    /// vehicles crossing the array in opposite directions, one M4.4-like
    /// earthquake, and a persistent vibration source.
    pub fn demo(channels: usize, sampling_hz: f64, duration_s: f64, seed: u64) -> Scene {
        let ch = channels as f64;
        let mut scene = Scene::small(channels, sampling_hz, seed);
        scene.events = vec![
            Event::Vehicle {
                start_s: 0.05 * duration_s,
                start_channel: 0.0,
                speed_ch_per_s: ch / (duration_s * 0.8),
                amplitude: 3.0,
                width_channels: (ch * 0.01).max(2.0),
                freq_hz: sampling_hz * 0.06,
            },
            Event::Vehicle {
                start_s: 0.25 * duration_s,
                start_channel: ch,
                speed_ch_per_s: -ch / (duration_s * 0.6),
                amplitude: 2.5,
                width_channels: (ch * 0.012).max(2.0),
                freq_hz: sampling_hz * 0.08,
            },
            Event::Earthquake {
                origin_s: 0.55 * duration_s,
                epicenter_channel: ch * 0.35,
                p_speed_ch_per_s: ch / (duration_s * 0.04),
                s_speed_ch_per_s: ch / (duration_s * 0.09),
                // An M4.4 at close range dominates the record (Fig. 1b).
                amplitude: 14.0,
                freq_hz: sampling_hz * 0.02,
            },
            Event::Persistent {
                channel: ch * 0.8,
                width_channels: (ch * 0.008).max(1.5),
                freq_hz: sampling_hz * 0.12,
                amplitude: 1.8,
            },
        ];
        scene
    }

    /// Samples per channel for `seconds` of recording.
    pub fn samples_for(&self, seconds: f64) -> usize {
        (self.sampling_hz * seconds).round() as usize
    }

    /// Render the window starting `t0_s` seconds into the acquisition,
    /// `samples` long, as `(noise, events)` components; the recorded
    /// array is their sum. Ground-truth masks come from the second part.
    pub fn render_components(&self, t0_s: f64, samples: usize) -> (Array2<f32>, Array2<f32>) {
        let start_sample = (t0_s * self.sampling_hz).round() as u64;
        let dt = 1.0 / self.sampling_hz;
        let mut noise = vec![0f32; self.channels * samples];
        let mut signal = vec![0f32; self.channels * samples];
        for ch in 0..self.channels {
            let mut gen = ChannelNoise::new(self.seed, ch, self.noise_level);
            let row = ch * samples;
            let dead = self.dead_channels.contains(&ch);
            let spiky = self.noisy_channels.contains(&ch);
            for s in 0..samples {
                let abs_sample = start_sample + s as u64;
                let t = abs_sample as f64 * dt;
                let n = gen.sample_at(abs_sample);
                if dead {
                    // Instrument floor only: 1000x below ambient.
                    noise[row + s] = (n * 1e-3) as f32;
                    signal[row + s] = 0.0;
                    continue;
                }
                noise[row + s] = if spiky {
                    // Heavy-tailed fault: occasional large spikes.
                    let burst = if (abs_sample.wrapping_mul(2654435761) >> 22).is_multiple_of(97) {
                        100.0 * n.signum()
                    } else {
                        0.0
                    };
                    (n + burst) as f32
                } else {
                    n as f32
                };
                let mut e = 0.0;
                for ev in &self.events {
                    e += ev.sample(t, ch as f64);
                }
                signal[row + s] = e as f32;
            }
        }
        (
            Array2::from_vec(self.channels, samples, noise),
            Array2::from_vec(self.channels, samples, signal),
        )
    }

    /// Render the recorded array (noise + events) for a window.
    pub fn render(&self, t0_s: f64, samples: usize) -> Array2<f32> {
        let (noise, signal) = self.render_components(t0_s, samples);
        let mut data = noise.into_vec();
        for (d, s) in data.iter_mut().zip(signal.as_slice()) {
            *d += s;
        }
        Array2::from_vec(self.channels, samples, data)
    }

    /// Ground-truth event mask for a (possibly strided) window: `true`
    /// where any event is active. Matches the output grid of a
    /// local-similarity map computed with the same `time_stride`.
    pub fn ground_truth_mask(&self, t0_s: f64, samples: usize, time_stride: usize) -> Array2<bool> {
        let dt = 1.0 / self.sampling_hz;
        let cols = samples.div_ceil(time_stride.max(1));
        Array2::from_fn(self.channels, cols, |ch, si| {
            let t = t0_s + (si * time_stride) as f64 * dt;
            self.events.iter().any(|e| e.is_active(t, ch as f64))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scene() -> Scene {
        Scene::demo(32, 100.0, 20.0, 99)
    }

    #[test]
    fn render_is_deterministic() {
        let scene = tiny_scene();
        let a = scene.render(2.0, 300);
        let b = scene.render(2.0, 300);
        assert_eq!(a, b);
    }

    #[test]
    fn windows_are_consistent() {
        // Rendering [0, 400) must agree with [200, 400) on the overlap.
        let scene = tiny_scene();
        let full = scene.render(0.0, 400);
        let tail = scene.render(2.0, 200); // 2 s @ 100 Hz = sample 200
        for ch in 0..scene.channels {
            for s in 0..200 {
                assert_eq!(full.get(ch, 200 + s), tail.get(ch, s), "ch={ch} s={s}");
            }
        }
    }

    #[test]
    fn events_lift_energy_above_noise_floor() {
        let scene = tiny_scene();
        let (noise, signal) = scene.render_components(0.0, scene.samples_for(20.0));
        let energy = |a: &Array2<f32>| {
            a.as_slice()
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>()
        };
        assert!(
            energy(&signal) > 0.5 * energy(&noise),
            "events must be visible"
        );
    }

    #[test]
    fn mask_grid_matches_strided_output() {
        let scene = tiny_scene();
        let mask = scene.ground_truth_mask(0.0, 1000, 25);
        assert_eq!(mask.rows(), 32);
        assert_eq!(mask.cols(), 40);
        let any_active = mask.as_slice().iter().any(|&b| b);
        let any_quiet = mask.as_slice().iter().any(|&b| !b);
        assert!(any_active && any_quiet);
    }

    #[test]
    fn dead_and_noisy_channels_render_as_such() {
        let mut scene = Scene::small(6, 50.0, 9);
        scene.dead_channels = vec![2];
        scene.noisy_channels = vec![4];
        let data = scene.render(0.0, 2000);
        let rms = |ch: usize| {
            (data
                .row(ch)
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>()
                / 2000.0)
                .sqrt()
        };
        let peak = |ch: usize| data.row(ch).iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(rms(2) < 1e-2 * rms(0), "dead channel must be quiet");
        assert!(peak(4) > 10.0 * peak(0), "noisy channel must spike");
    }

    #[test]
    fn no_events_means_pure_noise() {
        let scene = Scene::small(8, 50.0, 5);
        let (noise, signal) = scene.render_components(0.0, 100);
        assert!(signal.as_slice().iter().all(|&v| v == 0.0));
        assert!(noise.as_slice().iter().any(|&v| v != 0.0));
    }
}
