//! `dasgen` — a synthetic DAS acquisition generator.
//!
//! The DASSA paper's dataset is a 1.9 TB, 2880-file recording from a
//! 25 km dark fiber between West Sacramento and Woodland, CA: 11,648
//! channels at 500 Hz, one file per minute, containing traffic noise,
//! a persistent vibration source, and an M4.4 earthquake (Figures 1b
//! and 10). That recording is not redistributable, so this crate
//! synthesizes an acquisition with the same *structure*:
//!
//! * [`Scene`] describes the array geometry and an event list —
//!   [`Event::Vehicle`] (linear moveout streaks), [`Event::Earthquake`]
//!   (P/S wavefronts expanding from an epicenter), and
//!   [`Event::Persistent`] (a stationary vibrating source), all atop
//!   seeded ambient noise;
//! * [`Scene::render`] produces the `channel × time` array for any time
//!   window, and [`Scene::render_components`] additionally returns the
//!   noise-free event field, giving experiments pixel-level ground truth;
//! * [`write_minute_files`] emits standard one-minute DAS files in the
//!   paper's Figure 4 schema, ready for `das_search`, VCA merging, and
//!   the parallel readers.
//!
//! Determinism: everything derives from `Scene::seed`, so experiments
//! regenerate identical data on every run.

mod events;
mod noise;
mod scene;
mod writer;

pub use events::Event;
pub use scene::Scene;
pub use writer::{write_minute_files, write_minute_files_with_codec};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_scene_constructs() {
        // The real acquisition's parameters (not rendered here — just the
        // arithmetic).
        let scene = Scene::paper_scale(42);
        assert_eq!(scene.channels, 11648);
        assert_eq!(scene.sampling_hz, 500.0);
        let samples_per_minute = (scene.sampling_hz * 60.0) as usize;
        assert_eq!(samples_per_minute, 30000);
    }
}
