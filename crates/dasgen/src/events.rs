//! Event models: the signal sources visible in the paper's Figures 1b/10.

/// One signal source in a synthetic acquisition.
///
/// All times are seconds from the scene origin; channel positions are
/// fractional channel indices (the fiber coordinate divided by the
/// spatial resolution).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A vehicle driving along the fiber: a localized vibration whose
    /// position moves linearly, tracing the diagonal streaks of
    /// Figure 10.
    Vehicle {
        /// Time the vehicle passes `start_channel`.
        start_s: f64,
        /// Channel position at `start_s`.
        start_channel: f64,
        /// Speed in channels per second (signed: direction of travel).
        speed_ch_per_s: f64,
        /// Peak strain amplitude.
        amplitude: f64,
        /// Spatial footprint (standard deviation, in channels).
        width_channels: f64,
        /// Dominant vibration frequency in Hz.
        freq_hz: f64,
    },
    /// An earthquake: P and S wavefronts expanding from an epicenter
    /// channel with distinct velocities, the V-shaped moveout of
    /// Figure 10.
    Earthquake {
        /// Origin time.
        origin_s: f64,
        /// Channel nearest the epicenter.
        epicenter_channel: f64,
        /// P-wave apparent velocity along the fiber, channels/second.
        p_speed_ch_per_s: f64,
        /// S-wave apparent velocity (slower, stronger).
        s_speed_ch_per_s: f64,
        /// Peak strain amplitude of the S arrival.
        amplitude: f64,
        /// Dominant wavelet frequency in Hz.
        freq_hz: f64,
    },
    /// A persistent vibrating installation (pump, turbine): continuous
    /// narrowband energy on a fixed channel band — the "persistent
    /// vibrating" column of Figure 10.
    Persistent {
        /// Center channel of the source.
        channel: f64,
        /// Spatial footprint (standard deviation, channels).
        width_channels: f64,
        /// Vibration frequency in Hz.
        freq_hz: f64,
        /// Amplitude.
        amplitude: f64,
    },
}

/// A Ricker (Mexican-hat) wavelet with peak frequency `f` at time `t`
/// relative to its center — the standard seismic source wavelet.
fn ricker(t: f64, f: f64) -> f64 {
    let a = std::f64::consts::PI * f * t;
    let a2 = a * a;
    (1.0 - 2.0 * a2) * (-a2).exp()
}

impl Event {
    /// Strain contribution of this event at absolute time `t_s` on
    /// fractional channel `ch`.
    pub fn sample(&self, t_s: f64, ch: f64) -> f64 {
        match *self {
            Event::Vehicle {
                start_s,
                start_channel,
                speed_ch_per_s,
                amplitude,
                width_channels,
                freq_hz,
            } => {
                let pos = start_channel + speed_ch_per_s * (t_s - start_s);
                let d = (ch - pos) / width_channels;
                if d.abs() > 6.0 {
                    return 0.0;
                }
                let envelope = (-0.5 * d * d).exp();
                amplitude * envelope * (2.0 * std::f64::consts::PI * freq_hz * t_s).sin()
            }
            Event::Earthquake {
                origin_s,
                epicenter_channel,
                p_speed_ch_per_s,
                s_speed_ch_per_s,
                amplitude,
                freq_hz,
            } => {
                let dist = (ch - epicenter_channel).abs();
                let dt = t_s - origin_s;
                if dt <= 0.0 {
                    return 0.0;
                }
                // Geometric spreading ~ 1/sqrt(r).
                let spread = 1.0 / (1.0 + dist).sqrt();
                let p_arr = dist / p_speed_ch_per_s;
                let s_arr = dist / s_speed_ch_per_s;
                let p = 0.4 * amplitude * spread * ricker(dt - p_arr, freq_hz * 1.6);
                let s = amplitude * spread * ricker(dt - s_arr, freq_hz);
                // A short coda after the S arrival.
                let coda = if dt > s_arr {
                    0.25 * amplitude
                        * spread
                        * (-(dt - s_arr) / 1.5).exp()
                        * (2.0 * std::f64::consts::PI * freq_hz * 0.7 * dt).sin()
                } else {
                    0.0
                };
                p + s + coda
            }
            Event::Persistent {
                channel,
                width_channels,
                freq_hz,
                amplitude,
            } => {
                let d = (ch - channel) / width_channels;
                if d.abs() > 6.0 {
                    return 0.0;
                }
                amplitude
                    * (-0.5 * d * d).exp()
                    * (2.0 * std::f64::consts::PI * freq_hz * t_s).sin()
            }
        }
    }

    /// Is this event expected to be energetic at `(t_s, ch)`? Used to
    /// build ground-truth masks for detection scoring.
    pub fn is_active(&self, t_s: f64, ch: f64) -> bool {
        match *self {
            Event::Vehicle {
                start_s,
                start_channel,
                speed_ch_per_s,
                width_channels,
                ..
            } => {
                let pos = start_channel + speed_ch_per_s * (t_s - start_s);
                (ch - pos).abs() <= 2.0 * width_channels
            }
            Event::Earthquake {
                origin_s,
                epicenter_channel,
                p_speed_ch_per_s,
                s_speed_ch_per_s,
                freq_hz,
                ..
            } => {
                // Count only the energetic part: around the P and S
                // arrivals, not the long weak coda.
                let dist = (ch - epicenter_channel).abs();
                let dt = t_s - origin_s;
                let p_arr = dist / p_speed_ch_per_s;
                let s_arr = dist / s_speed_ch_per_s;
                let half = 1.2 / freq_hz;
                (dt >= p_arr - half && dt <= p_arr + half)
                    || (dt >= s_arr - half && dt <= s_arr + 2.0)
            }
            Event::Persistent {
                channel,
                width_channels,
                ..
            } => (ch - channel).abs() <= 2.0 * width_channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ricker_peak_at_zero() {
        assert!((ricker(0.0, 5.0) - 1.0).abs() < 1e-12);
        assert!(ricker(1.0, 5.0).abs() < 1e-6, "decays quickly");
    }

    #[test]
    fn vehicle_moves_along_fiber() {
        let v = Event::Vehicle {
            start_s: 0.0,
            start_channel: 100.0,
            speed_ch_per_s: 10.0,
            amplitude: 1.0,
            width_channels: 2.0,
            freq_hz: 12.3,
        };
        // Strongest response follows the moving position.
        let env = |t: f64, ch: f64| {
            // Peak of |sample| over one vibration period.
            (0..40)
                .map(|i| v.sample(t + i as f64 / 40.0 / 12.3, ch).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(env(0.0, 100.0) > 0.9);
        assert!(env(5.0, 150.0) > 0.9, "at t=5 the car is at channel 150");
        assert!(env(5.0, 100.0) < 0.01, "far behind the car");
    }

    #[test]
    fn earthquake_arrivals_obey_moveout() {
        let q = Event::Earthquake {
            origin_s: 1.0,
            epicenter_channel: 0.0,
            p_speed_ch_per_s: 100.0,
            s_speed_ch_per_s: 50.0,
            amplitude: 1.0,
            freq_hz: 4.0,
        };
        // Quiet before the origin everywhere.
        assert_eq!(q.sample(0.5, 10.0), 0.0);
        // At channel 100: P arrives at t = 1 + 1 = 2 s, S at 1 + 2 = 3 s.
        let sample_near = |t: f64| {
            (0..20)
                .map(|i| q.sample(t + (i as f64 - 10.0) * 0.01, 100.0).abs())
                .fold(0.0f64, f64::max)
        };
        let before = sample_near(1.5);
        let at_p = sample_near(2.0);
        let at_s = sample_near(3.0);
        assert!(at_p > 5.0 * before.max(1e-9), "P arrival visible");
        assert!(at_s > at_p, "S stronger than P");
    }

    #[test]
    fn earthquake_amplitude_decays_with_distance() {
        let q = Event::Earthquake {
            origin_s: 0.0,
            epicenter_channel: 0.0,
            p_speed_ch_per_s: 100.0,
            s_speed_ch_per_s: 50.0,
            amplitude: 1.0,
            freq_hz: 4.0,
        };
        let peak_at = |ch: f64| {
            let s_arr = ch / 50.0;
            (0..60)
                .map(|i| q.sample(s_arr + (i as f64 - 30.0) * 0.005, ch).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(peak_at(10.0) > peak_at(200.0));
    }

    #[test]
    fn persistent_source_is_stationary_and_narrow() {
        let p = Event::Persistent {
            channel: 500.0,
            width_channels: 3.0,
            freq_hz: 30.0,
            amplitude: 0.8,
        };
        let peak = |t: f64, ch: f64| {
            (0..40)
                .map(|i| p.sample(t + i as f64 / 40.0 / 30.0, ch).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(peak(0.0, 500.0) > 0.7);
        assert!(peak(100.0, 500.0) > 0.7, "still there much later");
        assert!(peak(0.0, 600.0) < 1e-6, "spatially confined");
    }

    #[test]
    fn activity_masks_cover_signal() {
        let v = Event::Vehicle {
            start_s: 0.0,
            start_channel: 50.0,
            speed_ch_per_s: 5.0,
            amplitude: 1.0,
            width_channels: 2.0,
            freq_hz: 10.0,
        };
        // Wherever the sample is non-negligible, the mask must be true.
        for t in [0.0, 3.0, 7.5] {
            for ch in 0..120 {
                if v.sample(t, ch as f64).abs() > 0.05 {
                    assert!(v.is_active(t, ch as f64), "mask misses t={t} ch={ch}");
                }
            }
        }
    }
}
