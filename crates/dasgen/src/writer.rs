//! Emit a synthetic acquisition as standard one-minute DAS files.

use crate::scene::Scene;
use dassa::prelude::*;
use std::path::{Path, PathBuf};

/// Write `minutes` consecutive one-minute DAS files for `scene` into
/// `dir`, starting at `start` (a `yymmddhhmmss` string). Returns the
/// created paths in time order.
///
/// This mirrors the paper's acquisition: "these data are stored in 1440
/// files per day and each of them contains a 1-minute recording".
pub fn write_minute_files(
    scene: &Scene,
    dir: &Path,
    start: &str,
    minutes: usize,
) -> dassa::Result<Vec<PathBuf>> {
    write_minute_files_with_codec(scene, dir, start, minutes, dasf::Codec::Raw)
}

/// [`write_minute_files`] with an on-disk codec for the amplitude
/// arrays (`raw`, `shuffle-lz`, or `quant:<bound>`).
pub fn write_minute_files_with_codec(
    scene: &Scene,
    dir: &Path,
    start: &str,
    minutes: usize,
    codec: dasf::Codec,
) -> dassa::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir).map_err(dassa::DassaError::Io)?;
    let t0 = Timestamp::parse(start)?;
    let samples_per_minute = scene.samples_for(60.0);
    let mut paths = Vec::with_capacity(minutes);
    for m in 0..minutes {
        let ts = t0.add_minutes(m as u64);
        let data = scene.render(m as f64 * 60.0, samples_per_minute);
        let meta = DasFileMeta {
            sampling_hz: scene.sampling_hz.round() as i64,
            spatial_resolution_m: scene.spatial_resolution_m,
            timestamp: ts,
            channels: scene.channels as u64,
            samples: samples_per_minute as u64,
        };
        let path = dir.join(das_file_name(&ts));
        dassa::dass::write_das_file_with_codec(&path, &meta, &data, None, codec)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minute_files_form_a_contiguous_vca() {
        let scene = Scene::demo(6, 10.0, 120.0, 4);
        let dir = std::env::temp_dir().join("dasgen-writer-test");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_minute_files(&scene, &dir, "170728224510", 3).unwrap();
        assert_eq!(paths.len(), 3);

        let cat = FileCatalog::scan(&dir).unwrap();
        assert_eq!(cat.len(), 3);
        let vca = Vca::from_entries(cat.entries()).unwrap();
        assert!(vca.is_contiguous());
        assert_eq!(vca.channels(), 6);
        assert_eq!(vca.total_samples(), 3 * 600);

        // The VCA read reproduces the scene rendering exactly.
        let stored = vca.read_all_f32().unwrap();
        let direct = scene.render(0.0, 1800);
        assert_eq!(stored, direct);
    }

    #[test]
    fn file_content_is_per_minute_window() {
        let scene = Scene::demo(4, 10.0, 60.0, 8);
        let dir = std::env::temp_dir().join("dasgen-writer-window");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_minute_files(&scene, &dir, "170728224510", 2).unwrap();
        let f = dasf::File::open(&paths[1]).unwrap();
        let raw = f.read_f32(dassa::dass::DATASET_PATH).unwrap();
        let expect = scene.render(60.0, 600);
        assert_eq!(raw, expect.as_slice());
    }
}
