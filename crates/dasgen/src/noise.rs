//! Ambient noise synthesis.
//!
//! Real DAS records are dominated by broadband ambient noise whose level
//! varies along the cable (Figure 1a: highways, bridges, quiet farmland).
//! We synthesize per-channel Gaussian noise with a smooth spatial level
//! profile and mild temporal correlation (AR(1)), all seeded.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-channel noise state: deterministic from `(seed, channel)` so any
/// time window of any channel can be rendered independently.
pub struct ChannelNoise {
    rng: StdRng,
    level: f64,
    /// AR(1) coefficient for temporal colouring.
    rho: f64,
    state: f64,
    /// Absolute sample index the state currently corresponds to.
    cursor: u64,
}

/// Smooth pseudo-random spatial level profile in `[0.5, 1.5]`.
pub fn level_profile(seed: u64, channel: usize) -> f64 {
    // Sum of a few incommensurate sinusoids keyed by the seed.
    let x = channel as f64;
    let s = (seed % 997) as f64;
    let v = 0.5
        * ((x * 0.013 + s).sin()
            + (x * 0.0037 + 2.0 * s).sin() * 0.6
            + (x * 0.00091 + 3.0 * s).sin() * 0.4);
    1.0 + 0.5 * (v / 1.0).clamp(-1.0, 1.0)
}

impl ChannelNoise {
    /// Noise generator for one channel.
    pub fn new(seed: u64, channel: usize, base_level: f64) -> ChannelNoise {
        let mixed = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((channel as u64).wrapping_mul(0xBF58476D1CE4E5B9));
        ChannelNoise {
            rng: StdRng::seed_from_u64(mixed),
            level: base_level * level_profile(seed, channel),
            rho: 0.6,
            state: 0.0,
            cursor: 0,
        }
    }

    /// Standard normal via Box–Muller (rand 0.8 has no Normal distr).
    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// The noise sample at absolute sample index `t` (must be requested
    /// in non-decreasing order; skipped samples are advanced through so
    /// a window's noise does not depend on where rendering started).
    pub fn sample_at(&mut self, t: u64) -> f64 {
        debug_assert!(t >= self.cursor, "noise must be drawn forward");
        while self.cursor <= t {
            let innovation = self.gauss();
            self.state = self.rho * self.state + (1.0 - self.rho * self.rho).sqrt() * innovation;
            self.cursor += 1;
        }
        self.level * self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_channel() {
        let mut a = ChannelNoise::new(7, 3, 1.0);
        let mut b = ChannelNoise::new(7, 3, 1.0);
        for t in 0..100 {
            assert_eq!(a.sample_at(t), b.sample_at(t));
        }
        let mut c = ChannelNoise::new(8, 3, 1.0);
        let different = (0..100).any(|t| {
            let mut a2 = ChannelNoise::new(7, 3, 1.0);
            a2.sample_at(t) != c.sample_at(t)
        });
        assert!(different, "different seeds must differ");
    }

    #[test]
    fn skipping_matches_stepping() {
        // Rendering a window starting at t=50 must agree with a
        // generator that walked 0..50 first.
        let mut stepper = ChannelNoise::new(3, 0, 1.0);
        let walked: Vec<f64> = (0..60).map(|t| stepper.sample_at(t)).collect();
        let mut jumper = ChannelNoise::new(3, 0, 1.0);
        assert_eq!(jumper.sample_at(50), walked[50]);
        assert_eq!(jumper.sample_at(59), walked[59]);
    }

    #[test]
    fn statistics_are_roughly_standard() {
        let mut n = ChannelNoise::new(11, 5, 1.0);
        let level = level_profile(11, 5);
        let xs: Vec<f64> = (0..20000).map(|t| n.sample_at(t) / level).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "variance {var}");
        // AR(1) lag-1 autocorrelation ≈ rho.
        let ac1: f64 = xs.windows(2).map(|w| w[0] * w[1]).sum::<f64>() / (xs.len() - 1) as f64;
        assert!(
            (ac1 / var - 0.6).abs() < 0.1,
            "lag-1 autocorr {}",
            ac1 / var
        );
    }

    #[test]
    fn level_profile_is_bounded_and_smooth() {
        for seed in [0u64, 1, 999] {
            for ch in 0..2000 {
                let l = level_profile(seed, ch);
                assert!((0.5..=1.5).contains(&l));
                if ch > 0 {
                    let prev = level_profile(seed, ch - 1);
                    assert!((l - prev).abs() < 0.02, "jump at channel {ch}");
                }
            }
        }
    }
}
