//! `das_gen` — generate a synthetic DAS acquisition on disk.
//!
//! ```text
//! das_gen -d <dir> [-c <channels>] [-r <hz>] [-m <minutes>]
//!         [-s <start_ts>] [--seed <n>] [--quiet-scene]
//! ```
//!
//! Writes one-minute files in the paper's Figure 4 schema containing the
//! demo event inventory (two vehicles, an earthquake, a persistent
//! vibration source) unless `--quiet-scene` asks for pure noise.

use dasgen::{write_minute_files_with_codec, Scene};
use std::process::ExitCode;

struct Args {
    dir: String,
    channels: usize,
    hz: f64,
    minutes: usize,
    start: String,
    seed: u64,
    quiet: bool,
    codec: dasf::Codec,
}

fn usage() -> ! {
    eprintln!(
        "usage: das_gen -d <dir> [-c <channels>=32] [-r <hz>=50] [-m <minutes>=6]\n\
         \u{20}                [-s <yymmddhhmmss>=170728224510] [--seed <n>=1] [--quiet-scene]\n\
         \u{20}                [--codec raw|shuffle-lz|quant:<bound>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        dir: String::new(),
        channels: 32,
        hz: 50.0,
        minutes: 6,
        start: "170728224510".to_string(),
        seed: 1,
        quiet: false,
        codec: dasf::Codec::Raw,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "-d" | "--dir" => args.dir = value("-d"),
            "-c" | "--channels" => args.channels = value("-c").parse().unwrap_or_else(|_| usage()),
            "-r" | "--rate" => args.hz = value("-r").parse().unwrap_or_else(|_| usage()),
            "-m" | "--minutes" => args.minutes = value("-m").parse().unwrap_or_else(|_| usage()),
            "-s" | "--start" => args.start = value("-s"),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--codec" => {
                let v = value("--codec");
                args.codec = dasf::Codec::parse(&v).unwrap_or_else(|| {
                    eprintln!("--codec expects raw, shuffle-lz, or quant:<bound>, got {v:?}");
                    usage()
                });
            }
            "--quiet-scene" => args.quiet = true,
            "-h" | "--help" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    if args.dir.is_empty() {
        eprintln!("-d <dir> is required");
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let scene = if args.quiet {
        Scene::small(args.channels, args.hz, args.seed)
    } else {
        Scene::demo(
            args.channels,
            args.hz,
            args.minutes as f64 * 60.0,
            args.seed,
        )
    };
    match write_minute_files_with_codec(
        &scene,
        std::path::Path::new(&args.dir),
        &args.start,
        args.minutes,
        args.codec,
    ) {
        Ok(paths) => {
            let bytes: u64 = paths
                .iter()
                .filter_map(|p| std::fs::metadata(p).ok())
                .map(|m| m.len())
                .sum();
            println!(
                "wrote {} files ({} channels x {} samples each, {:.1} MiB total, codec {}) to {}",
                paths.len(),
                scene.channels,
                scene.samples_for(60.0),
                bytes as f64 / (1 << 20) as f64,
                args.codec.label(),
                args.dir
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("das_gen: {e}");
            ExitCode::FAILURE
        }
    }
}
