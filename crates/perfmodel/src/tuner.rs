//! Automatic system-setting selection — the paper's future-work item:
//! *"how to automatically select system settings, such as the number of
//! nodes, to run the analysis code is another topic we will explore."*
//!
//! Given a machine description, calibrated kernel rates, and a workload,
//! the tuner sweeps node counts and execution layouts through the cost
//! model and recommends a configuration for the chosen objective.

use crate::experiments::{model_fig8, Fig8Point, Layout, Workload};
use crate::machine::{Calibration, Machine};

/// What the user wants to optimize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Fastest wall-clock time, cost be damned.
    MinTime,
    /// Fewest node-hours (time × nodes) — the allocation-budget view.
    MinNodeHours,
    /// Fastest time subject to parallel efficiency ≥ the given fraction
    /// of the smallest viable run — the paper's "best efficiency at 364
    /// nodes" trade-off, automated.
    MinTimeWithEfficiency(f64),
}

/// A tuner recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Chosen node count.
    pub nodes: usize,
    /// Chosen layout.
    pub layout: Layout,
    /// Predicted breakdown at that configuration.
    pub predicted: Fig8Point,
    /// Every configuration considered (for reporting).
    pub considered: Vec<Fig8Point>,
}

/// Sweep `node_choices` × {hybrid, pure-MPI} and pick the best viable
/// configuration for `objective`.
///
/// Out-of-memory configurations are discarded (the tuner's first job is
/// to avoid the paper's 91-node pure-MPI crash). Returns `None` when no
/// configuration fits.
pub fn recommend(
    machine: &Machine,
    cal: &Calibration,
    workload: &Workload,
    node_choices: &[usize],
    cores_per_node: usize,
    objective: Objective,
) -> Option<Recommendation> {
    let mut considered = Vec::new();
    for &nodes in node_choices {
        for layout in [
            Layout::Hybrid {
                threads: cores_per_node,
            },
            Layout::PureMpi {
                procs_per_node: cores_per_node,
            },
        ] {
            considered.push(model_fig8(machine, cal, workload, nodes, layout));
        }
    }
    let viable: Vec<&Fig8Point> = considered.iter().filter(|p| !p.oom).collect();
    if viable.is_empty() {
        return None;
    }

    // Efficiency baseline: the smallest viable node count.
    let base = viable
        .iter()
        .min_by_key(|p| p.nodes)
        .expect("nonempty viable set");
    let efficiency = |p: &Fig8Point| -> f64 {
        (base.total_s() * base.nodes as f64) / (p.total_s() * p.nodes as f64)
    };

    let best = match objective {
        Objective::MinTime => viable
            .iter()
            .min_by(|a, b| a.total_s().partial_cmp(&b.total_s()).expect("finite")),
        Objective::MinNodeHours => viable.iter().min_by(|a, b| {
            (a.total_s() * a.nodes as f64)
                .partial_cmp(&(b.total_s() * b.nodes as f64))
                .expect("finite")
        }),
        Objective::MinTimeWithEfficiency(min_eff) => viable
            .iter()
            .filter(|p| efficiency(p) >= min_eff)
            .min_by(|a, b| a.total_s().partial_cmp(&b.total_s()).expect("finite")),
    }?;

    Some(Recommendation {
        nodes: best.nodes,
        layout: best.layout,
        predicted: **best,
        considered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Machine, Calibration, Workload) {
        (
            Machine::cori_haswell(),
            Calibration::default(),
            Workload::paper(),
        )
    }

    const NODES: &[usize] = &[91, 182, 364, 728, 1456];

    #[test]
    fn never_recommends_an_oom_configuration() {
        let (m, cal, w) = setup();
        for obj in [
            Objective::MinTime,
            Objective::MinNodeHours,
            Objective::MinTimeWithEfficiency(0.5),
        ] {
            let r = recommend(&m, &cal, &w, NODES, 16, obj).expect("viable configs exist");
            assert!(!r.predicted.oom, "{obj:?} picked an OOM config");
        }
    }

    #[test]
    fn prefers_hybrid_layout() {
        // Hybrid dominates pure MPI at every scale in this model (same
        // compute, less I/O, less memory) — the tuner must notice.
        let (m, cal, w) = setup();
        let r = recommend(&m, &cal, &w, NODES, 16, Objective::MinTime).expect("viable");
        assert!(matches!(r.layout, Layout::Hybrid { .. }));
    }

    #[test]
    fn node_hours_objective_picks_fewer_nodes_than_min_time() {
        let (m, cal, w) = setup();
        let fast = recommend(&m, &cal, &w, NODES, 16, Objective::MinTime).expect("viable");
        let cheap = recommend(&m, &cal, &w, NODES, 16, Objective::MinNodeHours).expect("viable");
        assert!(
            cheap.nodes <= fast.nodes,
            "budget objective must not pick more nodes ({} vs {})",
            cheap.nodes,
            fast.nodes
        );
        // And it really is cheaper in node-seconds.
        assert!(
            cheap.predicted.total_s() * cheap.nodes as f64
                <= fast.predicted.total_s() * fast.nodes as f64 + 1e-9
        );
    }

    #[test]
    fn efficiency_constraint_caps_the_node_count() {
        let (m, cal, w) = setup();
        let unconstrained = recommend(&m, &cal, &w, NODES, 16, Objective::MinTime).expect("viable");
        let constrained = recommend(
            &m,
            &cal,
            &w,
            NODES,
            16,
            Objective::MinTimeWithEfficiency(0.8),
        )
        .expect("some config meets 80% efficiency");
        assert!(constrained.nodes <= unconstrained.nodes);
    }

    #[test]
    fn none_when_nothing_fits() {
        let (mut m, cal, mut w) = setup();
        m.mem_per_node = 1 << 30; // 1 GiB nodes
        w.data_bytes = 100 << 40; // 100 TiB
        assert!(recommend(&m, &cal, &w, NODES, 16, Objective::MinTime).is_none());
    }

    #[test]
    fn considered_list_covers_the_sweep() {
        let (m, cal, w) = setup();
        let r = recommend(&m, &cal, &w, &[91, 182], 16, Objective::MinTime).expect("viable");
        assert_eq!(r.considered.len(), 4, "2 node counts x 2 layouts");
    }
}
