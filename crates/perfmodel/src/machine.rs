//! Machine description and primitive cost functions.

/// Parameters of a Cori-class machine: nodes, interconnect, Lustre.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// CPU cores per node (Cori Haswell: 32).
    pub cores_per_node: usize,
    /// Usable memory per node in bytes (Cori Haswell: 128 GB).
    pub mem_per_node: u64,
    /// Number of Lustre object storage targets (Cori scratch: 248).
    pub n_ost: usize,
    /// Streaming bandwidth per OST, bytes/s (aggregate ≈ 700 GB/s).
    pub ost_bandwidth: f64,
    /// Small-I/O operations per second each OST sustains.
    pub ost_iops: f64,
    /// Metadata cost of opening one file, seconds.
    pub file_open_s: f64,
    /// Point-to-point message latency (α), seconds.
    pub net_latency: f64,
    /// Per-node network injection bandwidth (β⁻¹), bytes/s.
    pub injection_bandwidth: f64,
    /// Per-node Lustre *client* throughput, bytes/s — far below the
    /// network injection rate in practice.
    pub client_io_bandwidth: f64,
    /// Contention exponent: how sharply effective I/O degrades once the
    /// outstanding-request count exceeds what the OSTs absorb.
    pub contention_power: f64,
    /// Per-core cost of decoding one raw byte of codec-compressed DASF
    /// payload (shuffle-LZ decode + unshuffle), nanoseconds. Storage
    /// compression trades read bytes for this CPU time; the strategy
    /// model charges it wherever decoded granules are produced.
    pub decode_ns_per_byte: f64,
}

impl Machine {
    /// Cori Haswell partition + its Lustre scratch, as described in the
    /// paper (§VI) and NERSC system documentation.
    pub fn cori_haswell() -> Machine {
        Machine {
            cores_per_node: 32,
            mem_per_node: 128 << 30,
            n_ost: 248,
            ost_bandwidth: 2.8e9, // ≈ 700 GB/s aggregate
            ost_iops: 15_000.0,
            file_open_s: 2.0e-3,
            net_latency: 1.5e-6,        // Aries interconnect
            injection_bandwidth: 10e9,  // ≈ 10 GB/s per node
            client_io_bandwidth: 2.5e9, // per-node Lustre client limit
            contention_power: 0.6,
            decode_ns_per_byte: 0.25, // ≈ 4 GB/s/core shuffle-LZ decode
        }
    }

    /// Cori's Cray DataWarp burst buffer, the paper's proposed remedy
    /// for the I/O-efficiency decay: "The Burst Buffer-based storage
    /// system has high IOPS than disk system. Hence, using the Burst
    /// Buffer addresses the down trend of the parallel efficiency for
    /// I/O." SSD-backed: ~an order of magnitude more aggregate
    /// bandwidth per target, two orders more IOPS, and far gentler
    /// degradation under request storms.
    pub fn cori_burst_buffer() -> Machine {
        Machine {
            n_ost: 288,            // DataWarp server nodes
            ost_bandwidth: 5.9e9,  // ≈ 1.7 TB/s aggregate
            ost_iops: 1_000_000.0, // SSD IOPS per server
            file_open_s: 0.3e-3,
            contention_power: 0.15, // SSDs shrug off concurrency
            ..Machine::cori_haswell()
        }
    }

    /// Aggregate Lustre streaming bandwidth.
    pub fn total_ost_bandwidth(&self) -> f64 {
        self.n_ost as f64 * self.ost_bandwidth
    }

    /// Effective aggregate read bandwidth for `concurrent` simultaneous
    /// requests from `nodes` nodes: client-side injection limits at
    /// small scale, OST saturation at large scale, and a contention
    /// penalty once outstanding requests outnumber the OSTs — the
    /// mechanism behind the I/O-efficiency decay of Figure 11.
    pub fn effective_read_bandwidth(&self, nodes: usize, concurrent: usize) -> f64 {
        let client_limit = nodes as f64 * self.client_io_bandwidth;
        let server_limit = self.total_ost_bandwidth();
        let raw = client_limit.min(server_limit);
        let overload = concurrent as f64 / self.n_ost as f64;
        if overload <= 1.0 {
            raw
        } else {
            raw / overload.powf(self.contention_power)
        }
    }

    /// Time to read `total_bytes` split into `n_requests` independent
    /// requests issued from `nodes` nodes with `concurrent` requests
    /// outstanding at once (≈ the number of reading processes):
    /// per-request IOPS cost plus streaming at the effective bandwidth.
    pub fn read_time(
        &self,
        nodes: usize,
        concurrent: usize,
        n_requests: u64,
        total_bytes: u64,
    ) -> f64 {
        if total_bytes == 0 && n_requests == 0 {
            return 0.0;
        }
        let iops_capacity = self.n_ost as f64 * self.ost_iops;
        let iops_time = n_requests as f64 / iops_capacity;
        let bw = self.effective_read_bandwidth(nodes, concurrent);
        iops_time + total_bytes as f64 / bw
    }

    /// Time for `n_opens` file-open metadata operations (serialized on
    /// the metadata server beyond a modest concurrency).
    pub fn open_time(&self, n_opens: u64) -> f64 {
        n_opens as f64 * self.file_open_s
    }

    /// α–β cost of a binomial-tree broadcast of `bytes` across `p`
    /// processes.
    pub fn bcast_time(&self, p: usize, bytes: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (p as f64).log2().ceil();
        rounds * (self.net_latency + bytes as f64 / self.injection_bandwidth)
    }

    /// α–β cost of a pairwise all-to-all where each process exchanges
    /// `bytes_per_rank` in total: p−1 latency rounds, payload limited by
    /// injection bandwidth, with all node pairs transferring
    /// concurrently (the communication-avoiding argument of §IV-B).
    pub fn alltoallv_time(&self, p: usize, bytes_per_rank: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64 - 1.0) * self.net_latency + bytes_per_rank as f64 / self.injection_bandwidth
    }

    /// Time for one core to decode `raw_bytes` of compressed payload
    /// back to raw samples.
    pub fn decode_time(&self, raw_bytes: u64) -> f64 {
        raw_bytes as f64 * self.decode_ns_per_byte * 1e-9
    }

    /// Would a per-node memory footprint of `bytes` exceed capacity?
    pub fn oom(&self, bytes: u64) -> bool {
        bytes > self.mem_per_node
    }
}

/// Locally measured rates that anchor the model's absolute scale.
///
/// The benchmark harness measures these on the host (see
/// `bench/src/calibrate.rs`) and passes them in; the defaults are
/// representative laptop numbers so the model is usable standalone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Interferometry-pipeline compute throughput, bytes of raw DAS data
    /// processed per second per core.
    pub compute_bytes_per_s_per_core: f64,
    /// Local-similarity throughput, bytes/s/core.
    pub localsim_bytes_per_s_per_core: f64,
    /// Write throughput for the (small) result arrays, bytes/s.
    pub write_bytes_per_s: f64,
    /// Measured codec decode cost, nanoseconds per raw byte — anchors
    /// [`Machine::decode_ns_per_byte`] to this host instead of the
    /// Cori-class estimate.
    pub decode_ns_per_byte: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            compute_bytes_per_s_per_core: 25.0e6,
            localsim_bytes_per_s_per_core: 8.0e6,
            write_bytes_per_s: 500.0e6,
            decode_ns_per_byte: 0.25,
        }
    }
}

/// How many input bytes the calibration probes pushed through each
/// pipeline — the one piece of information the metrics snapshot cannot
/// carry (it times the pipelines but does not know their input sizes).
#[derive(Debug, Clone, Copy, Default)]
pub struct CalibrationWorkload {
    /// Raw `f64` DAS bytes fed to the interferometry probe runs.
    pub interferometry_bytes: u64,
    /// Raw `f64` DAS bytes fed to the local-similarity probe runs.
    pub localsim_bytes: u64,
}

impl Calibration {
    /// Derive measured rates from two [`obs`] snapshots taken around the
    /// calibration probe runs — no bespoke stopwatch plumbing.
    ///
    /// Consumes the standard instrumentation the pipelines already emit:
    /// `span.interferometry` and `span.local_similarity` span timings for
    /// compute rates, and `dasf.write.bytes` / `dasf.write.ns` for write
    /// bandwidth. Any rate whose metrics are absent from the delta (e.g.
    /// a probe was skipped) keeps its [`Default`] value.
    pub fn from_obs_delta(
        before: &obs::Snapshot,
        after: &obs::Snapshot,
        work: &CalibrationWorkload,
    ) -> Calibration {
        let span_ns = |name: &str| -> u64 {
            let prev = before.histogram(name).map_or(0, |h| h.sum);
            after
                .histogram(name)
                .map_or(0, |h| h.sum)
                .saturating_sub(prev)
        };
        let rate = |bytes: u64, ns: u64| -> Option<f64> {
            (bytes > 0 && ns > 0).then(|| bytes as f64 / (ns as f64 / 1e9))
        };
        let defaults = Calibration::default();
        let write_bytes = after
            .counter("dasf.write.bytes")
            .saturating_sub(before.counter("dasf.write.bytes"));
        // Decode rate straight from the reader's codec instrumentation:
        // nanoseconds spent decoding over raw bytes produced.
        let decode_raw = after
            .counter("dasf.codec.bytes_raw")
            .saturating_sub(before.counter("dasf.codec.bytes_raw"));
        let decode_ns = span_ns("dasf.codec.decode_ns");
        Calibration {
            compute_bytes_per_s_per_core: rate(
                work.interferometry_bytes,
                span_ns("span.interferometry"),
            )
            .unwrap_or(defaults.compute_bytes_per_s_per_core),
            localsim_bytes_per_s_per_core: rate(
                work.localsim_bytes,
                span_ns("span.local_similarity"),
            )
            .unwrap_or(defaults.localsim_bytes_per_s_per_core),
            write_bytes_per_s: rate(write_bytes, span_ns("dasf.write.ns"))
                .unwrap_or(defaults.write_bytes_per_s),
            decode_ns_per_byte: if decode_raw > 0 && decode_ns > 0 {
                decode_ns as f64 / decode_raw as f64
            } else {
                defaults.decode_ns_per_byte
            },
        }
    }

    /// A [`Machine`] whose decode cost is this calibration's measured
    /// rate (other parameters unchanged).
    pub fn apply_decode_rate(&self, machine: &Machine) -> Machine {
        Machine {
            decode_ns_per_byte: self.decode_ns_per_byte,
            ..machine.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cori_parameters_are_plausible() {
        let m = Machine::cori_haswell();
        assert_eq!(m.cores_per_node, 32);
        assert!(m.total_ost_bandwidth() > 5e11, "aggregate ≈ 700 GB/s");
        assert!(m.mem_per_node >= 128 << 30);
    }

    #[test]
    fn bandwidth_scales_then_saturates() {
        let m = Machine::cori_haswell();
        let small = m.effective_read_bandwidth(4, 4);
        let medium = m.effective_read_bandwidth(64, 64);
        let large = m.effective_read_bandwidth(2000, 2000);
        assert!(medium > small, "more nodes, more client bandwidth");
        // Saturation: 2000 nodes can't beat the OST aggregate.
        assert!(large <= m.total_ost_bandwidth() * 1.0001);
    }

    #[test]
    fn contention_degrades_overloaded_reads() {
        let m = Machine::cori_haswell();
        // Same node count, 16× the concurrent requests (pure MPI vs
        // hybrid): effective bandwidth must drop.
        let hybrid = m.effective_read_bandwidth(728, 728);
        let pure = m.effective_read_bandwidth(728, 728 * 16);
        assert!(pure < hybrid, "pure-MPI request storm must be slower");
    }

    #[test]
    fn read_time_monotone_in_bytes_and_requests() {
        let m = Machine::cori_haswell();
        let base = m.read_time(90, 90, 90, 1 << 30);
        assert!(m.read_time(90, 90, 90, 2 << 30) > base);
        assert!(m.read_time(90, 90, 9000, 1 << 30) > base);
        assert!(
            m.read_time(90, 9000, 9000, 1 << 30) > base,
            "contention adds cost"
        );
        assert_eq!(m.read_time(90, 0, 0, 0), 0.0);
    }

    #[test]
    fn bcast_cost_grows_logarithmically() {
        let m = Machine::cori_haswell();
        let t2 = m.bcast_time(2, 1 << 20);
        let t128 = m.bcast_time(128, 1 << 20);
        assert!(t128 > t2);
        assert!(t128 < t2 * 10.0, "log scaling, not linear");
        assert_eq!(m.bcast_time(1, 1 << 20), 0.0);
    }

    #[test]
    fn alltoall_cheaper_than_bcast_per_byte_delivered() {
        // Moving X bytes to each of p ranks: one alltoallv vs p bcasts.
        let m = Machine::cori_haswell();
        let p = 90;
        let per_rank = 100 << 20;
        let a2a = m.alltoallv_time(p, per_rank);
        let bcasts = p as f64 * m.bcast_time(p, per_rank);
        assert!(a2a < bcasts / 10.0, "{a2a} vs {bcasts}");
    }

    #[test]
    fn calibration_from_obs_delta() {
        let before = obs::Snapshot::default();
        let mut after = obs::Snapshot::default();
        // 80 MB of interferometry input in 2 s → 40 MB/s.
        after.histograms.insert(
            "span.interferometry".into(),
            obs::HistogramSnapshot {
                count: 4,
                sum: 2_000_000_000,
                min: 400_000_000,
                max: 600_000_000,
                buckets: vec![],
            },
        );
        // 500 MB written in 1 s → 500 MB/s.
        after
            .counters
            .insert("dasf.write.bytes".into(), 500_000_000);
        after.histograms.insert(
            "dasf.write.ns".into(),
            obs::HistogramSnapshot {
                count: 1,
                sum: 1_000_000_000,
                min: 1_000_000_000,
                max: 1_000_000_000,
                buckets: vec![],
            },
        );
        // 200 MB of raw payload decoded in 0.1 s → 0.5 ns/byte.
        after
            .counters
            .insert("dasf.codec.bytes_raw".into(), 200_000_000);
        after.histograms.insert(
            "dasf.codec.decode_ns".into(),
            obs::HistogramSnapshot {
                count: 3200,
                sum: 100_000_000,
                min: 10_000,
                max: 80_000,
                buckets: vec![],
            },
        );
        let work = CalibrationWorkload {
            interferometry_bytes: 80_000_000,
            localsim_bytes: 0, // probe skipped → default rate kept
        };
        let cal = Calibration::from_obs_delta(&before, &after, &work);
        assert!((cal.compute_bytes_per_s_per_core - 40.0e6).abs() < 1.0);
        assert!((cal.write_bytes_per_s - 500.0e6).abs() < 1.0);
        assert_eq!(
            cal.localsim_bytes_per_s_per_core,
            Calibration::default().localsim_bytes_per_s_per_core
        );
        assert!((cal.decode_ns_per_byte - 0.5).abs() < 1e-9);
        let m = cal.apply_decode_rate(&Machine::cori_haswell());
        assert!((m.decode_time(1_000_000_000) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn decode_rate_falls_back_to_default_without_codec_traffic() {
        let before = obs::Snapshot::default();
        let after = obs::Snapshot::default();
        let cal = Calibration::from_obs_delta(&before, &after, &CalibrationWorkload::default());
        assert_eq!(
            cal.decode_ns_per_byte,
            Calibration::default().decode_ns_per_byte
        );
    }

    #[test]
    fn oom_check() {
        let m = Machine::cori_haswell();
        assert!(!m.oom(64 << 30));
        assert!(m.oom(200 << 30));
    }
}
