//! `perfmodel` — an analytic cost model of a Cori-class supercomputer.
//!
//! The DASSA paper's headline experiments run on up to 1456 Cori nodes
//! (11,648 cores) against a Lustre file system — scales unreachable
//! outside NERSC. This crate reproduces the *shape* of those results
//! (Figures 7, 8, 11) from first principles:
//!
//! * [`Machine`] — node, network (α–β), and Lustre (bandwidth + IOPS)
//!   parameters, with [`Machine::cori_haswell`] defaults taken from the
//!   published system configuration;
//! * [`Calibration`] — per-kernel rates measured on the local machine by
//!   the benchmark harness (compute throughput, file-open cost), so the
//!   model's absolute numbers are anchored to real measurements;
//! * cost functions for reads ([`Machine::read_time`]), broadcasts,
//!   and all-to-all exchanges, parameterized by the *message counts the
//!   real implementation produces* (observable via `minimpi`'s
//!   [`CommStats`](../minimpi/struct.CommStats.html));
//! * experiment models: [`experiments::model_fig7`],
//!   [`experiments::model_fig8`], [`experiments::model_fig11`].
//!
//! The model's claims are tested qualitatively (who wins, where the
//! knees are), mirroring how the paper's evaluation is read.

pub mod experiments;
mod machine;
pub mod tuner;

pub use machine::{Calibration, CalibrationWorkload, Machine};
pub use tuner::{recommend, Objective, Recommendation};
