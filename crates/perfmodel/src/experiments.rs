//! At-scale models of the paper's Figures 7, 8, and 11.

use crate::machine::{Calibration, Machine};

/// Figure 7 — VCA read strategies at 90 processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Model {
    /// "Collective-per-file": one broadcast per file.
    pub collective_per_file_s: f64,
    /// The paper's communication-avoiding reader.
    pub comm_avoiding_s: f64,
    /// Reading the pre-merged RCA file.
    pub rca_read_s: f64,
}

/// Model the Figure 7 experiment: `p` processes reading `n_files` member
/// files of `file_bytes` each. `rca_stripe_count` is the Lustre striping
/// of the merged file (VCA members land on distinct OSTs naturally;
/// a single merged file only reaches `stripe_count` of them).
pub fn model_fig7(
    m: &Machine,
    n_files: u64,
    file_bytes: u64,
    p: usize,
    rca_stripe_count: usize,
) -> Fig7Model {
    // The I/O experiment spreads its 90 processes one per node (packing
    // them onto 3 nodes would bottleneck on 3 Lustre clients).
    let nodes = p;
    let total_bytes = n_files * file_bytes;

    // Collective-per-file: files processed one at a time — n opens,
    // n whole-file reads (one aggregator each), and n broadcasts of the
    // whole file to all p ranks.
    let collective = m.open_time(n_files)
        + m.read_time(nodes, p, n_files, total_bytes)
        + n_files as f64 * m.bcast_time(p, file_bytes);

    // Communication-avoiding: each rank opens/reads its ⌈n/p⌉ files
    // concurrently (open cost amortizes across ranks), then one
    // all-to-all moves each byte once.
    let files_per_rank = n_files.div_ceil(p as u64);
    let bytes_per_rank = total_bytes / p as u64;
    let comm_avoiding = m.open_time(files_per_rank)
        + m.read_time(nodes, p, n_files, total_bytes)
        + m.alltoallv_time(p, bytes_per_rank);

    // RCA: one open, p contiguous slab reads, but the single file only
    // spans `stripe_count` OSTs.
    let rca_bw =
        (rca_stripe_count as f64 * m.ost_bandwidth).min(nodes as f64 * m.client_io_bandwidth);
    let rca =
        m.open_time(1) + p as f64 / (m.n_ost as f64 * m.ost_iops) + total_bytes as f64 / rca_bw;

    Fig7Model {
        collective_per_file_s: collective,
        comm_avoiding_s: comm_avoiding,
        rca_read_s: rca,
    }
}

/// Execution layout for Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Original ArrayUDF: `procs_per_node` single-threaded MPI ranks.
    PureMpi { procs_per_node: usize },
    /// HAEE: one rank per node, `threads` OpenMP threads.
    Hybrid { threads: usize },
}

impl Layout {
    fn procs_per_node(&self) -> usize {
        match *self {
            Layout::PureMpi { procs_per_node } => procs_per_node,
            Layout::Hybrid { .. } => 1,
        }
    }

    fn cores_per_node(&self) -> usize {
        match *self {
            Layout::PureMpi { procs_per_node } => procs_per_node,
            Layout::Hybrid { threads } => threads,
        }
    }
}

/// One bar of Figure 8: read/compute/write breakdown plus OOM status.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Point {
    pub nodes: usize,
    pub layout: Layout,
    pub read_s: f64,
    pub compute_s: f64,
    pub write_s: f64,
    pub oom: bool,
}

impl Fig8Point {
    /// Total wall time (∞ when the configuration cannot run).
    pub fn total_s(&self) -> f64 {
        if self.oom {
            f64::INFINITY
        } else {
            self.read_s + self.compute_s + self.write_s
        }
    }
}

/// Workload description for Figures 8 and 11: the paper's two-day
/// acquisition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Total input size in bytes (paper: 1.9 TB).
    pub data_bytes: u64,
    /// Number of member files (paper: 2880).
    pub n_files: u64,
    /// Bytes of the shared master-channel state each process holds
    /// (time series + FFT work buffers).
    pub master_bytes: u64,
    /// Result bytes written at the end.
    pub output_bytes: u64,
    /// Fixed per-process memory overhead.
    pub per_process_overhead: u64,
}

impl Workload {
    /// The paper's §VI workload: 1.9 TB over 2880 one-minute files.
    pub fn paper() -> Workload {
        Workload {
            data_bytes: 1_900_000_000_000,
            n_files: 2880,
            // Two days of one channel at 500 Hz f64 plus FFT work
            // buffers: ≈ 0.7 GB × ~10 ≈ 7 GiB per process.
            master_bytes: 7 << 30,
            output_bytes: 8 * 11_648,
            per_process_overhead: 256 << 20,
        }
    }
}

/// Model one Figure 8 configuration.
pub fn model_fig8(
    m: &Machine,
    cal: &Calibration,
    w: &Workload,
    nodes: usize,
    layout: Layout,
) -> Fig8Point {
    let procs = nodes * layout.procs_per_node();
    let cores = nodes * layout.cores_per_node();

    // Every process issues its own I/O requests; at minimum each file is
    // touched once.
    let n_requests = (procs as u64).max(w.n_files);
    let read_s = m.open_time(w.n_files.div_ceil(procs as u64))
        + m.read_time(nodes, procs, n_requests, w.data_bytes);

    let compute_s = w.data_bytes as f64 / (cores as f64 * cal.compute_bytes_per_s_per_core);

    // Both layouts write one big array identically (paper: "the same
    // performance in writing").
    let write_s = w.output_bytes as f64 / cal.write_bytes_per_s;

    let mem = w.data_bytes / nodes as u64
        + layout.procs_per_node() as u64 * (w.master_bytes + w.per_process_overhead);
    Fig8Point {
        nodes,
        layout,
        read_s,
        compute_s,
        write_s,
        oom: m.oom(mem),
    }
}

/// One point of a Figure 11 scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    pub nodes: usize,
    pub read_s: f64,
    pub compute_s: f64,
    /// Parallel efficiency of the compute phase (percent).
    pub compute_eff: f64,
    /// Parallel efficiency of the I/O phase (percent).
    pub io_eff: f64,
}

/// Strong scaling (fixed `w.data_bytes`) over `nodes_list`, with
/// `threads` cores used per node (paper: 8). Efficiency is normalized to
/// the first point, as the paper normalizes to its smallest run.
pub fn model_fig11_strong(
    m: &Machine,
    cal: &Calibration,
    w: &Workload,
    nodes_list: &[usize],
    threads: usize,
) -> Vec<ScalingPoint> {
    let mut out = Vec::with_capacity(nodes_list.len());
    let mut base: Option<(usize, f64, f64)> = None;
    for &nodes in nodes_list {
        let cores = nodes * threads;
        let compute_s = w.data_bytes as f64 / (cores as f64 * cal.compute_bytes_per_s_per_core);
        // HAEE: one process (hence one outstanding request) per node.
        let read_s = m.read_time(nodes, nodes, (nodes as u64).max(w.n_files), w.data_bytes);
        let (n0, c0, r0) = *base.get_or_insert((nodes, compute_s, read_s));
        // Strong-scaling efficiency: t₀·N₀ / (t·N).
        let compute_eff = 100.0 * (c0 * n0 as f64) / (compute_s * nodes as f64);
        let io_eff = 100.0 * (r0 * n0 as f64) / (read_s * nodes as f64);
        out.push(ScalingPoint {
            nodes,
            read_s,
            compute_s,
            compute_eff,
            io_eff,
        });
    }
    out
}

/// Weak scaling: fixed bytes per core (paper: 171 MB/core).
pub fn model_fig11_weak(
    m: &Machine,
    cal: &Calibration,
    bytes_per_core: u64,
    nodes_list: &[usize],
    threads: usize,
) -> Vec<ScalingPoint> {
    let mut out = Vec::with_capacity(nodes_list.len());
    let mut base: Option<(f64, f64)> = None;
    for &nodes in nodes_list {
        let cores = nodes * threads;
        let data = bytes_per_core * cores as u64;
        // One file per ~minute of data keeps the paper's file granularity.
        let n_files = (data / 700_000_000).max(1);
        let compute_s = data as f64 / (cores as f64 * cal.compute_bytes_per_s_per_core);
        let read_s = m.read_time(nodes, nodes, (nodes as u64).max(n_files), data);
        let (c0, r0) = *base.get_or_insert((compute_s, read_s));
        // Weak-scaling efficiency: t₀ / t.
        out.push(ScalingPoint {
            nodes,
            read_s,
            compute_s,
            compute_eff: 100.0 * c0 / compute_s,
            io_eff: 100.0 * r0 / read_s,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Machine, Calibration, Workload) {
        (
            Machine::cori_haswell(),
            Calibration::default(),
            Workload::paper(),
        )
    }

    #[test]
    fn fig7_ordering_matches_paper() {
        // Figure 7: collective-per-file slowest (worse than RCA);
        // communication-avoiding fastest (better than RCA).
        let (m, _, _) = setup();
        for n_files in [360u64, 1440, 2880] {
            let f = model_fig7(&m, n_files, 700 << 20, 90, 8);
            assert!(
                f.comm_avoiding_s < f.rca_read_s,
                "comm-avoiding {:.1}s !< RCA {:.1}s at {n_files} files",
                f.comm_avoiding_s,
                f.rca_read_s
            );
            assert!(
                f.rca_read_s < f.collective_per_file_s,
                "RCA {:.1}s !< collective {:.1}s at {n_files} files",
                f.rca_read_s,
                f.collective_per_file_s
            );
        }
    }

    #[test]
    fn fig7_speedup_factor_in_paper_band() {
        // Paper: communication-avoiding ≈ 37× faster on average than
        // collective-per-file. Accept an order-of-magnitude band.
        let (m, _, _) = setup();
        let f = model_fig7(&m, 2880, 700 << 20, 90, 8);
        let ratio = f.collective_per_file_s / f.comm_avoiding_s;
        assert!(
            (10.0..300.0).contains(&ratio),
            "speedup {ratio:.1}× outside the plausible band"
        );
    }

    #[test]
    fn fig8_pure_mpi_ooms_at_91_nodes_only() {
        let (m, cal, w) = setup();
        let p91 = model_fig8(&m, &cal, &w, 91, Layout::PureMpi { procs_per_node: 16 });
        assert!(p91.oom, "paper: pure MPI runs out of memory at 91 nodes");
        assert!(p91.total_s().is_infinite());
        let h91 = model_fig8(&m, &cal, &w, 91, Layout::Hybrid { threads: 16 });
        assert!(!h91.oom, "hybrid shares the master channel and fits");
        for nodes in [182usize, 364, 728] {
            let p = model_fig8(&m, &cal, &w, nodes, Layout::PureMpi { procs_per_node: 16 });
            assert!(!p.oom, "pure MPI fits at {nodes} nodes");
        }
    }

    #[test]
    fn fig8_hybrid_reads_faster_at_scale() {
        // At 728 nodes, 11648 pure-MPI ranks thrash the file system;
        // hybrid issues 16× fewer requests.
        let (m, cal, w) = setup();
        let p = model_fig8(&m, &cal, &w, 728, Layout::PureMpi { procs_per_node: 16 });
        let h = model_fig8(&m, &cal, &w, 728, Layout::Hybrid { threads: 16 });
        assert!(
            h.read_s < p.read_s,
            "hybrid read {} !< pure {}",
            h.read_s,
            p.read_s
        );
        assert!(
            (h.compute_s - p.compute_s).abs() < 1e-9,
            "same cores, same compute"
        );
        assert!((h.write_s - p.write_s).abs() < 1e-12, "same write path");
    }

    #[test]
    fn fig8_pure_mpi_can_win_midscale_compute_coordination() {
        // Paper: "as the scale increases, the original ArrayUDF shows
        // certain performance benefits" before I/O dominates. Our model
        // keeps compute equal, so we only require the *read* gap to
        // widen with node count.
        let (m, cal, w) = setup();
        let gap = |nodes| {
            let p = model_fig8(&m, &cal, &w, nodes, Layout::PureMpi { procs_per_node: 16 });
            let h = model_fig8(&m, &cal, &w, nodes, Layout::Hybrid { threads: 16 });
            p.read_s - h.read_s
        };
        assert!(
            gap(728) > gap(182),
            "request-storm penalty grows with scale"
        );
    }

    #[test]
    fn fig11_strong_compute_near_perfect_io_decays() {
        let (m, cal, w) = setup();
        let pts = model_fig11_strong(&m, &cal, &w, &[91, 182, 364, 728, 1456], 8);
        for p in &pts {
            assert!(
                (99.0..=101.0).contains(&p.compute_eff),
                "compute efficiency {:.1}% at {} nodes",
                p.compute_eff,
                p.nodes
            );
        }
        // I/O efficiency decreases monotonically and substantially.
        for w2 in pts.windows(2) {
            assert!(
                w2[1].io_eff <= w2[0].io_eff + 1e-9,
                "io_eff must not increase: {} -> {}",
                w2[0].io_eff,
                w2[1].io_eff
            );
        }
        assert!(
            pts.last().unwrap().io_eff < 50.0,
            "paper shows strong decay by 1456 nodes"
        );
    }

    #[test]
    fn fig11_weak_compute_flat_io_decays() {
        let (m, cal, _) = setup();
        let pts = model_fig11_weak(&m, &cal, 171 << 20, &[91, 182, 364, 728, 1456], 8);
        for p in &pts {
            assert!((99.0..=101.0).contains(&p.compute_eff));
        }
        assert!(pts.last().unwrap().io_eff < pts.first().unwrap().io_eff);
    }

    #[test]
    fn burst_buffer_rescues_io_efficiency() {
        // The paper: "using the Burst Buffer addresses the down trend of
        // the parallel efficiency for I/O."
        let (_, cal, w) = setup();
        let lustre = Machine::cori_haswell();
        let bb = Machine::cori_burst_buffer();
        let nodes = [91usize, 364, 1456];
        let l = model_fig11_strong(&lustre, &cal, &w, &nodes, 8);
        let b = model_fig11_strong(&bb, &cal, &w, &nodes, 8);
        assert!(
            b.last().unwrap().io_eff > l.last().unwrap().io_eff,
            "burst buffer must hold efficiency better: {:.1}% vs {:.1}%",
            b.last().unwrap().io_eff,
            l.last().unwrap().io_eff
        );
        assert!(b.last().unwrap().read_s <= l.last().unwrap().read_s);
    }

    #[test]
    fn fig11_read_time_grows_with_weak_scale() {
        let (m, cal, _) = setup();
        let pts = model_fig11_weak(&m, &cal, 171 << 20, &[91, 364, 1456], 8);
        assert!(pts[2].read_s > pts[0].read_s);
        // Compute stays constant under weak scaling.
        assert!((pts[2].compute_s - pts[0].compute_s).abs() / pts[0].compute_s < 1e-9);
    }
}
