//! Property tests: every collective must match its sequential
//! reference semantics for arbitrary world sizes and payloads.

use minimpi::run;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bcast_delivers_root_value(size in 1usize..9, root_frac in 0.0f64..1.0,
                                 payload in prop::collection::vec(any::<i64>(), 0..32)) {
        let root = (root_frac * size as f64) as usize % size;
        let out = run(size, |comm| {
            let v = if comm.rank() == root { Some(payload.clone()) } else { None };
            comm.bcast_vec(root, v)
        });
        for got in out {
            prop_assert_eq!(&got, &payload);
        }
    }

    #[test]
    fn allreduce_equals_sequential_fold(size in 1usize..9,
                                        values in prop::collection::vec(-1000i64..1000, 8)) {
        let out = run(size, |comm| {
            comm.allreduce(values[comm.rank()], |a, b| a.wrapping_add(b))
        });
        let expect: i64 = values[..size].iter().sum();
        for got in out {
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn reduce_max_matches(size in 1usize..9,
                          values in prop::collection::vec(any::<i32>(), 8),
                          root_frac in 0.0f64..1.0) {
        let root = (root_frac * size as f64) as usize % size;
        let out = run(size, |comm| comm.reduce(root, values[comm.rank()], i32::max));
        let expect = values[..size].iter().copied().max().expect("nonempty");
        for (rank, got) in out.into_iter().enumerate() {
            if rank == root {
                prop_assert_eq!(got, Some(expect));
            } else {
                prop_assert_eq!(got, None);
            }
        }
    }

    #[test]
    fn gather_and_allgather_preserve_rank_order(size in 1usize..9,
                                                base in any::<u32>()) {
        let out = run(size, |comm| {
            let mine = base.wrapping_add(comm.rank() as u32);
            (comm.gather(0, mine), comm.allgather(mine))
        });
        let expect: Vec<u32> = (0..size).map(|r| base.wrapping_add(r as u32)).collect();
        prop_assert_eq!(out[0].0.clone(), Some(expect.clone()));
        for (_, ag) in out {
            prop_assert_eq!(ag, expect.clone());
        }
    }

    #[test]
    fn alltoallv_is_a_transpose(size in 1usize..7, seed in any::<u64>()) {
        // buffers[src][dst] content is a function of (src, dst); after the
        // exchange, received[dst][src] must hold the same function value.
        let content = |src: usize, dst: usize| -> Vec<u64> {
            let n = ((seed >> (src + dst)) % 5) as usize + 1;
            (0..n).map(|i| seed ^ ((src * 31 + dst * 17 + i) as u64)).collect()
        };
        let out = run(size, |comm| {
            let bufs: Vec<Vec<u64>> = (0..size).map(|d| content(comm.rank(), d)).collect();
            comm.alltoallv(bufs)
        });
        for (dst, blocks) in out.into_iter().enumerate() {
            for (src, block) in blocks.into_iter().enumerate() {
                prop_assert_eq!(block, content(src, dst), "src={} dst={}", src, dst);
            }
        }
    }

    #[test]
    fn scatter_partitions_root_data(size in 1usize..9, base in any::<i64>()) {
        let out = run(size, |comm| {
            let values = if comm.rank() == 0 {
                Some((0..size as i64).map(|i| base.wrapping_add(i)).collect())
            } else {
                None
            };
            comm.scatter(0, values)
        });
        for (rank, got) in out.into_iter().enumerate() {
            prop_assert_eq!(got, base.wrapping_add(rank as i64));
        }
    }

    #[test]
    fn collective_sequences_stay_consistent(size in 2usize..6, rounds in 1usize..5) {
        // Interleave different collectives repeatedly: sequence-number
        // tagging must keep every round isolated.
        let out = run(size, |comm| {
            let mut acc = Vec::new();
            for r in 0..rounds {
                comm.barrier();
                let s = comm.allreduce(comm.rank() + r, |a, b| a + b);
                let g = comm.allgather(r * 10 + comm.rank());
                acc.push((s, g));
            }
            acc
        });
        for ranks_view in &out {
            prop_assert_eq!(ranks_view, &out[0], "all ranks agree");
        }
        for (r, (s, g)) in out[0].iter().enumerate() {
            let expect_s: usize = (0..size).map(|k| k + r).sum();
            prop_assert_eq!(*s, expect_s);
            let expect_g: Vec<usize> = (0..size).map(|k| r * 10 + k).collect();
            prop_assert_eq!(g, &expect_g);
        }
    }
}
