//! World setup and point-to-point messaging with tag matching.

use crate::error::{CommError, RetryPolicy};
use crate::stats::CommStats;
use crossbeam_channel::{unbounded, Receiver, Sender};
use faultline::{site, FaultPlan};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Internal message envelope.
pub(crate) struct Envelope {
    pub(crate) src: usize,
    pub(crate) tag: u64,
    pub(crate) payload: Box<dyn Any + Send>,
}

/// Error returned by [`Comm::recv_timeout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// No matching message arrived within the deadline. On a real cluster
    /// this is how a dead peer manifests; tests use it for failure
    /// injection.
    Timeout,
    /// A message matched source and tag but carried an unexpected payload
    /// type — the moral equivalent of an MPI datatype mismatch.
    TypeMismatch,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out (peer dead or deadlocked?)"),
            RecvError::TypeMismatch => write!(f, "received payload of unexpected type"),
        }
    }
}

impl std::error::Error for RecvError {}

/// The communicator handle owned by each rank, analogous to
/// `MPI_COMM_WORLD` plus the local rank id.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Envelope>>>,
    receiver: Receiver<Envelope>,
    /// Unexpected-message queue: arrived but not yet matched by a recv.
    pending: RefCell<VecDeque<Envelope>>,
    /// Per-rank collective sequence number; disambiguates the internal
    /// tags of back-to-back collectives.
    pub(crate) coll_seq: Cell<u64>,
    stats: Arc<CommStats>,
    /// This rank's own registry, a child of the world registry: the
    /// per-rank view gathered by [`Comm::try_cluster_snapshot`].
    rank_registry: Arc<obs::Registry>,
    /// Receive patience for the fallible (`try_*`) collectives.
    policy: RetryPolicy,
    /// The world's fault plan, if this is a chaos world.
    faults: Option<Arc<FaultPlan>>,
    /// Is this rank dead under the fault plan? Dead ranks send nothing
    /// and their fallible collectives return [`CommError::RankDead`].
    dead: bool,
}

/// User-visible tags live below this bit; collectives tag above it.
pub(crate) const INTERNAL_TAG_BASE: u64 = 1 << 32;

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// This rank's communication counters. Increments chain into the
    /// world registry (and [`obs::global`]), so world-level totals are
    /// unchanged while the per-rank breakdown stays queryable.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// This rank's observability registry, a child of the world's.
    /// Counters and spans recorded here are visible per rank in
    /// [`Comm::try_cluster_snapshot`], in [`run_with_stats`]'s world
    /// snapshot, and (via parent chaining) in [`obs::global`]. Rank
    /// code can use it to account work alongside the communication
    /// counters.
    pub fn registry(&self) -> &std::sync::Arc<obs::Registry> {
        &self.rank_registry
    }

    /// The world-level registry every rank's metrics aggregate into.
    pub fn world_registry(&self) -> &std::sync::Arc<obs::Registry> {
        self.stats.registry()
    }

    /// Gather every rank's metric snapshot to rank 0: the root returns
    /// `Some(cluster)` with one section per rank (plus per-metric
    /// min/mean/max and imbalance accessors), other ranks `None`.
    ///
    /// Costs one gather. Under a fault plan a dead rank refuses with
    /// [`CommError::RankDead`] and the root times out waiting for its
    /// snapshot, like any other collective.
    pub fn try_cluster_snapshot(&self) -> Result<Option<obs::ClusterSnapshot>, CommError> {
        let snap = self.rank_registry.snapshot();
        Ok(self
            .try_gather(0, snap)?
            .map(obs::ClusterSnapshot::from_gathered))
    }

    /// Send `value` to rank `dst` with `tag` (non-blocking, buffered —
    /// like `MPI_Isend` into an eager buffer).
    ///
    /// `tag` must be below 2^32; larger values are reserved for
    /// collectives.
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u32, value: T) {
        self.send_internal(dst, tag as u64, value, std::mem::size_of::<T>());
    }

    /// Send a `Vec`, counting its true byte volume in [`CommStats`].
    pub fn send_vec<T: Send + 'static>(&self, dst: usize, tag: u32, value: Vec<T>) {
        let bytes = value.len() * std::mem::size_of::<T>();
        self.send_internal(dst, tag as u64, value, bytes);
    }

    pub(crate) fn send_internal<T: Send + 'static>(
        &self,
        dst: usize,
        tag: u64,
        value: T,
        approx_bytes: usize,
    ) {
        assert!(
            dst < self.size,
            "send to rank {dst} out of range 0..{}",
            self.size
        );
        if self.dead {
            // A dead rank's traffic never reaches the wire; peers see
            // it as silence and time out.
            self.stats.suppressed_sends.inc();
            return;
        }
        self.stats.count_message(approx_bytes);
        // Unbounded channel: the send only fails when the destination
        // already finished. In a bounded-policy (chaos) world ranks bail
        // out of collectives routinely, so a message to a gone rank is
        // degradation, not a crash — count it and move on, like MPI
        // after a peer abort with error handlers installed. In classic
        // blocking worlds a finished receiver means a rank panicked;
        // propagate as before so bugs stay loud.
        let result = self.senders[dst].send(Envelope {
            src: self.rank,
            tag,
            payload: Box::new(value),
        });
        if result.is_err() {
            if self.policy.base_timeout.is_some() {
                self.stats.suppressed_sends.inc();
            } else {
                panic!("destination rank has terminated");
            }
        }
    }

    /// Blocking receive of a `T` from rank `src` with matching `tag`
    /// (like `MPI_Recv`). Messages from other (src, tag) pairs are queued
    /// and stay available for later receives.
    ///
    /// # Panics
    /// Panics on payload type mismatch — that is a programming error, as
    /// it is in MPI.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u32) -> T {
        self.recv_internal(src, tag as u64)
    }

    /// [`Comm::recv`] with a deadline, for failure injection and tests.
    pub fn recv_timeout<T: Send + 'static>(
        &self,
        src: usize,
        tag: u32,
        timeout: Duration,
    ) -> Result<T, RecvError> {
        self.recv_internal_timeout(src, tag as u64, Some(timeout))
    }

    pub(crate) fn recv_internal<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        match self.recv_internal_timeout(src, tag, None) {
            Ok(v) => v,
            Err(RecvError::TypeMismatch) => panic!(
                "rank {}: type mismatch receiving tag {tag:#x} from rank {src}",
                self.rank
            ),
            Err(RecvError::Timeout) => unreachable!("no timeout configured"),
        }
    }

    fn recv_internal_timeout<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        timeout: Option<Duration>,
    ) -> Result<T, RecvError> {
        // 1. Check the unexpected-message queue.
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|e| e.src == src && e.tag == tag) {
                let env = pending.remove(pos).expect("position just found");
                return downcast(env);
            }
        }
        // 2. Drain the channel until a match appears. Already-delivered
        //    messages are always drained first (non-blocking), so a
        //    zero-duration timeout still observes them — `RecvRequest::
        //    test` relies on that.
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            while let Ok(env) = self.receiver.try_recv() {
                if env.src == src && env.tag == tag {
                    return downcast(env);
                }
                self.pending.borrow_mut().push_back(env);
            }
            let env = match deadline {
                None => self
                    .receiver
                    .recv()
                    .expect("world torn down while receiving"),
                Some(d) => {
                    let now = std::time::Instant::now();
                    if now >= d {
                        return Err(RecvError::Timeout);
                    }
                    match self.receiver.recv_timeout(d - now) {
                        Ok(env) => env,
                        Err(_) => return Err(RecvError::Timeout),
                    }
                }
            };
            if env.src == src && env.tag == tag {
                return downcast(env);
            }
            self.pending.borrow_mut().push_back(env);
        }
    }
}

impl Comm {
    /// This world's retry policy (blocking for [`run`] worlds).
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// The active fault plan, if this is a chaos world.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Is this rank dead under the world's fault plan?
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Fallible collectives refuse to run on a dead rank.
    pub(crate) fn check_alive(&self) -> Result<(), CommError> {
        if self.dead {
            Err(CommError::RankDead(self.rank))
        } else {
            Ok(())
        }
    }

    /// The receive primitive under every fallible collective: retry with
    /// the world's [`RetryPolicy`], honouring injected message drops and
    /// delays.
    ///
    /// `key` identifies this (collective, round, src→dst) edge
    /// deterministically; an injected drop at that key loses the first
    /// delivery attempt(s) — always fewer than the budget — each counted
    /// in `minimpi.retries`, and the message (which really was sent) is
    /// found by a later attempt, transparently to the caller. Drops
    /// therefore slow a collective but never fail it; [`CommError::
    /// Timeout`] is reserved for peers that genuinely sent nothing
    /// (dead or already failed).
    pub(crate) fn recv_coll<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        key: u64,
    ) -> Result<T, CommError> {
        let attempts = self.policy.attempts.max(1);
        let drops = match &self.faults {
            Some(plan) if attempts > 1 && plan.fires(site::MINIMPI_RECV_DROP, key) => {
                1 + plan.value_below(site::MINIMPI_RECV_DROP, key, attempts as u64 - 1) as u32
            }
            _ => 0,
        };
        if let Some(plan) = &self.faults {
            // A delayed message: stall briefly before looking. Bounded
            // well below the base timeout, so delays never become
            // timeouts — they only reorder schedules.
            if plan.fires(site::MINIMPI_RECV_DELAY, key) {
                let ns = 1 + plan.value_below(site::MINIMPI_RECV_DELAY, key, 100_000);
                std::thread::sleep(Duration::from_nanos(ns));
            }
        }
        for attempt in 0..attempts {
            if attempt < drops {
                // Simulated lost delivery: don't even look at the wire.
                self.stats.retries.inc();
                continue;
            }
            match self.policy.timeout_for(attempt) {
                None => return Ok(self.recv_internal(src, tag)),
                Some(t) => match self.recv_internal_timeout(src, tag, Some(t)) {
                    Ok(v) => return Ok(v),
                    Err(RecvError::Timeout) => self.stats.retries.inc(),
                    Err(RecvError::TypeMismatch) => {
                        return Err(CommError::Protocol("payload type mismatch"))
                    }
                },
            }
        }
        Err(CommError::Timeout { src, attempts })
    }
}

fn downcast<T: 'static>(env: Envelope) -> Result<T, RecvError> {
    env.payload
        .downcast::<T>()
        .map(|b| *b)
        .map_err(|_| RecvError::TypeMismatch)
}

/// Spawn a world of `n_ranks` and run `f` on every rank concurrently.
/// Returns each rank's result, indexed by rank.
///
/// A panic on any rank tears the world down and propagates.
pub fn run<R, F>(n_ranks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    run_with_stats(n_ranks, f).0
}

/// Like [`run`], additionally returning the world's communication
/// counters.
///
/// The world gets a fresh [`obs::Registry`] parented to [`obs::global`],
/// so the snapshot reflects only this world's traffic even when other
/// worlds run concurrently (e.g. parallel tests).
pub fn run_with_stats<R, F>(n_ranks: usize, f: F) -> (Vec<R>, crate::StatsSnapshot)
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    let registry = Arc::new(obs::Registry::with_parent(Arc::clone(obs::global())));
    run_in_registry(n_ranks, registry, f)
}

/// Like [`run`], recording the world's communication counters into
/// `registry` (typically a child of [`obs::global`], but any registry
/// works — tests can pass an isolated root). Returns each rank's result
/// and the world's [`crate::StatsSnapshot`], taken after all ranks
/// joined.
pub fn run_in_registry<R, F>(
    n_ranks: usize,
    registry: Arc<obs::Registry>,
    f: F,
) -> (Vec<R>, crate::StatsSnapshot)
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    run_world(n_ranks, registry, RetryPolicy::blocking(), None, f)
}

/// Spawn a *chaos world*: like [`run`], but every rank lives under
/// `plan` (a [`faultline::FaultPlan`]) and the fallible (`try_*`)
/// collectives wait with the bounded `policy` instead of blocking
/// forever.
///
/// Under the plan, a rank for which `minimpi.rank.dead` fires is *dead*:
/// it sends nothing (counted in `minimpi.send.suppressed`) and its
/// fallible collectives return [`CommError::RankDead`] immediately;
/// surviving ranks observe it as [`CommError::Timeout`] after exhausting
/// their retries. The plan is also installed thread-locally on each rank
/// thread, so dasf I/O performed by rank code sees the same schedule.
///
/// # Panics
/// Panics if `policy` has no `base_timeout` — a chaos world with
/// infinite patience would deadlock on the first dead rank.
pub fn run_chaos<R, F>(
    n_ranks: usize,
    plan: Arc<FaultPlan>,
    policy: RetryPolicy,
    f: F,
) -> (Vec<R>, crate::StatsSnapshot)
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    let registry = Arc::new(obs::Registry::with_parent(Arc::clone(obs::global())));
    run_chaos_in_registry(n_ranks, registry, plan, policy, f)
}

/// [`run_chaos`] recording into a caller-supplied registry.
pub fn run_chaos_in_registry<R, F>(
    n_ranks: usize,
    registry: Arc<obs::Registry>,
    plan: Arc<FaultPlan>,
    policy: RetryPolicy,
    f: F,
) -> (Vec<R>, crate::StatsSnapshot)
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    assert!(
        policy.base_timeout.is_some(),
        "a chaos world needs a bounded RetryPolicy, or dead ranks deadlock it"
    );
    run_world(n_ranks, registry, policy, Some(plan), f)
}

fn run_world<R, F>(
    n_ranks: usize,
    registry: Arc<obs::Registry>,
    policy: RetryPolicy,
    plan: Option<Arc<FaultPlan>>,
    f: F,
) -> (Vec<R>, crate::StatsSnapshot)
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    assert!(n_ranks >= 1, "world must have at least one rank");
    // World-level handle bundle: every rank's increments chain up into
    // `registry`, so this snapshot sees the whole world's traffic.
    let world_stats = Arc::new(CommStats::in_registry(Arc::clone(&registry)));
    let (senders, receivers): (Vec<_>, Vec<_>) = (0..n_ranks).map(|_| unbounded()).unzip();
    let senders = Arc::new(senders);

    let mut results: Vec<Option<R>> = (0..n_ranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_ranks);
        for (rank, receiver) in receivers.into_iter().enumerate() {
            let senders = Arc::clone(&senders);
            let world_registry = Arc::clone(&registry);
            let plan = plan.clone();
            let f = &f;
            handles.push(scope.spawn(move || {
                // Trace events recorded on this thread carry the rank id.
                obs::trace::set_rank(rank as u32);
                let dead = plan
                    .as_ref()
                    .is_some_and(|p| p.fires(site::MINIMPI_RANK_DEAD, rank as u64));
                // Rank code (e.g. dasf reads) sees the world's plan via
                // the thread-local scope for the life of this rank.
                let _guard = plan
                    .as_ref()
                    .map(|p| faultline::PlanGuard::install(Arc::clone(p)));
                // Each rank records into its own child of the world
                // registry, so per-rank breakdowns survive aggregation.
                let rank_registry =
                    Arc::new(obs::Registry::with_parent(Arc::clone(&world_registry)));
                let stats = Arc::new(CommStats::in_registry(Arc::clone(&rank_registry)));
                let comm = Comm {
                    rank,
                    size: n_ranks,
                    senders,
                    receiver,
                    pending: RefCell::new(VecDeque::new()),
                    coll_seq: Cell::new(0),
                    stats,
                    rank_registry,
                    policy,
                    faults: plan,
                    dead,
                };
                let out = f(&comm);
                obs::trace::set_rank(0);
                out
            }));
        }
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(r) => results[rank] = Some(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let results = results
        .into_iter()
        .map(|r| r.expect("all ranks joined"))
        .collect();
    (results, world_stats.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, 123u64);
                comm.recv::<u64>(1, 8)
            } else {
                let v = comm.recv::<u64>(0, 7);
                comm.send(0, 8, v * 2);
                v
            }
        });
        assert_eq!(out, vec![246, 123]);
    }

    #[test]
    fn tag_matching_reorders() {
        // Rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first.
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 2, "second".to_string());
                comm.send(1, 1, "first".to_string());
                String::new()
            } else {
                let a = comm.recv::<String>(0, 1);
                let b = comm.recv::<String>(0, 2);
                format!("{a},{b}")
            }
        });
        assert_eq!(out[1], "first,second");
    }

    #[test]
    fn source_matching() {
        let out = run(3, |comm| {
            if comm.rank() == 2 {
                // Receive from rank 1 first even though rank 0 sent first.
                let a = comm.recv::<u32>(1, 0);
                let b = comm.recv::<u32>(0, 0);
                vec![a, b]
            } else {
                comm.send(2, 0, comm.rank() as u32);
                vec![]
            }
        });
        assert_eq!(out[2], vec![1, 0]);
    }

    #[test]
    fn recv_timeout_fires() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.recv_timeout::<u8>(1, 9, Duration::from_millis(20))
            } else {
                Ok(0) // rank 1 never sends on tag 9
            }
        });
        assert_eq!(out[0], Err(RecvError::Timeout));
    }

    #[test]
    fn stats_count_p2p() {
        let (_, stats) = run_with_stats(2, |comm| {
            if comm.rank() == 0 {
                comm.send_vec(1, 0, vec![0u8; 1000]);
            } else {
                let _ = comm.recv::<Vec<u8>>(0, 0);
            }
        });
        assert_eq!(stats.p2p_messages, 1);
        assert_eq!(stats.p2p_bytes, 1000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_invalid_rank_panics() {
        run(1, |comm| comm.send(5, 0, 1u8));
    }

    #[test]
    fn cluster_snapshot_keeps_per_rank_breakdown() {
        let registry = Arc::new(obs::Registry::new());
        let (out, _) = run_in_registry(4, Arc::clone(&registry), |comm| {
            comm.registry()
                .counter("work.items")
                .add(comm.rank() as u64 + 1);
            comm.try_cluster_snapshot().unwrap()
        });
        let cluster = out[0].clone().expect("root gets the cluster view");
        assert!(out[1..].iter().all(|c| c.is_none()));
        assert_eq!(cluster.size(), 4);
        for rank in 0..4u32 {
            assert_eq!(
                cluster.ranks[&rank].counter("work.items"),
                u64::from(rank) + 1
            );
        }
        let stats = cluster.counter_stats("work.items").expect("stats");
        assert_eq!((stats.min, stats.max, stats.sum), (1, 4, 10));
        assert!((stats.imbalance() - 1.6).abs() < 1e-12);
        // Rank increments still aggregate into the world registry.
        assert_eq!(registry.snapshot().counter("work.items"), 10);
    }

    #[test]
    fn per_rank_comm_counters_differ_while_world_totals_hold() {
        let (out, stats) = run_with_stats(2, |comm| {
            if comm.rank() == 0 {
                comm.send_vec(1, 5, vec![0u8; 100]);
            } else {
                let _ = comm.recv::<Vec<u8>>(0, 5);
            }
            comm.registry()
                .snapshot()
                .counter(crate::stats::names::P2P_MESSAGES)
        });
        // Only rank 0 sent; its rank registry shows 1, rank 1's shows 0,
        // and the world total is their sum.
        assert_eq!(out, vec![1, 0]);
        assert_eq!(stats.p2p_messages, 1);
    }

    #[test]
    fn collectives_emit_rank_tagged_trace_events() {
        let registry = Arc::new(obs::Registry::new());
        registry.install_tracer(Arc::new(obs::Tracer::new()));
        run_in_registry(3, Arc::clone(&registry), |comm| {
            comm.barrier();
        });
        let trace = registry.tracer().expect("installed").collect();
        assert_eq!(trace.dropped, 0);
        let ranks: std::collections::BTreeSet<u32> = trace.events.iter().map(|e| e.rank).collect();
        assert_eq!(ranks, (0..3).collect());
        assert!(trace
            .events
            .iter()
            .any(|e| e.name.contains("minimpi.barrier")));
    }

    #[test]
    fn large_vec_transfer() {
        let n = 1 << 16;
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_vec(1, 3, (0..n as u64).collect::<Vec<_>>());
                0
            } else {
                let v = comm.recv::<Vec<u64>>(0, 3);
                v.iter().sum::<u64>()
            }
        });
        assert_eq!(out[1], (n as u64 - 1) * n as u64 / 2);
    }
}
