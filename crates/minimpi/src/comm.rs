//! World setup and point-to-point messaging with tag matching.

use crate::stats::CommStats;
use crossbeam_channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Internal message envelope.
pub(crate) struct Envelope {
    pub(crate) src: usize,
    pub(crate) tag: u64,
    pub(crate) payload: Box<dyn Any + Send>,
}

/// Error returned by [`Comm::recv_timeout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// No matching message arrived within the deadline. On a real cluster
    /// this is how a dead peer manifests; tests use it for failure
    /// injection.
    Timeout,
    /// A message matched source and tag but carried an unexpected payload
    /// type — the moral equivalent of an MPI datatype mismatch.
    TypeMismatch,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out (peer dead or deadlocked?)"),
            RecvError::TypeMismatch => write!(f, "received payload of unexpected type"),
        }
    }
}

impl std::error::Error for RecvError {}

/// The communicator handle owned by each rank, analogous to
/// `MPI_COMM_WORLD` plus the local rank id.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Envelope>>>,
    receiver: Receiver<Envelope>,
    /// Unexpected-message queue: arrived but not yet matched by a recv.
    pending: RefCell<VecDeque<Envelope>>,
    /// Per-rank collective sequence number; disambiguates the internal
    /// tags of back-to-back collectives.
    pub(crate) coll_seq: Cell<u64>,
    stats: Arc<CommStats>,
}

/// User-visible tags live below this bit; collectives tag above it.
pub(crate) const INTERNAL_TAG_BASE: u64 = 1 << 32;

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The world's shared communication counters.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// The world's observability registry. Counters and spans recorded
    /// here are visible in [`run_with_stats`]'s world snapshot and (via
    /// parent chaining) in [`obs::global`]. Rank code can use it to
    /// account work alongside the communication counters.
    pub fn registry(&self) -> &std::sync::Arc<obs::Registry> {
        self.stats.registry()
    }

    /// Send `value` to rank `dst` with `tag` (non-blocking, buffered —
    /// like `MPI_Isend` into an eager buffer).
    ///
    /// `tag` must be below 2^32; larger values are reserved for
    /// collectives.
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u32, value: T) {
        self.send_internal(dst, tag as u64, value, std::mem::size_of::<T>());
    }

    /// Send a `Vec`, counting its true byte volume in [`CommStats`].
    pub fn send_vec<T: Send + 'static>(&self, dst: usize, tag: u32, value: Vec<T>) {
        let bytes = value.len() * std::mem::size_of::<T>();
        self.send_internal(dst, tag as u64, value, bytes);
    }

    pub(crate) fn send_internal<T: Send + 'static>(
        &self,
        dst: usize,
        tag: u64,
        value: T,
        approx_bytes: usize,
    ) {
        assert!(
            dst < self.size,
            "send to rank {dst} out of range 0..{}",
            self.size
        );
        self.stats.count_message(approx_bytes);
        // Unbounded channel: send cannot fail unless the receiver thread
        // is gone, which only happens when a rank panicked — propagate.
        self.senders[dst]
            .send(Envelope {
                src: self.rank,
                tag,
                payload: Box::new(value),
            })
            .expect("destination rank has terminated");
    }

    /// Blocking receive of a `T` from rank `src` with matching `tag`
    /// (like `MPI_Recv`). Messages from other (src, tag) pairs are queued
    /// and stay available for later receives.
    ///
    /// # Panics
    /// Panics on payload type mismatch — that is a programming error, as
    /// it is in MPI.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u32) -> T {
        self.recv_internal(src, tag as u64)
    }

    /// [`Comm::recv`] with a deadline, for failure injection and tests.
    pub fn recv_timeout<T: Send + 'static>(
        &self,
        src: usize,
        tag: u32,
        timeout: Duration,
    ) -> Result<T, RecvError> {
        self.recv_internal_timeout(src, tag as u64, Some(timeout))
    }

    pub(crate) fn recv_internal<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        match self.recv_internal_timeout(src, tag, None) {
            Ok(v) => v,
            Err(RecvError::TypeMismatch) => panic!(
                "rank {}: type mismatch receiving tag {tag:#x} from rank {src}",
                self.rank
            ),
            Err(RecvError::Timeout) => unreachable!("no timeout configured"),
        }
    }

    fn recv_internal_timeout<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        timeout: Option<Duration>,
    ) -> Result<T, RecvError> {
        // 1. Check the unexpected-message queue.
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(pos) = pending.iter().position(|e| e.src == src && e.tag == tag) {
                let env = pending.remove(pos).expect("position just found");
                return downcast(env);
            }
        }
        // 2. Drain the channel until a match appears. Already-delivered
        //    messages are always drained first (non-blocking), so a
        //    zero-duration timeout still observes them — `RecvRequest::
        //    test` relies on that.
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            while let Ok(env) = self.receiver.try_recv() {
                if env.src == src && env.tag == tag {
                    return downcast(env);
                }
                self.pending.borrow_mut().push_back(env);
            }
            let env = match deadline {
                None => self
                    .receiver
                    .recv()
                    .expect("world torn down while receiving"),
                Some(d) => {
                    let now = std::time::Instant::now();
                    if now >= d {
                        return Err(RecvError::Timeout);
                    }
                    match self.receiver.recv_timeout(d - now) {
                        Ok(env) => env,
                        Err(_) => return Err(RecvError::Timeout),
                    }
                }
            };
            if env.src == src && env.tag == tag {
                return downcast(env);
            }
            self.pending.borrow_mut().push_back(env);
        }
    }
}

fn downcast<T: 'static>(env: Envelope) -> Result<T, RecvError> {
    env.payload
        .downcast::<T>()
        .map(|b| *b)
        .map_err(|_| RecvError::TypeMismatch)
}

/// Spawn a world of `n_ranks` and run `f` on every rank concurrently.
/// Returns each rank's result, indexed by rank.
///
/// A panic on any rank tears the world down and propagates.
pub fn run<R, F>(n_ranks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    run_with_stats(n_ranks, f).0
}

/// Like [`run`], additionally returning the world's communication
/// counters.
///
/// The world gets a fresh [`obs::Registry`] parented to [`obs::global`],
/// so the snapshot reflects only this world's traffic even when other
/// worlds run concurrently (e.g. parallel tests).
pub fn run_with_stats<R, F>(n_ranks: usize, f: F) -> (Vec<R>, crate::StatsSnapshot)
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    let registry = Arc::new(obs::Registry::with_parent(Arc::clone(obs::global())));
    run_in_registry(n_ranks, registry, f)
}

/// Like [`run`], recording the world's communication counters into
/// `registry` (typically a child of [`obs::global`], but any registry
/// works — tests can pass an isolated root). Returns each rank's result
/// and the world's [`crate::StatsSnapshot`], taken after all ranks
/// joined.
pub fn run_in_registry<R, F>(
    n_ranks: usize,
    registry: Arc<obs::Registry>,
    f: F,
) -> (Vec<R>, crate::StatsSnapshot)
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    assert!(n_ranks >= 1, "world must have at least one rank");
    let stats = Arc::new(CommStats::in_registry(Arc::clone(&registry)));
    let (senders, receivers): (Vec<_>, Vec<_>) = (0..n_ranks).map(|_| unbounded()).unzip();
    let senders = Arc::new(senders);

    let mut results: Vec<Option<R>> = (0..n_ranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_ranks);
        for (rank, receiver) in receivers.into_iter().enumerate() {
            let senders = Arc::clone(&senders);
            let stats = Arc::clone(&stats);
            let f = &f;
            handles.push(scope.spawn(move || {
                let comm = Comm {
                    rank,
                    size: n_ranks,
                    senders,
                    receiver,
                    pending: RefCell::new(VecDeque::new()),
                    coll_seq: Cell::new(0),
                    stats,
                };
                f(&comm)
            }));
        }
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(r) => results[rank] = Some(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let results = results
        .into_iter()
        .map(|r| r.expect("all ranks joined"))
        .collect();
    (results, stats.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, 123u64);
                comm.recv::<u64>(1, 8)
            } else {
                let v = comm.recv::<u64>(0, 7);
                comm.send(0, 8, v * 2);
                v
            }
        });
        assert_eq!(out, vec![246, 123]);
    }

    #[test]
    fn tag_matching_reorders() {
        // Rank 0 sends tag 2 then tag 1; rank 1 receives tag 1 first.
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 2, "second".to_string());
                comm.send(1, 1, "first".to_string());
                String::new()
            } else {
                let a = comm.recv::<String>(0, 1);
                let b = comm.recv::<String>(0, 2);
                format!("{a},{b}")
            }
        });
        assert_eq!(out[1], "first,second");
    }

    #[test]
    fn source_matching() {
        let out = run(3, |comm| {
            if comm.rank() == 2 {
                // Receive from rank 1 first even though rank 0 sent first.
                let a = comm.recv::<u32>(1, 0);
                let b = comm.recv::<u32>(0, 0);
                vec![a, b]
            } else {
                comm.send(2, 0, comm.rank() as u32);
                vec![]
            }
        });
        assert_eq!(out[2], vec![1, 0]);
    }

    #[test]
    fn recv_timeout_fires() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.recv_timeout::<u8>(1, 9, Duration::from_millis(20))
            } else {
                Ok(0) // rank 1 never sends on tag 9
            }
        });
        assert_eq!(out[0], Err(RecvError::Timeout));
    }

    #[test]
    fn stats_count_p2p() {
        let (_, stats) = run_with_stats(2, |comm| {
            if comm.rank() == 0 {
                comm.send_vec(1, 0, vec![0u8; 1000]);
            } else {
                let _ = comm.recv::<Vec<u8>>(0, 0);
            }
        });
        assert_eq!(stats.p2p_messages, 1);
        assert_eq!(stats.p2p_bytes, 1000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_invalid_rank_panics() {
        run(1, |comm| comm.send(5, 0, 1u8));
    }

    #[test]
    fn large_vec_transfer() {
        let n = 1 << 16;
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_vec(1, 3, (0..n as u64).collect::<Vec<_>>());
                0
            } else {
                let v = comm.recv::<Vec<u64>>(0, 3);
                v.iter().sum::<u64>()
            }
        });
        assert_eq!(out[1], (n as u64 - 1) * n as u64 / 2);
    }
}
