//! `minimpi` — an in-process MPI-style message-passing runtime.
//!
//! DASSA (IPDPS 2020) is built on MPI: ArrayUDF partitions arrays across
//! ranks, the communication-avoiding VCA reader ends in an all-to-all
//! exchange, and the collective-per-file reader issues one broadcast per
//! file. Real MPI needs a cluster and `mpirun`; this crate reproduces the
//! MPI *programming model* inside one process so the exact same rank logic
//! runs and is testable anywhere:
//!
//! * [`run`] spawns `n` ranks as OS threads and hands each a [`Comm`];
//! * point-to-point [`Comm::send`] / [`Comm::recv`] with tag matching and
//!   an unexpected-message queue, like a real MPI progress engine;
//! * textbook collectives built on p2p — binomial-tree
//!   [`Comm::bcast`], dissemination [`Comm::barrier`], [`Comm::gather`],
//!   ring [`Comm::allgather`], [`Comm::scatter`], [`Comm::reduce`],
//!   [`Comm::allreduce`], pairwise [`Comm::alltoall`] /
//!   [`Comm::alltoallv`] — so message counts match what a classic MPI
//!   implementation would issue;
//! * per-world [`CommStats`] counting messages, bytes, and collective
//!   calls. The DASSA performance model consumes these counters to price
//!   runs at supercomputer scale.
//!
//! # Example
//! ```
//! // Sum of ranks via allreduce, on 4 ranks.
//! let results = minimpi::run(4, |comm| {
//!     comm.allreduce(comm.rank() as u64, |a, b| a + b)
//! });
//! assert_eq!(results, vec![6, 6, 6, 6]);
//! ```

mod collectives;
mod comm;
mod error;
mod nonblocking;
mod stats;

pub use collectives::WirePayload;
pub use comm::{
    run, run_chaos, run_chaos_in_registry, run_in_registry, run_with_stats, Comm, RecvError,
};
pub use error::{CommError, RetryPolicy};
pub use nonblocking::RecvRequest;
pub use stats::{names as metric_names, CommStats, StatsSnapshot};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier();
            comm.allreduce(5u32, |a, b| a + b)
        });
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn results_are_in_rank_order() {
        let out = run(8, |comm| comm.rank() * 10);
        assert_eq!(out, (0..8).map(|r| r * 10).collect::<Vec<_>>());
    }
}
