//! Communication counters.
//!
//! DASSA's evaluation hinges on *how many* messages each I/O strategy
//! issues (O(n) broadcasts for collective-per-file vs O(n/p) exchange
//! steps for communication-avoiding). These counters make that claim
//! testable, and feed the `perfmodel` crate's at-scale cost estimates.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe communication counters for one world.
#[derive(Debug, Default)]
pub struct CommStats {
    pub(crate) p2p_messages: AtomicU64,
    pub(crate) p2p_bytes: AtomicU64,
    pub(crate) barriers: AtomicU64,
    pub(crate) bcasts: AtomicU64,
    pub(crate) gathers: AtomicU64,
    pub(crate) allgathers: AtomicU64,
    pub(crate) scatters: AtomicU64,
    pub(crate) reduces: AtomicU64,
    pub(crate) allreduces: AtomicU64,
    pub(crate) alltoalls: AtomicU64,
    pub(crate) alltoallvs: AtomicU64,
}

impl CommStats {
    pub(crate) fn count_message(&self, bytes: usize) {
        self.p2p_messages.fetch_add(1, Ordering::Relaxed);
        self.p2p_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// An immutable snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            p2p_messages: self.p2p_messages.load(Ordering::Relaxed),
            p2p_bytes: self.p2p_bytes.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            bcasts: self.bcasts.load(Ordering::Relaxed),
            gathers: self.gathers.load(Ordering::Relaxed),
            allgathers: self.allgathers.load(Ordering::Relaxed),
            scatters: self.scatters.load(Ordering::Relaxed),
            reduces: self.reduces.load(Ordering::Relaxed),
            allreduces: self.allreduces.load(Ordering::Relaxed),
            alltoalls: self.alltoalls.load(Ordering::Relaxed),
            alltoallvs: self.alltoallvs.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`CommStats`].
///
/// Collective counters count *calls per rank* (a bcast on an 8-rank world
/// bumps `bcasts` by 8, once per participating rank).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub p2p_messages: u64,
    pub p2p_bytes: u64,
    pub barriers: u64,
    pub bcasts: u64,
    pub gathers: u64,
    pub allgathers: u64,
    pub scatters: u64,
    pub reduces: u64,
    pub allreduces: u64,
    pub alltoalls: u64,
    pub alltoallvs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let s = CommStats::default();
        s.count_message(100);
        s.count_message(50);
        let snap = s.snapshot();
        assert_eq!(snap.p2p_messages, 2);
        assert_eq!(snap.p2p_bytes, 150);
    }
}
