//! Communication counters, backed by the `obs` observability registry.
//!
//! DASSA's evaluation hinges on *how many* messages each I/O strategy
//! issues (O(n) broadcasts for collective-per-file vs O(n/p) exchange
//! steps for communication-avoiding). These counters make that claim
//! testable, and feed the `perfmodel` crate's at-scale cost estimates.
//!
//! Every world owns a child of the global [`obs`] registry: counters are
//! queryable by name (`minimpi.p2p.messages`, `minimpi.coll.bcasts`, …)
//! in the world's own registry — isolated from concurrently running
//! worlds — while also aggregating into [`obs::global`] for process-wide
//! exports like `das_pipeline --metrics`.

use obs::{Counter, Histogram, Registry};
use std::sync::Arc;

/// Metric names, one per field of [`StatsSnapshot`] plus a per-message
/// size histogram.
pub mod names {
    pub const P2P_MESSAGES: &str = "minimpi.p2p.messages";
    pub const P2P_BYTES: &str = "minimpi.p2p.bytes";
    /// Histogram of per-message payload sizes in bytes.
    pub const P2P_MESSAGE_BYTES: &str = "minimpi.p2p.message_bytes";
    pub const BARRIERS: &str = "minimpi.coll.barriers";
    pub const BCASTS: &str = "minimpi.coll.bcasts";
    pub const GATHERS: &str = "minimpi.coll.gathers";
    pub const ALLGATHERS: &str = "minimpi.coll.allgathers";
    pub const SCATTERS: &str = "minimpi.coll.scatters";
    pub const REDUCES: &str = "minimpi.coll.reduces";
    pub const ALLREDUCES: &str = "minimpi.coll.allreduces";
    pub const ALLTOALLS: &str = "minimpi.coll.alltoalls";
    pub const ALLTOALLVS: &str = "minimpi.coll.alltoallvs";
    /// Receive attempts that had to be repeated (timeouts waited out and
    /// injected message drops) before a fallible collective succeeded or
    /// gave up.
    pub const RETRIES: &str = "minimpi.retries";
    /// Sends swallowed because this rank is dead under a fault plan, or
    /// because the destination already left a bounded-policy world.
    pub const SUPPRESSED_SENDS: &str = "minimpi.send.suppressed";
}

/// Shared, thread-safe communication counters for one world.
///
/// A thin bundle of [`obs::Counter`] handles into the world's registry;
/// the same values are reachable by name through
/// [`CommStats::registry`].
pub struct CommStats {
    registry: Arc<Registry>,
    pub(crate) p2p_messages: Counter,
    pub(crate) p2p_bytes: Counter,
    pub(crate) p2p_message_bytes: Histogram,
    pub(crate) barriers: Counter,
    pub(crate) bcasts: Counter,
    pub(crate) gathers: Counter,
    pub(crate) allgathers: Counter,
    pub(crate) scatters: Counter,
    pub(crate) reduces: Counter,
    pub(crate) allreduces: Counter,
    pub(crate) alltoalls: Counter,
    pub(crate) alltoallvs: Counter,
    pub(crate) retries: Counter,
    pub(crate) suppressed_sends: Counter,
}

impl CommStats {
    /// Bundle counter handles for `registry`.
    pub fn in_registry(registry: Arc<Registry>) -> CommStats {
        CommStats {
            p2p_messages: registry.counter(names::P2P_MESSAGES),
            p2p_bytes: registry.counter(names::P2P_BYTES),
            p2p_message_bytes: registry.histogram(names::P2P_MESSAGE_BYTES),
            barriers: registry.counter(names::BARRIERS),
            bcasts: registry.counter(names::BCASTS),
            gathers: registry.counter(names::GATHERS),
            allgathers: registry.counter(names::ALLGATHERS),
            scatters: registry.counter(names::SCATTERS),
            reduces: registry.counter(names::REDUCES),
            allreduces: registry.counter(names::ALLREDUCES),
            alltoalls: registry.counter(names::ALLTOALLS),
            alltoallvs: registry.counter(names::ALLTOALLVS),
            retries: registry.counter(names::RETRIES),
            suppressed_sends: registry.counter(names::SUPPRESSED_SENDS),
            registry,
        }
    }

    /// The registry these counters live in (one per world).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    pub(crate) fn count_message(&self, bytes: usize) {
        self.p2p_messages.inc();
        self.p2p_bytes.add(bytes as u64);
        self.p2p_message_bytes.record(bytes as u64);
    }

    /// An immutable snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            p2p_messages: self.p2p_messages.get(),
            p2p_bytes: self.p2p_bytes.get(),
            barriers: self.barriers.get(),
            bcasts: self.bcasts.get(),
            gathers: self.gathers.get(),
            allgathers: self.allgathers.get(),
            scatters: self.scatters.get(),
            reduces: self.reduces.get(),
            allreduces: self.allreduces.get(),
            alltoalls: self.alltoalls.get(),
            alltoallvs: self.alltoallvs.get(),
            retries: self.retries.get(),
            suppressed_sends: self.suppressed_sends.get(),
        }
    }
}

impl Default for CommStats {
    /// Standalone counters in a fresh registry parented to
    /// [`obs::global`], as used by [`crate::run`] for each new world.
    fn default() -> CommStats {
        CommStats::in_registry(Arc::new(Registry::with_parent(Arc::clone(obs::global()))))
    }
}

impl std::fmt::Debug for CommStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommStats")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// Plain-data snapshot of [`CommStats`].
///
/// Collective counters count *calls per rank* (a bcast on an 8-rank world
/// bumps `bcasts` by 8, once per participating rank).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub p2p_messages: u64,
    pub p2p_bytes: u64,
    pub barriers: u64,
    pub bcasts: u64,
    pub gathers: u64,
    pub allgathers: u64,
    pub scatters: u64,
    pub reduces: u64,
    pub allreduces: u64,
    pub alltoalls: u64,
    pub alltoallvs: u64,
    /// Repeated receive attempts in fallible collectives (see
    /// [`names::RETRIES`]).
    pub retries: u64,
    /// Sends swallowed by dead ranks or departed receivers (see
    /// [`names::SUPPRESSED_SENDS`]).
    pub suppressed_sends: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counts() {
        let s = CommStats::default();
        s.count_message(100);
        s.count_message(50);
        let snap = s.snapshot();
        assert_eq!(snap.p2p_messages, 2);
        assert_eq!(snap.p2p_bytes, 150);
    }

    #[test]
    fn counters_are_queryable_by_name() {
        let registry = Arc::new(Registry::new());
        let s = CommStats::in_registry(Arc::clone(&registry));
        s.count_message(64);
        s.bcasts.inc();
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::P2P_MESSAGES), 1);
        assert_eq!(snap.counter(names::P2P_BYTES), 64);
        assert_eq!(snap.counter(names::BCASTS), 1);
        let sizes = snap.histogram(names::P2P_MESSAGE_BYTES).expect("histogram");
        assert_eq!((sizes.count, sizes.sum), (1, 64));
    }
}
