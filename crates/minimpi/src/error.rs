//! Typed communication errors and the bounded retry policy.
//!
//! The infallible collectives ([`crate::Comm::bcast`] & co.) keep MPI's
//! classic contract: block forever, panic on misuse. Production DAS
//! ingest cannot afford either, so every collective also has a `try_*`
//! form returning [`CommError`]; how patiently those wait is governed by
//! a [`RetryPolicy`] fixed per world at construction time
//! ([`crate::run_chaos`]).

use std::fmt;
use std::time::Duration;

/// Why a fallible collective gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No message arrived from `src` within the retry budget — how a
    /// dead or wedged peer manifests to the ranks still alive.
    Timeout {
        /// The rank we were waiting on.
        src: usize,
        /// Receive attempts made before giving up.
        attempts: u32,
    },
    /// This rank itself is dead under the active fault plan; its
    /// collectives refuse immediately rather than half-participating.
    RankDead(usize),
    /// The collective was misused (e.g. a non-root supplied no value) or
    /// a payload arrived with the wrong type.
    Protocol(&'static str),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { src, attempts } => {
                write!(f, "no message from rank {src} after {attempts} attempts")
            }
            CommError::RankDead(rank) => write!(f, "rank {rank} is dead"),
            CommError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for CommError {}

/// How long a fallible receive waits and how often it retries.
///
/// Attempt `i` waits `base_timeout << i` (exponential backoff), so the
/// total patience for `attempts = 3`, `base_timeout = 25ms` is
/// 25 + 50 + 100 = 175 ms before [`CommError::Timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Receive attempts per message (≥ 1).
    pub attempts: u32,
    /// Deadline of the first attempt; `None` waits forever (the classic
    /// MPI behaviour — retries and fault drops are then meaningless).
    pub base_timeout: Option<Duration>,
}

impl RetryPolicy {
    /// Wait forever, never retry: the behaviour of [`crate::run`] worlds.
    pub fn blocking() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            base_timeout: None,
        }
    }

    /// Bounded waiting: `attempts` tries starting at `base_timeout`,
    /// doubling each retry.
    pub fn bounded(attempts: u32, base_timeout: Duration) -> RetryPolicy {
        assert!(attempts >= 1, "a policy needs at least one attempt");
        RetryPolicy {
            attempts,
            base_timeout: Some(base_timeout),
        }
    }

    /// Largest exponent `base_timeout` is ever shifted by. Without a
    /// clamp, `1u32 << attempt` is undefined behaviour at `attempt ≥ 32`
    /// (in release builds the shift wraps, so attempt 32 would wait
    /// *less* than attempt 0); with it, every attempt past the boundary
    /// waits the same 2^16 × base — already over a minute at the default
    /// 25 ms base, i.e. effectively "patience exhausted" territory.
    pub const MAX_BACKOFF_SHIFT: u32 = 16;

    /// The deadline for 0-based attempt `i`.
    pub(crate) fn timeout_for(&self, attempt: u32) -> Option<Duration> {
        self.base_timeout
            .map(|t| t.saturating_mul(1u32 << attempt.min(Self::MAX_BACKOFF_SHIFT)))
    }
}

impl Default for RetryPolicy {
    /// Three attempts starting at 25 ms — tight enough that a chaos test
    /// over many seeds finishes quickly, patient enough that an injected
    /// sub-millisecond delay never times out.
    fn default() -> RetryPolicy {
        RetryPolicy::bounded(3, Duration::from_millis(25))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles() {
        let p = RetryPolicy::bounded(3, Duration::from_millis(10));
        assert_eq!(p.timeout_for(0), Some(Duration::from_millis(10)));
        assert_eq!(p.timeout_for(1), Some(Duration::from_millis(20)));
        assert_eq!(p.timeout_for(2), Some(Duration::from_millis(40)));
    }

    #[test]
    fn backoff_clamps_at_shift_boundary() {
        let p = RetryPolicy::bounded(u32::MAX, Duration::from_millis(10));
        let at_boundary = p.timeout_for(RetryPolicy::MAX_BACKOFF_SHIFT).unwrap();
        // The shift stops growing exactly at the boundary…
        assert_eq!(
            at_boundary,
            Duration::from_millis(10) * (1 << RetryPolicy::MAX_BACKOFF_SHIFT)
        );
        // …and every later attempt (including ones that would shift the
        // multiplier clean out of u32) waits the same clamped deadline.
        assert_eq!(
            p.timeout_for(RetryPolicy::MAX_BACKOFF_SHIFT + 1),
            Some(at_boundary)
        );
        assert_eq!(p.timeout_for(31), Some(at_boundary));
        assert_eq!(p.timeout_for(32), Some(at_boundary));
        assert_eq!(p.timeout_for(u32::MAX), Some(at_boundary));
    }

    #[test]
    fn backoff_saturates_huge_base() {
        // A base near Duration::MAX must saturate, not overflow.
        let p = RetryPolicy::bounded(4, Duration::MAX - Duration::from_secs(1));
        assert_eq!(p.timeout_for(u32::MAX), Some(Duration::MAX));
    }

    #[test]
    fn blocking_never_times_out() {
        assert_eq!(RetryPolicy::blocking().timeout_for(5), None);
    }

    #[test]
    fn errors_render() {
        let e = CommError::Timeout {
            src: 3,
            attempts: 2,
        };
        assert!(e.to_string().contains("rank 3"));
        assert!(CommError::RankDead(1).to_string().contains("dead"));
    }
}
