//! Non-blocking point-to-point operations (`MPI_Isend`/`MPI_Irecv`
//! analogues).
//!
//! minimpi's sends are already buffered-eager (they never block), so
//! `isend` is primarily about symmetry; `irecv` however lets a rank
//! post a receive, keep computing, and complete it later — the overlap
//! pattern real DAS pipelines use to hide halo-exchange latency behind
//! stencil computation.

use crate::comm::{Comm, RecvError};
use std::time::Duration;

/// A pending receive posted by [`Comm::irecv`].
///
/// Completion is pull-based: call [`RecvRequest::test`] to poll or
/// [`RecvRequest::wait`] to block. (A real MPI would progress in the
/// background; the semantics visible to the caller are the same.)
pub struct RecvRequest<'c, T> {
    comm: &'c Comm,
    src: usize,
    tag: u32,
    done: Option<T>,
}

impl<'c, T: Send + 'static> RecvRequest<'c, T> {
    /// Has a matching message arrived? Completes the request when so.
    pub fn test(&mut self) -> bool {
        if self.done.is_some() {
            return true;
        }
        match self
            .comm
            .recv_timeout::<T>(self.src, self.tag, Duration::ZERO)
        {
            Ok(v) => {
                self.done = Some(v);
                true
            }
            Err(RecvError::Timeout) => false,
            Err(RecvError::TypeMismatch) => {
                panic!(
                    "irecv type mismatch from rank {} tag {}",
                    self.src, self.tag
                )
            }
        }
    }

    /// Block until the message arrives and return it.
    pub fn wait(mut self) -> T {
        if let Some(v) = self.done.take() {
            return v;
        }
        self.comm.recv(self.src, self.tag)
    }

    /// Wait with a deadline.
    pub fn wait_timeout(mut self, timeout: Duration) -> Result<T, RecvError> {
        if let Some(v) = self.done.take() {
            return Ok(v);
        }
        self.comm.recv_timeout(self.src, self.tag, timeout)
    }
}

impl Comm {
    /// Post a non-blocking send. Functionally identical to
    /// [`Comm::send`] (sends are eager-buffered), provided for MPI
    /// idiom parity.
    pub fn isend<T: Send + 'static>(&self, dst: usize, tag: u32, value: T) {
        self.send(dst, tag, value);
    }

    /// Post a non-blocking receive; complete it with
    /// [`RecvRequest::wait`] or poll with [`RecvRequest::test`].
    pub fn irecv<T: Send + 'static>(&self, src: usize, tag: u32) -> RecvRequest<'_, T> {
        RecvRequest {
            comm: self,
            src,
            tag,
            done: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::run;
    use std::time::Duration;

    #[test]
    fn irecv_overlaps_with_computation() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                // Post the receive first, "compute", then complete.
                let req = comm.irecv::<u64>(1, 5);
                let local: u64 = (0..1000).sum();
                let remote = req.wait();
                local + remote
            } else {
                comm.isend(0, 5, 42u64);
                0
            }
        });
        assert_eq!(out[0], 499_500 + 42);
    }

    #[test]
    fn test_polls_without_blocking() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                let mut req = comm.irecv::<String>(1, 9);
                let mut polls = 0u32;
                while !req.test() {
                    polls += 1;
                    std::thread::yield_now();
                    if polls > 10_000_000 {
                        panic!("message never arrived");
                    }
                }
                req.wait()
            } else {
                std::thread::sleep(Duration::from_millis(10));
                comm.isend(0, 9, "late".to_string());
                String::new()
            }
        });
        assert_eq!(out[0], "late");
    }

    #[test]
    fn completed_request_waits_instantly() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                let mut req = comm.irecv::<i32>(1, 1);
                // Spin until test() observes the message…
                while !req.test() {
                    std::thread::yield_now();
                }
                // …then wait() must return the already-captured value.
                req.wait()
            } else {
                comm.isend(0, 1, 7);
                0
            }
        });
        assert_eq!(out[0], 7);
    }

    #[test]
    fn wait_timeout_reports_missing_peer() {
        let out = run(2, |comm| {
            if comm.rank() == 0 {
                comm.irecv::<u8>(1, 77)
                    .wait_timeout(Duration::from_millis(20))
                    .is_err()
            } else {
                true // never sends on tag 77
            }
        });
        assert!(out[0]);
    }

    #[test]
    fn multiple_outstanding_receives_complete_in_any_order() {
        let out = run(3, |comm| {
            if comm.rank() == 0 {
                let r2 = comm.irecv::<u32>(2, 0);
                let r1 = comm.irecv::<u32>(1, 0);
                // Complete in reverse posting order.
                let a = r1.wait();
                let b = r2.wait();
                vec![a, b]
            } else {
                comm.isend(0, 0, comm.rank() as u32 * 100);
                vec![]
            }
        });
        assert_eq!(out[0], vec![100, 200]);
    }
}
