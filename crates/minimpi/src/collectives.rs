//! Collective operations built on point-to-point messaging.
//!
//! Algorithms follow the classic MPICH implementations (binomial trees,
//! dissemination barrier, ring allgather, pairwise all-to-all) so that the
//! *message counts* observed through [`crate::CommStats`] match what the
//! DASSA paper reasons about — e.g. the "merge-read-broadcast" pattern of
//! collective I/O costing one broadcast per file.
//!
//! Every collective comes in two forms. The classic form (`bcast`,
//! `allgather`, …) keeps MPI's contract: block until done, panic on
//! misuse. The fallible `try_*` form returns [`CommError`] instead —
//! misuse is [`CommError::Protocol`], a rank killed by the world's fault
//! plan refuses with [`CommError::RankDead`], and in a bounded-policy
//! world ([`crate::run_chaos`]) a silent peer surfaces as
//! [`CommError::Timeout`] after the retry budget, never as a hang. The
//! classic forms are thin wrappers that panic on the error the `try_*`
//! core reports.

use crate::comm::{Comm, INTERNAL_TAG_BASE};
use crate::error::CommError;

/// Heap payloads with a known wire size.
///
/// The in-process transport moves values by `clone()` (often an `Arc`
/// bump), so [`crate::CommStats`] byte counters need the payload itself
/// to report how many bytes it would occupy on a real wire.
/// [`Comm::bcast_payload`] and [`Comm::alltoallv_payload`] use this to
/// move reference-counted buffers zero-copy while keeping the byte
/// accounting identical to the equivalent `Vec<T>` transfer.
pub trait WirePayload {
    /// Bytes this value would occupy on a real wire.
    fn wire_bytes(&self) -> usize;
}

impl<T> WirePayload for Vec<T> {
    fn wire_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
    }
}

impl<T: WirePayload> WirePayload for Option<T> {
    fn wire_bytes(&self) -> usize {
        self.as_ref().map_or(0, WirePayload::wire_bytes)
    }
}

impl<T: WirePayload> WirePayload for std::sync::Arc<T> {
    fn wire_bytes(&self) -> usize {
        self.as_ref().wire_bytes()
    }
}

/// Collective kinds, embedded in internal tags.
#[derive(Clone, Copy)]
#[repr(u64)]
enum Kind {
    Barrier = 1,
    Bcast,
    Gather,
    Allgather,
    Scatter,
    Reduce,
    Alltoall,
    Alltoallv,
}

/// Deterministic identity of one receive edge of one collective round:
/// the internal tag (kind, per-rank sequence, round) mixed with both
/// endpoints. Fault plans key injected message drops and delays off
/// this, so a given (seed, collective, edge) always behaves the same.
fn edge_key(tag: u64, src: usize, dst: usize) -> u64 {
    tag ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (dst as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

impl Comm {
    /// Build the internal tag for round `round` of the current collective.
    /// All ranks must invoke collectives in the same order (an MPI
    /// requirement too), which keeps their per-rank sequence counters in
    /// lock-step.
    fn coll_tag(&self, kind: Kind, seq: u64, round: u64) -> u64 {
        INTERNAL_TAG_BASE + ((kind as u64) << 56) + (seq << 8) + round
    }

    fn next_seq(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        seq
    }

    /// `MPI_Barrier`: dissemination algorithm, ⌈log₂ p⌉ rounds.
    pub fn barrier(&self) {
        self.try_barrier()
            .unwrap_or_else(|e| panic!("barrier failed: {e}"))
    }

    /// Fallible [`Comm::barrier`].
    pub fn try_barrier(&self) -> Result<(), CommError> {
        self.check_alive()?;
        let _span = obs::span_in(self.registry(), "minimpi.barrier");
        let seq = self.next_seq();
        self.stats().barriers.inc();
        let (rank, size) = (self.rank(), self.size());
        let mut round = 0u64;
        let mut dist = 1usize;
        while dist < size {
            let tag = self.coll_tag(Kind::Barrier, seq, round);
            let dst = (rank + dist) % size;
            let src = (rank + size - dist) % size;
            self.send_internal(dst, tag, (), 0);
            self.recv_coll::<()>(src, tag, edge_key(tag, src, rank))?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// `MPI_Bcast`: binomial tree from `root`. The root passes
    /// `Some(value)`, everyone else `None`; all ranks return the value.
    ///
    /// Byte accounting uses `size_of::<T>()`; for heap payloads use
    /// [`Comm::bcast_vec`] so [`crate::CommStats`] sees the true volume.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        self.try_bcast(root, value)
            .unwrap_or_else(|e| panic!("bcast failed: {e}"))
    }

    /// [`Comm::bcast`] for vectors, counting the real payload volume.
    pub fn bcast_vec<T: Clone + Send + 'static>(
        &self,
        root: usize,
        value: Option<Vec<T>>,
    ) -> Vec<T> {
        self.try_bcast_vec(root, value)
            .unwrap_or_else(|e| panic!("bcast failed: {e}"))
    }

    /// Fallible [`Comm::bcast`].
    pub fn try_bcast<T: Clone + Send + 'static>(
        &self,
        root: usize,
        value: Option<T>,
    ) -> Result<T, CommError> {
        self.try_bcast_with_size(root, value, |_| std::mem::size_of::<T>())
    }

    /// Fallible [`Comm::bcast_vec`].
    pub fn try_bcast_vec<T: Clone + Send + 'static>(
        &self,
        root: usize,
        value: Option<Vec<T>>,
    ) -> Result<Vec<T>, CommError> {
        self.try_bcast_with_size(root, value, |v| v.len() * std::mem::size_of::<T>())
    }

    /// [`Comm::bcast`] for [`WirePayload`] values: the transfer is a
    /// `clone()` per tree edge (an `Arc` bump for shared buffers), while
    /// byte counters record [`WirePayload::wire_bytes`] — the same volume
    /// the equivalent `bcast_vec` would report.
    pub fn bcast_payload<T: WirePayload + Clone + Send + 'static>(
        &self,
        root: usize,
        value: Option<T>,
    ) -> T {
        self.try_bcast_payload(root, value)
            .unwrap_or_else(|e| panic!("bcast failed: {e}"))
    }

    /// Fallible [`Comm::bcast_payload`].
    pub fn try_bcast_payload<T: WirePayload + Clone + Send + 'static>(
        &self,
        root: usize,
        value: Option<T>,
    ) -> Result<T, CommError> {
        self.try_bcast_with_size(root, value, T::wire_bytes)
    }

    fn try_bcast_with_size<T, S>(
        &self,
        root: usize,
        value: Option<T>,
        sizer: S,
    ) -> Result<T, CommError>
    where
        T: Clone + Send + 'static,
        S: Fn(&T) -> usize,
    {
        self.check_alive()?;
        let seq = self.next_seq();
        self.stats().bcasts.inc();
        let _span = obs::span_in(self.registry(), "minimpi.bcast");
        let (rank, size) = (self.rank(), self.size());
        if root >= size {
            return Err(CommError::Protocol("bcast root out of range"));
        }
        let vrank = (rank + size - root) % size;
        let tag = self.coll_tag(Kind::Bcast, seq, 0);

        let value = if rank == root {
            value.ok_or(CommError::Protocol("bcast root must supply a value"))?
        } else {
            // Receive from the parent in the binomial tree.
            let mut mask = 1usize;
            loop {
                debug_assert!(mask < size);
                if vrank & mask != 0 {
                    let src = (rank + size - mask) % size;
                    break self.recv_coll::<T>(src, tag, edge_key(tag, src, rank))?;
                }
                mask <<= 1;
            }
        };
        // Forward down the tree.
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask != 0 {
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < size {
                let dst = (rank + mask) % size;
                let bytes = sizer(&value);
                self.send_internal(dst, tag, value.clone(), bytes);
            }
            mask >>= 1;
        }
        Ok(value)
    }

    /// `MPI_Gather`: every rank contributes `value`; the root returns
    /// `Some(vec)` in rank order, others `None`.
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        self.try_gather(root, value)
            .unwrap_or_else(|e| panic!("gather failed: {e}"))
    }

    /// Fallible [`Comm::gather`].
    pub fn try_gather<T: Send + 'static>(
        &self,
        root: usize,
        value: T,
    ) -> Result<Option<Vec<T>>, CommError> {
        self.check_alive()?;
        let seq = self.next_seq();
        self.stats().gathers.inc();
        let _span = obs::span_in(self.registry(), "minimpi.gather");
        let tag = self.coll_tag(Kind::Gather, seq, 0);
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.recv_coll(src, tag, edge_key(tag, src, root))?);
                }
            }
            let gathered = out
                .into_iter()
                .map(|v| v.ok_or(CommError::Protocol("gather slot unfilled")))
                .collect::<Result<Vec<T>, _>>()?;
            Ok(Some(gathered))
        } else {
            self.send_internal(root, tag, value, std::mem::size_of::<T>());
            Ok(None)
        }
    }

    /// `MPI_Allgather`: ring algorithm, p−1 rounds; all ranks return the
    /// full vector in rank order.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        self.try_allgather(value)
            .unwrap_or_else(|e| panic!("allgather failed: {e}"))
    }

    /// Fallible [`Comm::allgather`].
    pub fn try_allgather<T: Clone + Send + 'static>(&self, value: T) -> Result<Vec<T>, CommError> {
        self.check_alive()?;
        let seq = self.next_seq();
        self.stats().allgathers.inc();
        let _span = obs::span_in(self.registry(), "minimpi.allgather");
        let (rank, size) = (self.rank(), self.size());
        let mut out: Vec<Option<T>> = (0..size).map(|_| None).collect();
        out[rank] = Some(value);
        let right = (rank + 1) % size;
        let left = (rank + size - 1) % size;
        for round in 0..size.saturating_sub(1) {
            let tag = self.coll_tag(Kind::Allgather, seq, round as u64);
            // In round k we forward the block that originated k hops back.
            let send_origin = (rank + size - round) % size;
            let recv_origin = (rank + size - round - 1) % size;
            let block = out[send_origin]
                .clone()
                .ok_or(CommError::Protocol("allgather ring invariant broken"))?;
            self.send_internal(right, tag, block, std::mem::size_of::<T>());
            out[recv_origin] = Some(self.recv_coll(left, tag, edge_key(tag, left, rank))?);
        }
        out.into_iter()
            .map(|v| v.ok_or(CommError::Protocol("allgather slot unfilled")))
            .collect()
    }

    /// `MPI_Scatter`: the root supplies one element per rank; each rank
    /// returns its own element.
    pub fn scatter<T: Send + 'static>(&self, root: usize, values: Option<Vec<T>>) -> T {
        self.try_scatter(root, values)
            .unwrap_or_else(|e| panic!("scatter failed: {e}"))
    }

    /// Fallible [`Comm::scatter`].
    pub fn try_scatter<T: Send + 'static>(
        &self,
        root: usize,
        values: Option<Vec<T>>,
    ) -> Result<T, CommError> {
        self.check_alive()?;
        let seq = self.next_seq();
        self.stats().scatters.inc();
        let _span = obs::span_in(self.registry(), "minimpi.scatter");
        let tag = self.coll_tag(Kind::Scatter, seq, 0);
        if self.rank() == root {
            let values = values.ok_or(CommError::Protocol("scatter root must supply values"))?;
            if values.len() != self.size() {
                return Err(CommError::Protocol("scatter needs one element per rank"));
            }
            let mut own = None;
            for (dst, v) in values.into_iter().enumerate() {
                if dst == root {
                    own = Some(v);
                } else {
                    self.send_internal(dst, tag, v, std::mem::size_of::<T>());
                }
            }
            own.ok_or(CommError::Protocol("scatter root element missing"))
        } else {
            self.recv_coll(root, tag, edge_key(tag, root, self.rank()))
        }
    }

    /// `MPI_Reduce` with operator `op`: binomial-tree reduction to `root`,
    /// which returns `Some(result)`.
    ///
    /// `op` should be associative; commutativity is also assumed, as by
    /// most MPI implementations for built-in operators.
    pub fn reduce<T, F>(&self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.try_reduce(root, value, op)
            .unwrap_or_else(|e| panic!("reduce failed: {e}"))
    }

    /// Fallible [`Comm::reduce`].
    pub fn try_reduce<T, F>(&self, root: usize, value: T, op: F) -> Result<Option<T>, CommError>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.check_alive()?;
        let seq = self.next_seq();
        self.stats().reduces.inc();
        let _span = obs::span_in(self.registry(), "minimpi.reduce");
        let (rank, size) = (self.rank(), self.size());
        if root >= size {
            return Err(CommError::Protocol("reduce root out of range"));
        }
        let vrank = (rank + size - root) % size;
        let tag = self.coll_tag(Kind::Reduce, seq, 0);
        let mut acc = value;
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask == 0 {
                let peer_v = vrank | mask;
                if peer_v < size {
                    let src = (rank + mask) % size;
                    let other: T = self.recv_coll(src, tag, edge_key(tag, src, rank))?;
                    acc = op(acc, other);
                }
            } else {
                let dst = (rank + size - mask) % size;
                self.send_internal(dst, tag, acc, std::mem::size_of::<T>());
                return Ok(None);
            }
            mask <<= 1;
        }
        debug_assert_eq!(rank, root);
        Ok(Some(acc))
    }

    /// `MPI_Allreduce`: reduce to rank 0 then broadcast (MPICH's default
    /// for large payloads is fancier; the message count here is the
    /// classic 2·log₂ p).
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.try_allreduce(value, op)
            .unwrap_or_else(|e| panic!("allreduce failed: {e}"))
    }

    /// Fallible [`Comm::allreduce`].
    pub fn try_allreduce<T, F>(&self, value: T, op: F) -> Result<T, CommError>
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        self.check_alive()?;
        self.stats().allreduces.inc();
        let _span = obs::span_in(self.registry(), "minimpi.allreduce");
        let reduced = self.try_reduce(0, value, op)?;
        self.try_bcast(0, reduced)
    }

    /// `MPI_Alltoall`: `values[j]` goes to rank `j`; returns the vector
    /// whose element `i` came from rank `i`. Pairwise-exchange algorithm,
    /// p−1 rounds of concurrent disjoint transfers — exactly the
    /// "lots of concurrent transfers among node pairs" the paper's
    /// communication-avoiding method relies on.
    pub fn alltoall<T: Send + 'static>(&self, values: Vec<T>) -> Vec<T> {
        self.try_alltoall(values)
            .unwrap_or_else(|e| panic!("alltoall failed: {e}"))
    }

    /// Fallible [`Comm::alltoall`].
    pub fn try_alltoall<T: Send + 'static>(&self, values: Vec<T>) -> Result<Vec<T>, CommError> {
        self.check_alive()?;
        self.stats().alltoalls.inc();
        let _span = obs::span_in(self.registry(), "minimpi.alltoall");
        let size = self.size();
        if values.len() != size {
            return Err(CommError::Protocol("alltoall needs one element per rank"));
        }
        let mut slots: Vec<Option<T>> = values.into_iter().map(Some).collect();
        let seq = self.next_seq();
        self.try_exchange_pairwise(Kind::Alltoall, seq, &mut slots, |v| {
            std::mem::size_of_val(v)
        })
    }

    /// `MPI_Alltoallv` for variable-size blocks: `buffers[j]` goes to rank
    /// `j`; returns blocks indexed by source rank.
    pub fn alltoallv<T: Send + 'static>(&self, buffers: Vec<Vec<T>>) -> Vec<Vec<T>> {
        self.try_alltoallv(buffers)
            .unwrap_or_else(|e| panic!("alltoallv failed: {e}"))
    }

    /// Fallible [`Comm::alltoallv`].
    pub fn try_alltoallv<T: Send + 'static>(
        &self,
        buffers: Vec<Vec<T>>,
    ) -> Result<Vec<Vec<T>>, CommError> {
        self.check_alive()?;
        self.stats().alltoallvs.inc();
        let _span = obs::span_in(self.registry(), "minimpi.alltoallv");
        let size = self.size();
        if buffers.len() != size {
            return Err(CommError::Protocol("alltoallv needs one buffer per rank"));
        }
        let mut slots: Vec<Option<Vec<T>>> = buffers.into_iter().map(Some).collect();
        let seq = self.next_seq();
        self.try_exchange_pairwise(Kind::Alltoallv, seq, &mut slots, |v| {
            v.len() * std::mem::size_of::<T>()
        })
    }

    /// [`Comm::alltoallv`] for blocks of [`WirePayload`] values: each
    /// block moves by `clone()`-free handoff (the vectors themselves are
    /// sent), with byte counters summing [`WirePayload::wire_bytes`] over
    /// the block instead of `size_of::<T>()` — so tile handles account
    /// for the sample bytes they reference, not the handle size.
    pub fn alltoallv_payload<T: WirePayload + Send + 'static>(
        &self,
        buffers: Vec<Vec<T>>,
    ) -> Vec<Vec<T>> {
        self.try_alltoallv_payload(buffers)
            .unwrap_or_else(|e| panic!("alltoallv failed: {e}"))
    }

    /// Fallible [`Comm::alltoallv_payload`].
    pub fn try_alltoallv_payload<T: WirePayload + Send + 'static>(
        &self,
        buffers: Vec<Vec<T>>,
    ) -> Result<Vec<Vec<T>>, CommError> {
        self.check_alive()?;
        self.stats().alltoallvs.inc();
        let _span = obs::span_in(self.registry(), "minimpi.alltoallv");
        let size = self.size();
        if buffers.len() != size {
            return Err(CommError::Protocol("alltoallv needs one buffer per rank"));
        }
        let mut slots: Vec<Option<Vec<T>>> = buffers.into_iter().map(Some).collect();
        let seq = self.next_seq();
        self.try_exchange_pairwise(Kind::Alltoallv, seq, &mut slots, |v| {
            v.iter().map(WirePayload::wire_bytes).sum()
        })
    }

    /// Shared pairwise-exchange engine for alltoall(v).
    fn try_exchange_pairwise<T, S>(
        &self,
        kind: Kind,
        seq: u64,
        slots: &mut [Option<T>],
        sizer: S,
    ) -> Result<Vec<T>, CommError>
    where
        T: Send + 'static,
        S: Fn(&T) -> usize,
    {
        let (rank, size) = (self.rank(), self.size());
        let mut out: Vec<Option<T>> = (0..size).map(|_| None).collect();
        out[rank] = slots[rank].take();
        for step in 1..size {
            let tag = self.coll_tag(kind, seq, step as u64);
            let dst = (rank + step) % size;
            let src = (rank + size - step) % size;
            let block = slots[dst]
                .take()
                .ok_or(CommError::Protocol("pairwise block already sent"))?;
            let bytes = sizer(&block);
            self.send_internal(dst, tag, block, bytes);
            out[src] = Some(self.recv_coll(src, tag, edge_key(tag, src, rank))?);
        }
        out.into_iter()
            .map(|v| v.ok_or(CommError::Protocol("pairwise exchange incomplete")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{run, run_chaos, run_with_stats, CommError, RetryPolicy};
    use faultline::{site, FaultPlan};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn barrier_completes_on_many_sizes() {
        for p in [1usize, 2, 3, 5, 8] {
            run(p, |comm| {
                for _ in 0..3 {
                    comm.barrier();
                }
            });
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for p in [1usize, 2, 3, 4, 7] {
            for root in 0..p {
                let out = run(p, |comm| {
                    let v = if comm.rank() == root {
                        Some(format!("hello-{root}"))
                    } else {
                        None
                    };
                    comm.bcast(root, v)
                });
                assert!(out.iter().all(|s| s == &format!("hello-{root}")));
            }
        }
    }

    #[test]
    fn bcast_message_count_is_p_minus_1() {
        let (_, stats) = run_with_stats(8, |comm| {
            let v = if comm.rank() == 0 { Some(1u8) } else { None };
            comm.bcast(0, v);
        });
        assert_eq!(stats.p2p_messages, 7);
    }

    #[test]
    fn gather_in_rank_order() {
        let out = run(5, |comm| comm.gather(2, comm.rank() as u32 * 3));
        assert_eq!(out[2], Some(vec![0, 3, 6, 9, 12]));
        assert!(out.iter().enumerate().all(|(r, v)| (r == 2) == v.is_some()));
    }

    #[test]
    fn allgather_ring() {
        for p in [1usize, 2, 4, 6] {
            let out = run(p, |comm| comm.allgather(comm.rank() as u64));
            let expect: Vec<u64> = (0..p as u64).collect();
            assert!(out.iter().all(|v| v == &expect));
        }
    }

    #[test]
    fn scatter_delivers_per_rank() {
        let out = run(4, |comm| {
            let values = if comm.rank() == 1 {
                Some(vec![10, 11, 12, 13])
            } else {
                None
            };
            comm.scatter(1, values)
        });
        assert_eq!(out, vec![10, 11, 12, 13]);
    }

    #[test]
    fn reduce_sum_every_root() {
        for p in [1usize, 3, 4, 6] {
            for root in 0..p {
                let out = run(p, |comm| {
                    comm.reduce(root, comm.rank() as u64 + 1, |a, b| a + b)
                });
                let total: u64 = (1..=p as u64).sum();
                assert_eq!(out[root], Some(total));
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let out = run(6, |comm| {
            comm.allreduce(comm.rank() as i64 * 7 % 5, i64::max)
        });
        assert!(out.iter().all(|&v| v == 4));
    }

    #[test]
    fn alltoall_transpose() {
        let p = 4;
        let out = run(p, |comm| {
            // values[j] = rank * 100 + j
            let values: Vec<usize> = (0..p).map(|j| comm.rank() * 100 + j).collect();
            comm.alltoall(values)
        });
        for (rank, row) in out.iter().enumerate() {
            let expect: Vec<usize> = (0..p).map(|src| src * 100 + rank).collect();
            assert_eq!(row, &expect);
        }
    }

    #[test]
    fn alltoallv_variable_blocks() {
        let p = 3;
        let out = run(p, |comm| {
            // Send `dst + 1` copies of our rank id to each dst.
            let buffers: Vec<Vec<u8>> =
                (0..p).map(|dst| vec![comm.rank() as u8; dst + 1]).collect();
            comm.alltoallv(buffers)
        });
        for (rank, blocks) in out.iter().enumerate() {
            for (src, block) in blocks.iter().enumerate() {
                assert_eq!(block, &vec![src as u8; rank + 1]);
            }
        }
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_talk() {
        let out = run(4, |comm| {
            let a = comm.allreduce(1u32, |x, y| x + y);
            let b = comm.allreduce(2u32, |x, y| x + y);
            let c = comm.allgather(comm.rank());
            (a, b, c)
        });
        for (a, b, c) in out {
            assert_eq!(a, 4);
            assert_eq!(b, 8);
            assert_eq!(c, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn alltoallv_bytes_are_counted() {
        let (_, stats) = run_with_stats(2, |comm| {
            comm.alltoallv(vec![vec![0u64; 10], vec![0u64; 20]]);
        });
        // Each rank sends one off-diagonal block.
        assert_eq!(stats.alltoallvs, 2);
        assert!(stats.p2p_bytes >= 2 * 8 * 10);
    }

    #[test]
    fn payload_collectives_match_vec_forms_and_byte_counts() {
        use crate::collectives::WirePayload;
        use std::sync::Arc;

        /// Stand-in for a zero-copy tile: a shared buffer plus a row
        /// window, reporting the referenced bytes as its wire size.
        #[derive(Clone)]
        struct Window {
            buf: Arc<Vec<f32>>,
            lo: usize,
            hi: usize,
        }
        impl WirePayload for Window {
            fn wire_bytes(&self) -> usize {
                (self.hi - self.lo) * std::mem::size_of::<f32>()
            }
        }

        let p = 3;
        let (vec_out, vec_stats) = run_with_stats(p, |comm| {
            let payload = (comm.rank() == 1).then(|| vec![comm.rank() as f32; 40]);
            comm.bcast_vec(1, payload)
        });
        let (pay_out, pay_stats) = run_with_stats(p, |comm| {
            let payload = (comm.rank() == 1).then(|| {
                Arc::new(Window {
                    buf: Arc::new(vec![comm.rank() as f32; 40]),
                    lo: 0,
                    hi: 40,
                })
            });
            comm.bcast_payload(1, payload)
        });
        assert!(pay_out
            .iter()
            .all(|w| w.buf[w.lo..w.hi] == vec_out[0][..] && w.wire_bytes() == 160));
        assert_eq!(pay_stats.p2p_bytes, vec_stats.p2p_bytes);
        assert_eq!(pay_stats.p2p_messages, vec_stats.p2p_messages);
        assert_eq!(pay_stats.bcasts, vec_stats.bcasts);

        let (vec_out, vec_stats) = run_with_stats(p, |comm| {
            let buffers: Vec<Vec<f32>> = (0..p)
                .map(|dst| vec![comm.rank() as f32; (dst + 1) * 5])
                .collect();
            comm.alltoallv(buffers)
        });
        let (win_out, win_stats) = run_with_stats(p, |comm| {
            let buffers: Vec<Vec<Window>> = (0..p)
                .map(|dst| {
                    vec![Window {
                        buf: Arc::new(vec![comm.rank() as f32; (dst + 1) * 5]),
                        lo: 0,
                        hi: (dst + 1) * 5,
                    }]
                })
                .collect();
            comm.alltoallv_payload(buffers)
        });
        for (rank, blocks) in win_out.iter().enumerate() {
            for (src, block) in blocks.iter().enumerate() {
                assert_eq!(block.len(), 1);
                assert_eq!(
                    block[0].buf[block[0].lo..block[0].hi],
                    vec_out[rank][src][..]
                );
            }
        }
        assert_eq!(win_stats.p2p_bytes, vec_stats.p2p_bytes);
        assert_eq!(win_stats.p2p_messages, vec_stats.p2p_messages);
        assert_eq!(win_stats.alltoallvs, vec_stats.alltoallvs);
    }

    #[test]
    fn try_collectives_match_infallible() {
        let out = run(4, |comm| {
            let a = comm
                .try_allreduce(comm.rank() as u64, |x, y| x + y)
                .unwrap();
            let b = comm.try_allgather(comm.rank()).unwrap();
            let c = comm
                .try_bcast(0, (comm.rank() == 0).then_some(9u8))
                .unwrap();
            comm.try_barrier().unwrap();
            let d = comm.try_gather(1, comm.rank() as u32).unwrap();
            (a, b, c, d)
        });
        for (rank, (a, b, c, d)) in out.into_iter().enumerate() {
            assert_eq!(a, 6);
            assert_eq!(b, vec![0, 1, 2, 3]);
            assert_eq!(c, 9);
            assert_eq!(d.is_some(), rank == 1);
        }
    }

    #[test]
    fn try_bcast_reports_misuse_as_protocol_error() {
        let out = run(1, |comm| comm.try_bcast::<u8>(0, None));
        assert!(matches!(out[0], Err(CommError::Protocol(_))));
        let out = run(1, |comm| comm.try_bcast(7, Some(1u8)));
        assert!(matches!(out[0], Err(CommError::Protocol(_))));
    }

    /// A plan under which, on a 2-rank world, rank 1 is dead and rank 0
    /// alive. Found by scanning seeds — deterministic for a fixed
    /// faultline hash function.
    fn plan_killing_rank_1() -> FaultPlan {
        (0u64..)
            .map(|seed| FaultPlan::new(seed).with(site::MINIMPI_RANK_DEAD, 0.5))
            .find(|p| !p.fires(site::MINIMPI_RANK_DEAD, 0) && p.fires(site::MINIMPI_RANK_DEAD, 1))
            .expect("some seed kills exactly rank 1")
    }

    #[test]
    fn dead_rank_turns_collectives_into_errors() {
        let plan = Arc::new(plan_killing_rank_1());
        let policy = RetryPolicy::bounded(2, Duration::from_millis(5));
        let (out, stats) = run_chaos(2, plan, policy, |comm| {
            if comm.rank() == 1 {
                // A dead rank's traffic never reaches the wire.
                comm.send(0, 42, 1u8);
            }
            comm.try_bcast(1, Some(comm.rank() as u32))
        });
        // The dead root refuses; the survivor gives up after its bounded
        // retries instead of hanging or panicking.
        assert_eq!(out[1], Err(CommError::RankDead(1)));
        assert_eq!(
            out[0],
            Err(CommError::Timeout {
                src: 1,
                attempts: 2
            })
        );
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.suppressed_sends, 1);
    }

    #[test]
    fn dead_rank_fails_every_collective_kind() {
        let plan = Arc::new(plan_killing_rank_1());
        let policy = RetryPolicy::bounded(2, Duration::from_millis(5));
        let (out, _) = run_chaos(2, plan, policy, |comm| {
            if comm.rank() == 1 {
                vec![
                    comm.try_barrier().err(),
                    comm.try_allgather(0u8).err(),
                    comm.try_scatter(0, None::<Vec<u8>>).err(),
                    comm.try_allreduce(1u8, |a, b| a | b).err(),
                    comm.try_alltoallv(vec![vec![0u8]; 2]).err(),
                ]
            } else {
                vec![]
            }
        });
        for err in &out[1] {
            assert_eq!(err.as_ref(), Some(&CommError::RankDead(1)));
        }
    }

    #[test]
    fn injected_drops_retry_then_succeed() {
        // Every edge drops at least one delivery, but drops are capped
        // below the retry budget: results are unchanged, only
        // `minimpi.retries` grows — and deterministically so.
        let plan = Arc::new(FaultPlan::new(7).with(site::MINIMPI_RECV_DROP, 1.0));
        let policy = RetryPolicy::bounded(4, Duration::from_millis(50));
        let mut retry_counts = Vec::new();
        for _ in 0..2 {
            let (out, stats) = run_chaos(2, Arc::clone(&plan), policy, |comm| {
                comm.try_allreduce(comm.rank() as u64 + 1, |a, b| a + b)
            });
            assert_eq!(out, vec![Ok(3), Ok(3)]);
            assert!(stats.retries >= 1);
            retry_counts.push(stats.retries);
        }
        assert_eq!(retry_counts[0], retry_counts[1]);
    }
}
