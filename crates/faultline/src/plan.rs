//! The seeded fault plan: sites, rates, and the deterministic roll.

use std::collections::BTreeMap;
use std::fmt;

/// Rates are stored in parts-per-[`RATE_DENOM`] so that plans compare,
/// hash, and round-trip exactly (no floating-point spec drift).
pub const RATE_DENOM: u64 = 1_000_000;

/// A seeded, deterministic fault plan: site name → firing rate.
///
/// All randomness derives from [`FaultPlan::seed`] via a splitmix64-style
/// hash of `(seed, site, key)`; the plan itself holds no mutable state,
/// so it can be shared (`Arc`) across rank threads without any
/// synchronization or ordering sensitivity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Site → rate in parts-per-[`RATE_DENOM`].
    sites: BTreeMap<String, u64>,
}

/// Errors from [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A clause is not `name=value`.
    Malformed(String),
    /// The numeric part of a clause did not parse.
    BadValue(String),
    /// A rate lies outside `[0, 1]`.
    RateOutOfRange(String),
    /// A site name is not one of [`crate::site::ALL`].
    UnknownSite(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Malformed(c) => write!(f, "malformed clause {c:?} (want name=value)"),
            PlanError::BadValue(c) => write!(f, "bad numeric value in clause {c:?}"),
            PlanError::RateOutOfRange(c) => write!(f, "rate outside [0,1] in clause {c:?}"),
            PlanError::UnknownSite(s) => write!(f, "unknown fault site {s:?}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl FaultPlan {
    /// An empty plan (no site ever fires) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            sites: BTreeMap::new(),
        }
    }

    /// Builder-style: set `site` to fire at `rate` (a fraction in
    /// `[0, 1]`, quantized to parts-per-[`RATE_DENOM`]).
    ///
    /// # Panics
    /// Panics when `rate` is outside `[0, 1]` — plans are authored by
    /// tests and CLI parsing, where that is a programming error.
    pub fn with(mut self, site: &str, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} outside [0,1]");
        self.sites
            .insert(site.to_string(), (rate * RATE_DENOM as f64).round() as u64);
        self
    }

    /// The seed all rolls derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured rate of `site` in parts-per-[`RATE_DENOM`]
    /// (0 when unset).
    pub fn rate_ppm(&self, site: &str) -> u64 {
        self.sites.get(site).copied().unwrap_or(0)
    }

    /// Parse a plan spec: comma-separated `name=value` clauses, e.g.
    /// `"seed=42,dasf.read.err=0.25,minimpi.recv.drop=0.1"`. `seed`
    /// (default 0) takes a `u64`; every other clause must name a known
    /// injection site with a rate in `[0, 1]`.
    pub fn parse(spec: &str) -> Result<FaultPlan, PlanError> {
        let mut plan = FaultPlan::new(0);
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, value) = clause
                .split_once('=')
                .ok_or_else(|| PlanError::Malformed(clause.to_string()))?;
            let (name, value) = (name.trim(), value.trim());
            if name == "seed" {
                plan.seed = value
                    .parse()
                    .map_err(|_| PlanError::BadValue(clause.to_string()))?;
                continue;
            }
            if !crate::site::ALL.contains(&name) {
                return Err(PlanError::UnknownSite(name.to_string()));
            }
            let rate: f64 = value
                .parse()
                .map_err(|_| PlanError::BadValue(clause.to_string()))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(PlanError::RateOutOfRange(clause.to_string()));
            }
            plan.sites
                .insert(name.to_string(), (rate * RATE_DENOM as f64).round() as u64);
        }
        Ok(plan)
    }

    /// Render the plan as a spec [`FaultPlan::parse`] accepts;
    /// `parse(to_spec())` reproduces the plan exactly.
    pub fn to_spec(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for (site, ppm) in &self.sites {
            out.push_str(&format!(",{site}={}", *ppm as f64 / RATE_DENOM as f64));
        }
        out
    }

    /// The deterministic 64-bit roll for `(site, key)` — uniform over
    /// `u64`, independent of any other `(site, key)` pair.
    pub fn roll(&self, site: &str, key: u64) -> u64 {
        splitmix64(self.seed ^ fnv1a(site.as_bytes()) ^ splitmix64(key))
    }

    /// Does `site` fire for `key` under this plan?
    pub fn fires(&self, site: &str, key: u64) -> bool {
        let ppm = self.rate_ppm(site);
        ppm > 0 && self.roll(site, key) % RATE_DENOM < ppm
    }

    /// A deterministic value in `0..n` for `(site, key)`, decorrelated
    /// from [`FaultPlan::fires`] on the same pair. Used to size injected
    /// latencies and transient-failure counts.
    pub fn value_below(&self, site: &str, key: u64, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // A second mix round keeps this independent of the fire roll.
        splitmix64(self.roll(site, key)) % n
    }
}

/// Derive a stable injection key from an identifier (e.g. a file name).
///
/// Hooks that have no natural integer key hash a stable name instead —
/// DAS minute-file names encode timestamps, so the same file keys the
/// same faults in every run and in every read strategy.
pub fn key_of(name: &[u8]) -> u64 {
    fnv1a(name)
}

/// Fowler–Noll–Vo 1a, used to fold site names into the hash stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Sebastiano Vigna's splitmix64 finalizer: a cheap, well-mixed
/// bijection on `u64`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::new(123);
        for key in 0..1000 {
            assert!(!plan.fires(site::DASF_READ_ERR, key));
        }
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let always = FaultPlan::new(5).with(site::PAR_READ_FILE, 1.0);
        let never = FaultPlan::new(5).with(site::PAR_READ_FILE, 0.0);
        for key in 0..1000 {
            assert!(always.fires(site::PAR_READ_FILE, key));
            assert!(!never.fires(site::PAR_READ_FILE, key));
        }
    }

    #[test]
    fn firing_rate_tracks_configured_rate() {
        let plan = FaultPlan::new(99).with(site::DASF_READ_ERR, 0.3);
        let n = 20_000;
        let hits = (0..n)
            .filter(|&k| plan.fires(site::DASF_READ_ERR, k))
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn sites_are_independent() {
        let plan = FaultPlan::new(7)
            .with(site::DASF_READ_ERR, 0.5)
            .with(site::DASF_OPEN_ERR, 0.5);
        let agree = (0..4096)
            .filter(|&k| plan.fires(site::DASF_READ_ERR, k) == plan.fires(site::DASF_OPEN_ERR, k))
            .count();
        // Perfect correlation would agree 4096 times; independence ~2048.
        assert!((1700..2400).contains(&agree), "agreement {agree}");
    }

    #[test]
    fn seeds_decorrelate() {
        let a = FaultPlan::new(1).with(site::PAR_READ_FILE, 0.5);
        let b = FaultPlan::new(2).with(site::PAR_READ_FILE, 0.5);
        let differ = (0..4096)
            .filter(|&k| a.fires(site::PAR_READ_FILE, k) != b.fires(site::PAR_READ_FILE, k))
            .count();
        assert!(differ > 1500, "only {differ} rolls differ across seeds");
    }

    #[test]
    fn spec_round_trip_is_exact() {
        let plan = FaultPlan::new(42)
            .with(site::DASF_READ_ERR, 0.25)
            .with(site::MINIMPI_RECV_DROP, 0.125)
            .with(site::PAR_READ_FILE, 1.0);
        let back = FaultPlan::parse(&plan.to_spec()).expect("parse own spec");
        assert_eq!(back, plan);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            FaultPlan::parse("seed"),
            Err(PlanError::Malformed(_))
        ));
        assert!(matches!(
            FaultPlan::parse("seed=abc"),
            Err(PlanError::BadValue(_))
        ));
        assert!(matches!(
            FaultPlan::parse("dasf.read.err=1.5"),
            Err(PlanError::RateOutOfRange(_))
        ));
        assert!(matches!(
            FaultPlan::parse("no.such.site=0.1"),
            Err(PlanError::UnknownSite(_))
        ));
    }

    #[test]
    fn parse_tolerates_whitespace_and_empty_clauses() {
        let plan = FaultPlan::parse(" seed=9 , dasf.read.err = 0.5 ,, ").expect("parse");
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.rate_ppm(site::DASF_READ_ERR), RATE_DENOM / 2);
    }

    #[test]
    fn value_below_is_deterministic_and_bounded() {
        let plan = FaultPlan::new(3).with(site::MINIMPI_RECV_DROP, 1.0);
        for key in 0..100 {
            let v = plan.value_below(site::MINIMPI_RECV_DROP, key, 4);
            assert!(v < 4);
            assert_eq!(v, plan.value_below(site::MINIMPI_RECV_DROP, key, 4));
        }
        assert_eq!(plan.value_below(site::MINIMPI_RECV_DROP, 0, 0), 0);
    }
}
