//! `faultline` — deterministic, seeded fault injection.
//!
//! Production DAS pipelines treat degraded inputs as the normal case:
//! files arrive truncated, disks stall, ranks die mid-collective. Testing
//! graceful degradation with *random* fault injection is worse than
//! useless — a failure you cannot replay is a failure you cannot debug.
//! This crate makes fault schedules a pure function of a seed:
//!
//! * a [`FaultPlan`] maps **named injection sites** (e.g.
//!   [`site::DASF_READ_ERR`]) to firing rates;
//! * whether a site fires for a given *key* (file index, rank id,
//!   collective sequence number…) is decided by hashing
//!   `(seed, site, key)` — no wall clock, no global RNG, no ordering
//!   dependence. Same seed ⇒ byte-identical fault schedule, on any
//!   thread interleaving, in any process;
//! * plans round-trip through a compact text spec
//!   (`"seed=42,dasf.read.err=0.25"`) so a failing chaos run is
//!   reproducible from one CLI flag (`das_pipeline --fault-plan=…`).
//!
//! Instrumented crates (`dasf`, `minimpi`, `dassa`) consult the
//! *active* plan via [`current`]; see [`with_plan`] for scoped
//! (thread-local) activation and [`install_global`] for process-wide
//! activation. With no plan active every hook is a cheap no-op.
//!
//! ```
//! use faultline::{site, FaultPlan};
//!
//! let plan = FaultPlan::parse("seed=7,dasf.read.err=0.5").unwrap();
//! // Purely deterministic: the same (site, key) always agrees.
//! let a = plan.fires(site::DASF_READ_ERR, 3);
//! assert_eq!(a, plan.fires(site::DASF_READ_ERR, 3));
//! // And round-trips through its spec.
//! let again = FaultPlan::parse(&plan.to_spec()).unwrap();
//! assert_eq!(again.fires(site::DASF_READ_ERR, 3), a);
//! ```

mod plan;
mod scope;

pub use plan::{key_of, FaultPlan, PlanError, RATE_DENOM};
pub use scope::{clear_global, current, fires, install_global, value_below, with_plan, PlanGuard};

/// Canonical injection-site names, grouped by the layer that can fail.
///
/// A site name is part of the chaos-test contract: renaming one changes
/// which faults a recorded plan spec reproduces. Add new sites here and
/// document them in DESIGN.md ("Fault injection & chaos testing").
pub mod site {
    /// `dasf::File::open` returns an I/O error. Key: hash of file name.
    pub const DASF_OPEN_ERR: &str = "dasf.open.err";
    /// A dataset read fails with an I/O error. Key: hash of file name.
    pub const DASF_READ_ERR: &str = "dasf.read.err";
    /// A dataset read observes a short (truncated) payload. Key: hash of
    /// file name.
    pub const DASF_READ_SHORT: &str = "dasf.read.short";
    /// Bit-rot: one deterministic byte of the file's payload region is
    /// flipped in every read buffer that covers it — the fault layer
    /// does *not* report it. On DASF v3 files the checksum layer turns
    /// the flip into `DasfError::ChecksumMismatch`; on v2 files it
    /// passes silently (the gap v3 closes). Key: hash of file name.
    pub const DASF_READ_CORRUPT: &str = "dasf.read.corrupt";
    /// A dataset read stalls briefly (bounded injected latency; data is
    /// still correct). Key: hash of file name.
    pub const DASF_READ_LATENCY: &str = "dasf.read.latency";
    /// A dataset write fails with an I/O error. Key: hash of file name
    /// mixed with the dataset path.
    pub const DASF_WRITE_ERR: &str = "dasf.write.err";
    /// A rank is dead for the whole run: its sends are suppressed and
    /// its fallible collectives return `CommError::RankDead`. Key: rank.
    pub const MINIMPI_RANK_DEAD: &str = "minimpi.rank.dead";
    /// A collective receive loses its first delivery attempt(s) and must
    /// retry (bounded by the retry policy). Key: mix of (seq, round,
    /// src, dst).
    pub const MINIMPI_RECV_DROP: &str = "minimpi.recv.drop";
    /// A collective receive is delayed (bounded injected latency before
    /// the matching attempt). Key: mix of (seq, round, src, dst).
    pub const MINIMPI_RECV_DELAY: &str = "minimpi.recv.delay";
    /// A member-file read inside the parallel VCA readers fails above
    /// the dasf layer. Key: file index within the VCA — identical for
    /// both read strategies, so quarantine sets agree.
    pub const PAR_READ_FILE: &str = "par_read.file";
    /// A spool file looks torn (truncated mid-rename) to the ingest
    /// validator for its first validation attempt(s) — models a writer
    /// that renamed before its data hit the disk. Key: hash of file
    /// name; the *number* of torn attempts is drawn with
    /// [`crate::value_below`], so some files recover under retry and
    /// some exhaust the budget and quarantine. Deterministic per seed.
    pub const INGEST_SPOOL_TORN: &str = "ingest.spool.torn";
    /// A spool file's arrival is delayed: the scanner defers it for a
    /// bounded number of scan rounds before validating — models slow
    /// transfer and out-of-order delivery. Key: hash of file name.
    pub const INGEST_ARRIVAL_DELAY: &str = "ingest.arrival.delay";
    /// A spool file is delivered twice: after a successful admit the
    /// scanner re-queues the same path once — models at-least-once
    /// upstream transports. Key: hash of file name.
    pub const INGEST_ARRIVAL_DUPLICATE: &str = "ingest.arrival.duplicate";

    /// Every site this workspace injects at, for spec validation and
    /// docs.
    pub const ALL: &[&str] = &[
        DASF_OPEN_ERR,
        DASF_READ_ERR,
        DASF_READ_SHORT,
        DASF_READ_CORRUPT,
        DASF_READ_LATENCY,
        DASF_WRITE_ERR,
        MINIMPI_RANK_DEAD,
        MINIMPI_RECV_DROP,
        MINIMPI_RECV_DELAY,
        PAR_READ_FILE,
        INGEST_SPOOL_TORN,
        INGEST_ARRIVAL_DELAY,
        INGEST_ARRIVAL_DUPLICATE,
    ];
}
